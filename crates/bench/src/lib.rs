//! Shared experiment drivers for the TRAIL reproduction harness.
//!
//! Each public function regenerates one table or figure of the paper
//! and returns/prints the measured numbers next to the paper's values.
//! The `repro` binary dispatches to these; the criterion benches reuse
//! the same builders for micro-benchmarks.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use trail::attribute::{self, GnnEvalConfig, IocModelSettings, ModelKind};
use trail::checkpoint::StudyCheckpoint;
use trail::embed::NodeEmbeddings;
use trail::longitudinal::{self, run_resumable_study, StudyConfig, StudyOutput};
use trail::report;
use trail::system::TrailSystem;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{ChaosPlan, CircuitBreaker, OsintClient, World, WorldConfig};

/// Harness-wide run options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// World scale multiplier (1.0 = the calibrated default).
    pub scale: f32,
    /// World seed.
    pub seed: u64,
    /// Cross-validation folds.
    pub folds: usize,
    /// Quick mode: smaller models, fewer epochs.
    pub quick: bool,
    /// Transient-fault injection probability for the OSINT client
    /// (`--faults`; 0.0 = off). Retried ingestion must converge to the
    /// fault-free graph, so results are unaffected — only the ingest
    /// taxonomy in `BENCH_repro.json` shows the retries.
    pub transient_fault_prob: f32,
    /// Run the longitudinal study on the incremental path
    /// (`--incremental`): delta-merged CSR, cached node codes, one
    /// reusable input matrix. Bitwise-identical output, cheaper
    /// per-window preparation.
    pub incremental: bool,
    /// Opt-in sampled GNN training (`--sampled CAP`): train the
    /// Table-IV GNNs on the capped k-hop subgraph of the supervised
    /// events instead of the full graph. Prediction stays full-graph;
    /// accuracy is epsilon-close, not bitwise (see the sampled-training
    /// agreement test). `None` keeps the exact full-graph protocol.
    pub sampled_neighbor_cap: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 0x7214_11,
            folds: 5,
            quick: false,
            transient_fault_prob: 0.0,
            incremental: false,
            sampled_neighbor_cap: None,
        }
    }
}

impl RunOptions {
    /// Build the world + TRAIL system for these options. Setup cost is
    /// tracked by the `setup.build_system` span (world generation and
    /// the TKG build as children); the human-readable summary line is
    /// suppressed in `--quick` mode so stage records stay
    /// machine-parseable.
    pub fn build_system(&self) -> TrailSystem {
        let _setup = trail_obs::span("setup.build_system");
        let mut cfg = WorldConfig::default().scaled(self.scale);
        cfg.seed = self.seed;
        cfg.transient_fault_prob = self.transient_fault_prob;
        let world = {
            let _s = trail_obs::span("world_gen");
            Arc::new(World::generate(cfg))
        };
        let client = OsintClient::new(world);
        let cutoff = client.world().config.cutoff_day;
        let t = Instant::now();
        let sys = {
            let _s = trail_obs::span("tkg_build");
            TrailSystem::build(client, cutoff)
        };
        if !self.quick {
            println!(
                "[setup] TKG built in {:?}: {} events, {} nodes, {} edges",
                t.elapsed(),
                sys.tkg.events.len(),
                sys.tkg.graph.node_count(),
                sys.tkg.graph.edge_count()
            );
        }
        sys
    }

    /// Deterministic RNG for the experiments.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ 0x5eed)
    }

    /// Model settings matched to the mode.
    pub fn ioc_settings(&self) -> IocModelSettings {
        if self.quick {
            IocModelSettings::fast()
        } else {
            IocModelSettings::default()
        }
    }

    /// GNN evaluation settings matched to the mode.
    pub fn gnn_settings(&self) -> GnnEvalConfig {
        let mut cfg = if self.quick {
            GnnEvalConfig {
                hidden: 32,
                train: trail_gnn::TrainConfig { lr: 2e-2, epochs: 80, patience: 0 },
                val_fraction: 0.1,
                l2_normalize: true,
                label_visible_fraction: 0.7,
                sampled_neighbor_cap: None,
            }
        } else {
            GnnEvalConfig::default()
        };
        cfg.sampled_neighbor_cap = self.sampled_neighbor_cap;
        cfg
    }

    /// Autoencoder settings matched to the mode.
    pub fn ae_settings(&self) -> AutoencoderConfig {
        if self.quick {
            AutoencoderConfig { hidden: 64, code: 32, epochs: 2, ..Default::default() }
        } else {
            AutoencoderConfig { hidden: 256, code: 64, epochs: 4, ..Default::default() }
        }
    }
}

/// Per-stage wall-clock recorder for `repro` runs.
///
/// Collects `stage -> seconds` pairs plus free-form metadata (thread
/// count, world scale, graph size) and serialises them as one JSON
/// object, so perf regressions across commits can be diffed
/// mechanically instead of scraping stdout. Stages timed through
/// [`BenchRecorder::time`]/[`BenchRecorder::time_with`] additionally
/// capture the `trail-obs` metrics *delta* of the stage (spans,
/// counters, histograms), embedded under `"metrics"` in the JSON.
///
/// With [`BenchRecorder::set_machine_readable`] on (`--quick` runs),
/// every recorded stage also prints one `[stage] <name>
/// seconds=<secs>` line — a stable, grep-able record stream that never
/// interleaves with the setup banners (those are suppressed in quick
/// mode).
#[derive(Debug, Default)]
pub struct BenchRecorder {
    stages: Vec<(String, f64)>,
    meta: Vec<(String, serde_json::Value)>,
    taxonomy: Vec<(String, serde_json::Value)>,
    metrics: Vec<(String, trail_obs::MetricsSnapshot)>,
    machine_readable: bool,
}

impl BenchRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a metadata field (last write for a key wins).
    pub fn set_meta(&mut self, key: &str, value: impl Into<serde_json::Value>) {
        let value = value.into();
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key.to_owned(), value));
        }
    }

    /// Emit one machine-parseable line per recorded stage (quick mode).
    pub fn set_machine_readable(&mut self, on: bool) {
        self.machine_readable = on;
    }

    /// Record an already-measured stage duration. Repeated stage names
    /// accumulate (e.g. the per-fold pieces of one experiment).
    pub fn record(&mut self, stage: &str, seconds: f64) {
        if self.machine_readable {
            println!("[stage] {stage} seconds={seconds:.3}");
        }
        self.stages.push((stage.to_owned(), seconds));
    }

    /// Time `f` and record it under `stage`.
    pub fn time<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> T {
        self.time_with(stage, f).0
    }

    /// Time `f` under `stage`, returning `(result, seconds)`. The body
    /// runs inside a span named after the stage, and the registry's
    /// metrics delta over the stage is attached via
    /// [`Self::record_metrics`].
    pub fn time_with<T>(&mut self, stage: &str, f: impl FnOnce() -> T) -> (T, f64) {
        let before = trail_obs::snapshot();
        let t = Instant::now();
        let out = {
            let _span = trail_obs::span(stage);
            f()
        };
        let seconds = t.elapsed().as_secs_f64();
        self.record(stage, seconds);
        self.record_metrics(stage, trail_obs::snapshot().delta_since(&before));
        (out, seconds)
    }

    /// Attach a stage's metrics snapshot. Repeated stage names merge
    /// via [`trail_obs::MetricsSnapshot::absorb`]; empty snapshots
    /// (e.g. with the registry disabled) are dropped.
    pub fn record_metrics(&mut self, stage: &str, snap: trail_obs::MetricsSnapshot) {
        if snap.is_empty() {
            return;
        }
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == stage) {
            slot.1.absorb(&snap);
        } else {
            self.metrics.push((stage.to_owned(), snap));
        }
    }

    /// Attach a stage's ingest taxonomy (the JSON object
    /// `trail::enrich::IngestStats::to_json` produces). Last write for
    /// a stage wins.
    pub fn record_taxonomy(&mut self, stage: &str, taxonomy: serde_json::Value) {
        if let Some(slot) = self.taxonomy.iter_mut().find(|(k, _)| k == stage) {
            slot.1 = taxonomy;
        } else {
            self.taxonomy.push((stage.to_owned(), taxonomy));
        }
    }

    /// The JSON document `write_json` persists.
    pub fn to_json(&self) -> serde_json::Value {
        let mut root = serde_json::Map::new();
        for (k, v) in &self.meta {
            root.insert(k.clone(), v.clone());
        }
        let mut stages = serde_json::Map::new();
        for (name, secs) in &self.stages {
            let prev = stages.get(name).and_then(serde_json::Value::as_f64).unwrap_or(0.0);
            stages.insert(name.clone(), serde_json::Value::from(prev + secs));
        }
        root.insert("stages_seconds".to_owned(), serde_json::Value::Object(stages));
        if !self.metrics.is_empty() {
            let mut metrics = serde_json::Map::new();
            for (stage, snap) in &self.metrics {
                metrics.insert(stage.clone(), snap.to_json());
            }
            root.insert("metrics".to_owned(), serde_json::Value::Object(metrics));
        }
        if !self.taxonomy.is_empty() {
            let mut tax = serde_json::Map::new();
            for (stage, v) in &self.taxonomy {
                tax.insert(stage.clone(), v.clone());
            }
            root.insert("ingest_taxonomy".to_owned(), serde_json::Value::Object(tax));
        }
        serde_json::Value::Object(root)
    }

    /// Write the report to `path` (pretty-printed JSON).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(&self.to_json()).expect("recorder serialises");
        std::fs::write(path, text)
    }
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn row(label: &str, paper: &str, measured: String) {
    println!("{label:<28} paper: {paper:<18} measured: {measured}");
}

/// Table II — TKG node/edge statistics.
pub fn table2(sys: &TrailSystem) {
    header("table2", "TKG composition (paper Table II, proportionally scaled)");
    println!("{}", sys.tkg.stats_table());
    println!(
        "paper (full scale): 4,512 events / 2.125M nodes / 7.916M edges; 26.66% first-order; avg reuse 1.513"
    );
}

/// Section V — graph structure statistics.
pub fn sec5(sys: &TrailSystem) {
    header("sec5", "graph structure (paper Section V)");
    let csr = sys.tkg.csr();
    let full = report::graph_stats(&sys.tkg, &csr);
    let sub = report::first_order_subgraph(&sys.tkg);
    let sub_csr = trail_graph::Csr::from_store(&sub);
    let sub_cc = trail_graph::algo::connected_components(&sub_csr);
    let sub_diam = if sub_cc.largest() > 1 {
        let seed = sub_cc
            .assignment
            .iter()
            .position(|&c| c == 0)
            .map(trail_graph::NodeId::from)
            .unwrap_or(trail_graph::NodeId(0));
        trail_graph::algo::diameter_double_sweep(&sub_csr, seed, 6)
    } else {
        0
    };
    row("largest CC fraction", "99.94%", format!("{:.2}%", 100.0 * full.largest_fraction));
    row("components (full)", "161", format!("{}", full.components));
    row("components (1st-order)", "477 (more)", format!("{}", sub_cc.count()));
    row("diameter (full)", "23", format!("{}", full.diameter));
    row("diameter (1st-order)", "20 (smaller CC)", format!("{sub_diam}"));
    row("events w/in 2 hops of event", "85%", format!("{:.1}%", 100.0 * full.events_within_2_hops));
}

/// Fig. 4 — IOC reuse histogram.
pub fn fig4(sys: &TrailSystem) {
    header("fig4", "IOC reuse by type (paper Fig. 4)");
    let hist = report::ReuseHistogram::compute(&sys.tkg);
    println!("{}", hist.render());
    row(
        "avg reuse IP/URL/Domain",
        "2.94 / 1.25 / 1.50",
        format!(
            "{:.2} / {:.2} / {:.2}",
            hist.mean_reuse(trail_graph::NodeKind::Ip),
            hist.mean_reuse(trail_graph::NodeKind::Url),
            hist.mean_reuse(trail_graph::NodeKind::Domain)
        ),
    );
}

/// Fig. 3 — ego-net around one event.
pub fn fig3(sys: &TrailSystem) {
    header("fig3", "ego-net of one event (paper Fig. 3: 239 related IOCs)");
    // Pick the event of the busiest APT (the paper uses an APT28 event).
    let event = sys
        .tkg
        .events
        .iter()
        .max_by_key(|e| sys.tkg.graph.degree(e.node))
        .expect("events exist");
    let csr = sys.tkg.csr();
    let counts = report::egonet_summary(&sys.tkg, &csr, event.node, 2);
    println!(
        "event {} ({}), 2-hop ego-net: {} IPs, {} URLs, {} domains, {} ASNs, {} events",
        event.report_id,
        sys.tkg.registry.name(event.apt),
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        counts[0],
    );
}

/// Table III — individual IOC attribution.
pub fn table3(sys: &TrailSystem, opts: &RunOptions) {
    header("table3", "individual IOC attribution, 5-fold CV (paper Table III)");
    let paper: &[(&str, [(f64, f64); 3])] = &[
        // (model, [(acc, bacc) for IP, URL, Domain])
        ("XGB", [(0.3174, 0.1975), (0.4590, 0.2531), (0.2894, 0.1609)]),
        ("NN", [(0.3796, 0.2260), (0.3395, 0.1742), (0.1087, 0.1004)]),
        ("RF", [(0.2431, 0.1708), (0.3419, 0.2193), (0.1297, 0.1248)]),
    ];
    let mut rng = opts.rng();
    let settings = opts.ioc_settings();
    let datasets = attribute::ioc_datasets(&mut rng, &sys.tkg, settings.max_samples);
    println!(
        "datasets: {} IPs, {} URLs, {} domains (first-order, single-label)",
        datasets[0].data.len(),
        datasets[1].data.len(),
        datasets[2].data.len()
    );
    for (mi, model) in ModelKind::ALL.iter().enumerate() {
        for (ki, kind_name) in ["IP", "URL", "Domain"].iter().enumerate() {
            let t = Instant::now();
            let scores = attribute::crossval_ioc(&mut rng, &datasets[ki], *model, &settings, opts.folds);
            let (acc, _) = scores.acc_mean_std();
            let (bacc, _) = scores.bacc_mean_std();
            let (p_acc, p_bacc) = paper[mi].1[ki];
            row(
                &format!("{} {}", model.name(), kind_name),
                &format!("{p_acc:.3}/{p_bacc:.3}"),
                format!("{acc:.4}/{bacc:.4}  ({:.0?})", t.elapsed()),
            );
        }
    }
}

/// Table IV — event attribution across all nine approaches.
///
/// Per-approach wall-clock lands in `rec` (`table4_ioc_vote_*`,
/// `table4_lp_*L`, `table4_gnn_*L`) — these are the stages the shared
/// worker pool accelerates, so they anchor the perf comparison.
pub fn table4(sys: &TrailSystem, opts: &RunOptions, emb: &NodeEmbeddings, rec: &mut BenchRecorder) {
    header("table4", "event attribution, 5-fold CV (paper Table IV)");
    let mut rng = opts.rng();
    let settings = opts.ioc_settings();
    let paper_ml = [("XGB", 0.4663, 0.2911), ("NN", 0.2622, 0.1617), ("RF", 0.6878, 0.5491)];
    for (i, model) in ModelKind::ALL.iter().enumerate() {
        let (scores, secs) = rec.time_with(&format!("table4_ioc_vote_{}", model.name()), || {
            attribute::eval_event_ml(&mut rng, &sys.tkg, *model, &settings, opts.folds)
        });
        let (acc, std) = scores.acc_mean_std();
        let (bacc, _) = scores.bacc_mean_std();
        let (_, p_acc, p_bacc) = paper_ml[i];
        row(
            &format!("{} (IOC vote)", model.name()),
            &format!("{p_acc:.3}/{p_bacc:.3}"),
            format!("{acc:.4}±{std:.4}/{bacc:.4}  ({secs:.1}s)"),
        );
    }
    let paper_lp = [(2, 0.7589, 0.7434), (3, 0.7934, 0.7660), (4, 0.8236, 0.7734)];
    for &(layers, p_acc, p_bacc) in &paper_lp {
        let (scores, secs) = rec.time_with(&format!("table4_lp_{layers}L"), || {
            attribute::eval_event_lp(&mut rng, &sys.tkg, layers, opts.folds)
        });
        let (acc, std) = scores.acc_mean_std();
        let (bacc, _) = scores.bacc_mean_std();
        row(
            &format!("LP {layers}L"),
            &format!("{p_acc:.3}/{p_bacc:.3}"),
            format!("{acc:.4}±{std:.4}/{bacc:.4}  ({secs:.1}s)"),
        );
    }
    let paper_gnn = [(2, 0.8338, 0.7793), (3, 0.8396, 0.7860), (4, 0.8405, 0.7922)];
    let gnn_cfg = opts.gnn_settings();
    let gnn_total = Instant::now();
    for &(layers, p_acc, p_bacc) in &paper_gnn {
        let (scores, secs) = rec.time_with(&format!("table4_gnn_{layers}L"), || {
            attribute::eval_event_gnn(&mut rng, &sys.tkg, emb, layers, &gnn_cfg, opts.folds)
        });
        let (acc, std) = scores.acc_mean_std();
        let (bacc, _) = scores.bacc_mean_std();
        row(
            &format!("GNN {layers}L"),
            &format!("{p_acc:.3}/{p_bacc:.3}"),
            format!("{acc:.4}±{std:.4}/{bacc:.4}  ({secs:.1}s)"),
        );
    }
    rec.record("table4_gnn_total", gnn_total.elapsed().as_secs_f64());
}

/// Study configuration for the longitudinal experiments.
pub fn study_config(opts: &RunOptions) -> StudyConfig {
    StudyConfig {
        months: 6,
        gnn_layers: if opts.quick { 2 } else { 3 },
        gnn: opts.gnn_settings(),
        ae: opts.ae_settings(),
        fine_tune: trail_gnn::FineTune { lr: 5e-3, epochs: if opts.quick { 4 } else { 10 } },
    }
}

/// Print a [`StudyOutput`] as the Fig. 7 + Fig. 8 report.
fn print_study(out: &StudyOutput) {
    println!("Fig. 7 — confusion matrix, first unseen month (stale model):");
    let names: Vec<&str> = out.class_names.iter().map(String::as_str).collect();
    println!("{}", out.first_month_confusion.render(&names));
    println!("Fig. 8 — degradation series (paper: stale-vs-fresh gap grows ~3.5%/month):");
    println!(
        "{:>6} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "month", "events", "stale acc", "stale bacc", "fresh acc", "fresh bacc"
    );
    for m in &out.months {
        println!(
            "{:>6} {:>8} {:>11.4} {:>11.4} {:>11.4} {:>11.4}",
            m.month, m.n_events, m.stale_acc, m.stale_bacc, m.fresh_acc, m.fresh_bacc
        );
    }
    if out.months.len() >= 2 {
        let first_gap = out.months[0].fresh_acc - out.months[0].stale_acc;
        let last = out.months.last().expect("non-empty");
        let last_gap = last.fresh_acc - last.stale_acc;
        println!("gap month0 {first_gap:+.4} -> month{} {last_gap:+.4}", last.month);
    }
}

/// Figs. 7 & 8 — the monthly study. The monthly windows' ingest
/// taxonomy lands in `rec` under `fig7_fig8_windows`; per-window
/// wall clock (input preparation vs whole window) is recorded as the
/// `fig7_fig8_window_prep` / `fig7_fig8_window_total` stages plus a
/// per-month breakdown under the `fig7_fig8_windows` taxonomy, and
/// the study's heap-allocation-event delta is attached as the
/// `allocations` meta field (0 unless the binary installs
/// [`trail_obs::alloc::CountingAllocator`], as `repro` does).
/// `opts.incremental` switches the window preparation to the cached
/// path — the printed study is bitwise-identical either way.
pub fn fig7_fig8(sys: TrailSystem, opts: &RunOptions, rec: &mut BenchRecorder) {
    header(
        "fig7+fig8",
        if opts.incremental {
            "months-long study (paper Section VII-C), incremental windows"
        } else {
            "months-long study (paper Section VII-C)"
        },
    );
    let mut rng = opts.rng();
    let cfg = study_config(opts);
    let allocs_before = trail_obs::alloc::allocation_count();
    let (out, timings) =
        longitudinal::run_monthly_study_mode(&mut rng, sys, &cfg, opts.incremental);
    let allocs = trail_obs::alloc::allocation_count() - allocs_before;
    rec.set_meta("incremental", opts.incremental);
    rec.set_meta("allocations", allocs);
    let mut windows = serde_json::Map::new();
    windows.insert("ingest".to_owned(), out.ingest.to_json());
    let per_month: Vec<serde_json::Value> = timings
        .iter()
        .map(|t| {
            serde_json::json!({
                "month": t.month,
                "prep_seconds": t.prep_seconds,
                "total_seconds": t.total_seconds,
            })
        })
        .collect();
    windows.insert("timings".to_owned(), serde_json::Value::Array(per_month));
    rec.record_taxonomy("fig7_fig8_windows", serde_json::Value::Object(windows));
    for t in &timings {
        rec.record("fig7_fig8_window_prep", t.prep_seconds);
        rec.record("fig7_fig8_window_total", t.total_seconds);
    }
    print_study(&out);
}

/// Figs. 7 & 8 via the crash-safe study (`repro fig8 --resume DIR`).
/// A checkpoint already in `dir` resumes the run from its last
/// completed window; the output is bitwise-identical to an
/// uninterrupted run either way.
pub fn fig7_fig8_resumable(client: OsintClient, opts: &RunOptions, dir: &Path, rec: &mut BenchRecorder) {
    header("fig7+fig8", "months-long study, crash-safe (checkpoints in --resume dir)");
    let cutoff = client.world().config.cutoff_day;
    let cfg = study_config(opts);
    let had_checkpoint = dir.join("study.ckpt").exists();
    match run_resumable_study(client, cutoff, &cfg, opts.seed, dir, None) {
        Ok(Some(out)) => {
            println!(
                "[study] {} {} (degradation {:.3})",
                if had_checkpoint { "resumed from" } else { "checkpointing to" },
                dir.display(),
                out.ingest.degradation(),
            );
            rec.record_taxonomy("fig7_fig8_windows", out.ingest.to_json());
            print_study(&out);
        }
        Ok(None) => unreachable!("no kill point requested"),
        Err(e) => {
            eprintln!("[study] cannot resume from {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

/// The deterministic chaos drill (`repro --chaos SEED`): derive a
/// fault plan from the seed, run the crash-safe study against the
/// hostile world with a circuit breaker armed, kill it at the plan's
/// window boundaries, resume to completion, and verify (a) the
/// resumed output is bitwise-identical to an uninterrupted run and
/// (b) corrupted/truncated checkpoints are rejected. Returns `false`
/// if any invariant failed.
pub fn chaos(opts: &RunOptions, chaos_seed: u64, rec: &mut BenchRecorder) -> bool {
    header("chaos", "deterministic fault drill: breaker, kills, corruption");
    trail_obs::set_enabled(true);
    let plan = ChaosPlan::from_seed(chaos_seed);
    println!(
        "plan {chaos_seed:#x}: fault_prob {:.2}{}, miss_prob {:.2}, kills after windows {:?}",
        plan.transient_fault_prob,
        if plan.feed_dead { " (dead feed)" } else { "" },
        plan.analysis_miss_prob,
        plan.kill_windows,
    );
    let mut wcfg = WorldConfig::default().scaled(opts.scale);
    wcfg.seed = opts.seed;
    plan.apply(&mut wcfg);
    let world = Arc::new(World::generate(wcfg));
    let cutoff = world.config.cutoff_day;
    // One client per (re)start: a real process crash loses breaker
    // state too, so every resume begins with a fresh, closed breaker.
    let make_client = || {
        let mut c = OsintClient::new(Arc::clone(&world));
        c.set_breaker(Arc::new(CircuitBreaker::default()));
        c
    };
    let study = study_config(opts);
    let base = std::env::temp_dir().join(format!("trail-chaos-{chaos_seed:x}-{}", std::process::id()));
    let dir_full = base.join("uninterrupted");
    let dir_kill = base.join("killed");

    let mut ok = true;
    let before = trail_obs::snapshot();
    let full = match rec.time("chaos_uninterrupted", || {
        run_resumable_study(make_client(), cutoff, &study, opts.seed, &dir_full, None)
    }) {
        Ok(Some(out)) => out,
        Ok(None) => unreachable!("no kill point requested"),
        Err(e) => {
            println!("[chaos] FAIL: uninterrupted run errored: {e}");
            return false;
        }
    };
    let delta = trail_obs::snapshot().delta_since(&before);
    let s = &full.ingest;
    println!(
        "degradation {:.3}: {} transient misses + {} breaker rejections over {} enrichment queries \
         ({} retried, {} permanent gaps); attribution ran on the partial TKG",
        s.degradation(),
        s.missed_transient,
        s.breaker_rejected,
        s.first_order + s.secondary,
        s.retried,
        s.missed_permanent,
    );
    println!(
        "breaker transitions: opened {} half-open {} re-closed {} rejected {}",
        delta.counter("osint.breaker.opened"),
        delta.counter("osint.breaker.half_open"),
        delta.counter("osint.breaker.closed"),
        delta.counter("osint.breaker.rejected"),
    );
    rec.record_taxonomy("chaos_windows", s.to_json());

    // Kill-and-resume drill at the plan's windows.
    for &k in &plan.kill_windows {
        match rec.time("chaos_killed_runs", || {
            run_resumable_study(make_client(), cutoff, &study, opts.seed, &dir_kill, Some(k))
        }) {
            Ok(None) => println!("[chaos] killed after window {k}; checkpoint durable"),
            Ok(Some(_)) => println!("[chaos] study ended before kill point {k}"),
            Err(e) => {
                println!("[chaos] FAIL: killed run errored: {e}");
                ok = false;
            }
        }
    }
    match rec.time("chaos_resume", || {
        run_resumable_study(make_client(), cutoff, &study, opts.seed, &dir_kill, None)
    }) {
        Ok(Some(resumed)) if resumed == full => {
            println!("[chaos] resumed output is bitwise-identical to the uninterrupted run");
        }
        Ok(Some(_)) => {
            println!("[chaos] FAIL: resumed study diverged from the uninterrupted run");
            ok = false;
        }
        Ok(None) => unreachable!("no kill point requested"),
        Err(e) => {
            println!("[chaos] FAIL: resume errored: {e}");
            ok = false;
        }
    }

    // Corruption drill: the plan's byte flips and a truncation must all
    // be rejected by the typed loader — never a panic, never a torn read.
    match std::fs::read(dir_kill.join("study.ckpt")) {
        Ok(bytes) => {
            let mut rejected = 0;
            for &off in &plan.corrupt_offsets {
                let mut bad = bytes.clone();
                let p = (off % bytes.len() as u64) as usize;
                bad[p] ^= 0x20;
                if StudyCheckpoint::from_bytes(&bad).is_err() {
                    rejected += 1;
                } else {
                    println!("[chaos] FAIL: byte flip at {p} loaded cleanly");
                    ok = false;
                }
            }
            if StudyCheckpoint::from_bytes(&bytes[..bytes.len() / 2]).is_err() {
                rejected += 1;
            } else {
                println!("[chaos] FAIL: truncated checkpoint loaded cleanly");
                ok = false;
            }
            println!(
                "[chaos] corruption drill: {rejected}/{} damaged snapshots rejected",
                plan.corrupt_offsets.len() + 1
            );
        }
        Err(e) => {
            println!("[chaos] FAIL: checkpoint unreadable: {e}");
            ok = false;
        }
    }
    // WAL + hot-swap drills: kill the durable stream at hostile byte
    // offsets, corrupt sealed segments, kill refreeze mid-write, and
    // swap bundles under concurrent load.
    ok &= rec.time("chaos_wal_drill", || wal_drill(opts, &plan));

    std::fs::remove_dir_all(&base).ok();
    if ok {
        println!("[chaos] all invariants held for seed {chaos_seed:#x}");
    }
    ok
}

/// Copy every regular file of `src` into `dst` (flat — WAL dirs have
/// no subdirectories).
fn copy_flat_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
    }
    Ok(())
}

/// WAL segment files of `dir` in index order (the names sort).
fn wal_segments(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".twl"))
                })
                .collect()
        })
        .unwrap_or_default();
    segs.sort();
    segs
}

/// Simulate a kill with exactly `keep` bytes of the log durable:
/// truncate the segment holding the boundary, remove later segments.
fn cut_wal_at(dir: &Path, keep: u64) {
    let mut remaining = keep;
    let segs = wal_segments(dir);
    for (i, path) in segs.iter().enumerate() {
        let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        if remaining >= len {
            remaining -= len;
            continue;
        }
        let f = std::fs::OpenOptions::new().write(true).open(path).expect("cut segment");
        f.set_len(remaining).expect("truncate segment");
        for later in &segs[i + 1..] {
            std::fs::remove_file(later).ok();
        }
        return;
    }
}

/// The PR 9 durability drill: prove the WAL's kill-at-any-offset
/// recovery contract and the serve layer's swap invariants against the
/// plan's seeded hostility. Runs on a tiny world (the drill builds
/// several runtimes; each must stay cheap) with the plan's fault knobs
/// applied.
fn wal_drill(opts: &RunOptions, plan: &ChaosPlan) -> bool {
    use trail::stream::wal::{self, DurableStream, WalConfig, WalError};
    use trail::stream::{AsofPolicy, StreamConfig, StreamRuntime};
    use trail_osint::DAYS_PER_MONTH;
    use trail_serve::{LoadMix, QueryLimits, RuntimeConfig, ServeBundle, ServeRuntime};

    let mut ok = true;
    let mut wcfg = WorldConfig::tiny(opts.seed);
    plan.apply(&mut wcfg);
    let world = Arc::new(World::generate(wcfg));
    let cutoff = world.config.cutoff_day;
    let horizon = world.config.horizon_day();
    let schedule = OsintClient::new(Arc::clone(&world)).stream_reports(cutoff, horizon);
    if schedule.is_empty() {
        println!("[chaos] FAIL: wal drill world has no post-cutoff reports");
        return false;
    }
    let study = StudyConfig {
        months: 2,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 12,
            train: trail_gnn::TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
        fine_tune: trail_gnn::FineTune { lr: 0.01, epochs: 3 },
    };
    let cadence = (schedule.len() / 2).max(1);
    let cfg = StreamConfig {
        study,
        asof: AsofPolicy::WindowEnd { origin: cutoff, stride: DAYS_PER_MONTH },
        tick_every: Some(cadence),
        // Effectively unbounded: the ledger's budget split stays
        // deterministic, so recovered ledgers can be compared whole.
        budget_us: u64::MAX >> 1,
    };
    let make_rt = || {
        StreamRuntime::new(
            opts.rng(),
            TrailSystem::build(OsintClient::new(Arc::clone(&world)), cutoff),
            cfg.clone(),
        )
    };
    let root = std::env::temp_dir()
        .join(format!("trail-chaos-wal-{:x}-{}", plan.seed, std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    // Small segments so the seeded cut points land mid-append,
    // mid-header and mid-rotation across many segment boundaries.
    let wal_cfg = |dir: &Path| WalConfig {
        dir: dir.to_path_buf(),
        segment_bytes: 512,
        fsync: wal::FsyncPolicy::Always,
    };

    // Reference: one uninterrupted durable run, capturing the exact
    // state (fingerprints + ledger + ticks) after every push — the
    // oracle each recovered prefix must land on bitwise.
    let ref_dir = root.join("reference");
    let mut drt = match DurableStream::create(wal_cfg(&ref_dir), make_rt()) {
        Ok(d) => d,
        Err(e) => {
            println!("[chaos] FAIL: wal create: {e}");
            return false;
        }
    };
    let mut states = Vec::with_capacity(schedule.len() + 1);
    let state_of = |rt: &StreamRuntime| {
        (rt.tkg_fingerprint(), rt.model_fingerprint(), rt.ledger(), rt.ticks_fired())
    };
    states.push(state_of(drt.runtime()));
    for r in &schedule {
        if let Err(e) = drt.push(r) {
            println!("[chaos] FAIL: wal append: {e}");
            return false;
        }
        states.push(state_of(drt.runtime()));
    }
    let total: u64 = wal_segments(&ref_dir)
        .iter()
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    let n_segments = wal_segments(&ref_dir).len();
    println!(
        "[chaos] wal reference: {} records, {} segments, {} bytes",
        schedule.len(),
        n_segments,
        total
    );

    // Kill drill: the plan's seeded offsets plus two structural cuts —
    // mid-rotation (exactly at the first segment boundary) and
    // mid-append (a dozen bytes into the next record's header).
    let seg0 = std::fs::metadata(&wal_segments(&ref_dir)[0]).map(|m| m.len()).unwrap_or(0);
    let mut cuts: Vec<u64> = plan.wal_cut_points.iter().map(|&c| c % (total + 1)).collect();
    cuts.push(seg0);
    cuts.push((seg0 + 12).min(total));
    for &keep in &cuts {
        let dir = root.join(format!("cut-{keep}"));
        if let Err(e) = copy_flat_dir(&ref_dir, &dir) {
            println!("[chaos] FAIL: copying log for cut {keep}: {e}");
            return false;
        }
        cut_wal_at(&dir, keep);
        match DurableStream::recover(wal_cfg(&dir), make_rt()) {
            Ok((rec_rt, report)) => {
                let k = report.records as usize;
                if k > schedule.len() {
                    println!("[chaos] FAIL: cut {keep} recovered {k} > {} records", schedule.len());
                    ok = false;
                } else if state_of(rec_rt.runtime()) != states[k] {
                    println!(
                        "[chaos] FAIL: cut {keep}: recovered state diverges from the \
                         uninterrupted run after {k} events"
                    );
                    ok = false;
                } else {
                    println!(
                        "[chaos] kill at byte {keep}: {k} records replayed bitwise{}",
                        if report.tear.is_some() { " (torn tail truncated)" } else { "" }
                    );
                }
            }
            Err(e) => {
                println!("[chaos] FAIL: recovery after cut {keep} errored: {e}");
                ok = false;
            }
        }
    }

    // Sealed-segment corruption: a flipped byte in a *sealed* segment
    // is not a torn tail — recovery must refuse with a typed error
    // naming the segment, never truncate it away silently.
    if n_segments > 1 {
        for &off in &plan.wal_corrupt_offsets {
            let dir = root.join(format!("corrupt-{off:x}"));
            if copy_flat_dir(&ref_dir, &dir).is_err() {
                ok = false;
                continue;
            }
            let seg = wal_segments(&dir)[0].clone();
            let mut bytes = std::fs::read(&seg).expect("sealed segment readable");
            let p = (off % bytes.len() as u64) as usize;
            bytes[p] ^= 0x10;
            std::fs::write(&seg, &bytes).expect("rewrite sealed segment");
            match wal::scan(&dir) {
                Err(WalError::CorruptSealed { segment: 0, .. }) => {
                    println!("[chaos] sealed-segment flip at byte {p}: typed corruption error");
                }
                Err(e) => {
                    println!("[chaos] FAIL: flip at {p} gave the wrong error: {e}");
                    ok = false;
                }
                Ok((records, _)) => {
                    println!(
                        "[chaos] FAIL: flip at {p} scanned cleanly ({} records)",
                        records.len()
                    );
                    ok = false;
                }
            }
        }
    } else {
        println!("[chaos] FAIL: only one WAL segment; corruption drill needs a sealed one");
        ok = false;
    }

    // Refreeze drill: freeze the live stream into a bundle. A crash
    // mid-refreeze is the atomic-write story — the old bundle file
    // survives intact — and a partially-written/corrupted bundle must
    // be refused by the typed loader.
    let bundle0 = match ServeBundle::refreeze(drt.runtime_mut()) {
        Ok(b) => b,
        Err(e) => {
            println!("[chaos] FAIL: refreeze: {e}");
            std::fs::remove_dir_all(&root).ok();
            return false;
        }
    };
    let bundle_path = root.join("live.tsb");
    if let Err(e) = bundle0.save(&bundle_path) {
        println!("[chaos] FAIL: bundle save: {e}");
        std::fs::remove_dir_all(&root).ok();
        return false;
    }
    let saved = std::fs::read(&bundle_path).expect("bundle readable");
    for &off in &plan.corrupt_offsets {
        let p = (off % saved.len() as u64) as usize;
        let mut bad = saved.clone();
        bad[p] ^= 0x40;
        if ServeBundle::from_bytes(&bad).is_ok() {
            println!("[chaos] FAIL: refreeze flip at byte {p} loaded cleanly");
            ok = false;
        }
    }
    let half = saved.len() / 2;
    if ServeBundle::from_bytes(&saved[..half]).is_ok() {
        println!("[chaos] FAIL: half-written refreeze bundle loaded cleanly");
        ok = false;
    }
    if ServeBundle::load(&bundle_path).is_err() {
        println!("[chaos] FAIL: surviving bundle no longer loads");
        ok = false;
    } else {
        println!(
            "[chaos] refreeze drill: {} damaged bundles rejected, survivor loads",
            plan.corrupt_offsets.len() + 1
        );
    }

    // Swap drill: install the refrozen bundle twice under concurrent
    // traffic. Every response must name a generation, the counter tree
    // must reconcile exactly across the swap boundaries, and a restart
    // from the saved bundle (the kill-during-swap story: the slot is
    // in-memory, the bundle file is the durable artefact) must serve
    // the same rankings as a fresh runtime over the same bytes.
    let obs_before = trail_obs::snapshot();
    let runtime = ServeRuntime::new(
        Arc::new(bundle0),
        Arc::new(CircuitBreaker::default()),
        RuntimeConfig { replicas: 4, limits: QueryLimits::default() },
    );
    let mix = LoadMix { queries: 96, poison_fraction: 0.0, ..LoadMix::default() };
    let queries = trail_serve::loadgen::generate(&runtime, &mix);
    let reloaded = Arc::new(ServeBundle::load(&bundle_path).expect("checked above"));
    let responses = std::thread::scope(|s| {
        let worker = s.spawn(|| runtime.run_batch(&queries, 4));
        for _ in 0..2 {
            std::thread::yield_now();
            runtime.install(Arc::clone(&reloaded));
        }
        worker.join().expect("load worker")
    });
    let delta = trail_obs::snapshot().delta_since(&obs_before);
    let issued = delta.counter("serve.issued");
    let admitted = delta.counter("serve.admitted");
    let rejected = delta.counter("serve.rejected");
    let completed = delta.counter("serve.completed");
    let failed = delta.counter("serve.failed");
    let swaps = delta.counter("serve.swaps");
    let per_gen: u64 = runtime.generation_stats().iter().map(|&(_, c)| c).sum();
    let tree_ok = issued == admitted + rejected
        && admitted == completed + failed
        && issued == responses.len() as u64
        && per_gen == completed
        && swaps == 2
        && runtime.generation() == 2
        && responses.iter().all(|r| r.generation <= 2);
    if !tree_ok {
        println!(
            "[chaos] FAIL: swap counters broke: issued={issued} admitted={admitted} \
             rejected={rejected} completed={completed} failed={failed} swaps={swaps} \
             per_gen={per_gen}"
        );
        ok = false;
    } else {
        println!(
            "[chaos] swap drill: {issued} requests across {} generations, counters reconcile",
            swaps + 1
        );
    }
    // Restart-after-swap-kill: a fresh runtime over the durable bundle
    // answers exactly like the running one for non-rejected queries.
    let restarted = ServeRuntime::new(
        reloaded,
        Arc::new(CircuitBreaker::default()),
        RuntimeConfig { replicas: 2, limits: QueryLimits::default() },
    );
    for (q, r) in queries.iter().zip(&responses).take(8) {
        let again = restarted.handle(q);
        if let (trail_serve::Outcome::Ranked(a), trail_serve::Outcome::Ranked(b)) =
            (&r.outcome, &again.outcome)
        {
            if a != b {
                println!("[chaos] FAIL: restarted runtime ranks differently");
                ok = false;
                break;
            }
        }
    }

    std::fs::remove_dir_all(&root).ok();
    if ok {
        println!("[chaos] wal/swap drills held for seed {:#x}", plan.seed);
    }
    ok
}

/// Case study (Figs. 5–6).
pub fn case(sys: TrailSystem, opts: &RunOptions) {
    header("case", "fresh-event case study (paper Section VII-C, Figs. 5-6)");
    let mut rng = opts.rng();
    let cfg = study_config(opts);
    match longitudinal::case_study(&mut rng, sys, &cfg, "APT38") {
        Some(cs) => {
            println!("event {} (truth {})", cs.report_id, cs.true_apt);
            row("reported IOCs", "20", format!("{}", cs.reported_iocs));
            row("after enrichment (2-hop)", "2,668 -> 9,405", format!("{}", cs.neighborhood_iocs));
            row("attributed events @2 hops", "14", format!("{}", cs.events_2hop));
            row("attributed events @3 hops", "24", format!("{}", cs.events_3hop));
            row("LP attribution", "APT38", cs.lp_prediction.unwrap_or_else(|| "unattributed".into()));
            row(
                "GNN masked neighbours",
                "APT38 @ 48%",
                format!("{} @ {:.0}%", cs.gnn_masked.0, 100.0 * cs.gnn_masked.1),
            );
            row(
                "GNN visible neighbours",
                "APT38 @ 88%",
                format!("{} @ {:.0}%", cs.gnn_visible.0, 100.0 * cs.gnn_visible.1),
            );
        }
        None => println!("no post-cutoff event available at this scale"),
    }
}

/// Fig. 9 — SHAP-style beeswarm over the URL classifier.
pub fn fig9(sys: &TrailSystem, opts: &RunOptions) {
    header("fig9", "top URL features for one APT (paper Fig. 9, SHAP beeswarm)");
    let mut rng = opts.rng();
    let settings = opts.ioc_settings();
    let datasets = attribute::ioc_datasets(&mut rng, &sys.tkg, settings.max_samples);
    let urls = &datasets[1];
    if urls.data.is_empty() {
        println!("no URL dataset at this scale");
        return;
    }
    // Train an XGB URL classifier on everything, then explain APT28
    // (class 0) — the paper's example class.
    let (scaler, scaled) = trail_ml::StandardScaler::fit_transform(&urls.data.x);
    let _ = scaler;
    let gbt = trail_ml::GradientBoostedTrees::fit(
        &mut rng,
        &scaled,
        &urls.data.y,
        urls.data.n_classes,
        &settings.gbt,
    );
    let class = 0usize; // APT28
    let bees = trail_ml::explain::gbt_beeswarm(&gbt, &scaled, class, 10);
    println!(
        "top-10 features for {} (paper: url_entropy and encoding=gzip dominate APT28):",
        sys.tkg.registry.name(class as u16)
    );
    for (f, imp) in &bees.top_features {
        println!("  {:<30} mean|contribution| {:.5}", sys.tkg.url_encoder.feature_name(*f), imp);
    }
}

/// Ablations called out in DESIGN.md §6: enrichment depth, SMOTE,
/// L2 normalisation, autoencoder projection and confidence
/// thresholding.
pub fn ablations(sys: &TrailSystem, opts: &RunOptions, emb: &NodeEmbeddings) {
    header("ablations", "design-choice ablations (DESIGN.md §6)");
    let mut rng = opts.rng();

    // --- 1. Enrichment depth: LP on the first-order-only subgraph ----
    // (paper: "results from any 2L model are equivalent to the results
    // if we did not apply the extra enrichment process")
    {
        let sub = report::first_order_subgraph(&sys.tkg);
        // Rebuild a TKG-shaped wrapper for the subgraph to reuse the LP
        // evaluator: we run LP manually on the pruned graph instead.
        let csr = trail_graph::Csr::from_store(&sub);
        let lp = trail_gnn::LabelPropagation::new(&csr, sys.tkg.n_classes());
        // Map event nodes into the subgraph.
        let mut pairs = Vec::new();
        for info in &sys.tkg.events {
            if let Some(node) = sub.find_node(trail_graph::NodeKind::Event, &info.report_id) {
                pairs.push((node, info.apt));
            }
        }
        // Simple 1-fold holdout (ablation, not a headline number).
        let n_test = pairs.len() / 5;
        let (test, train) = pairs.split_at(n_test);
        let mut seeds = vec![None; sub.node_count()];
        for &(n, c) in train {
            seeds[n.index()] = Some(c);
        }
        for layers in [2usize, 4] {
            let targets: Vec<trail_graph::NodeId> = test.iter().map(|&(n, _)| n).collect();
            let preds = lp.predict(&seeds, layers, &targets);
            let truth: Vec<u16> = test.iter().map(|&(_, c)| c).collect();
            let hard: Vec<u16> = preds.iter().map(|p| p.unwrap_or(u16::MAX)).collect();
            let acc = trail_ml::metrics::accuracy(&truth, &hard);
            println!("no-enrichment LP {layers}L holdout acc: {acc:.4} (full-graph numbers in table4)");
        }
    }

    // --- 2. SMOTE on/off for the largest IOC dataset ------------------
    {
        let mut settings = opts.ioc_settings();
        let datasets = attribute::ioc_datasets(&mut rng, &sys.tkg, settings.max_samples.min(3000));
        let ds = datasets.iter().max_by_key(|d| d.data.len()).expect("non-empty");
        for smote_on in [true, false] {
            settings.smote = smote_on;
            let s = attribute::crossval_ioc(&mut rng, ds, ModelKind::Xgb, &settings, 3);
            let (acc, _) = s.acc_mean_std();
            let (bacc, _) = s.bacc_mean_std();
            println!(
                "XGB {:?} smote={smote_on}: acc {acc:.4} bacc {bacc:.4}",
                ds.kind
            );
        }
    }

    // --- 3. L2 normalisation on/off for the GNN ----------------------
    {
        let mut cfg = opts.gnn_settings();
        for l2 in [true, false] {
            cfg.l2_normalize = l2;
            let s = attribute::eval_event_gnn(&mut rng, &sys.tkg, emb, 2, &cfg, 3);
            let (acc, _) = s.acc_mean_std();
            println!("GNN 2L l2_normalize={l2}: acc {acc:.4}");
        }
    }

    // --- 4. Confidence thresholding (paper §IX future work) ----------
    {
        let cfg = opts.gnn_settings();
        let threshold_scores =
            attribute::eval_event_gnn_thresholded(&mut rng, &sys.tkg, emb, 2, &cfg, 3, 0.6);
        println!(
            "GNN 2L with 0.6 confidence threshold: precision on attributed {:.4}, coverage {:.4}",
            threshold_scores.0, threshold_scores.1
        );
    }
}

/// Fig. 10 — GNNExplainer subgraph for one event.
pub fn fig10(sys: &TrailSystem, opts: &RunOptions, emb: &NodeEmbeddings) {
    header("fig10", "GNNExplainer: most influential IOCs for one event (paper Fig. 10)");
    let mut rng = opts.rng();
    let csr = sys.tkg.csr();
    // Train a 3-layer GNN on all events (the paper explains a pretrained
    // 3-layer model).
    let pairs: Vec<(trail_graph::NodeId, u16)> =
        sys.tkg.events.iter().map(|e| (e.node, e.apt)).collect();
    let mut x = trail::embed::assemble_gnn_input(&sys.tkg, emb, &pairs);
    let gnn_cfg = opts.gnn_settings();
    let sage_cfg = trail_gnn::SageConfig {
        input_dim: x.cols(),
        hidden: gnn_cfg.hidden,
        layers: if opts.quick { 2 } else { 3 },
        n_classes: sys.tkg.n_classes(),
        l2_normalize: gnn_cfg.l2_normalize,
    };
    let masking = trail_gnn::LabelMasking { offset: emb.code_dim + 5, visible_fraction: 0.5 };
    let (mut model, _) = trail_gnn::train_sage_masked(
        &mut rng, &csr, &mut x, sage_cfg, &pairs, &[], &gnn_cfg.train, masking,
    );
    // Explain the busiest correctly-predicted event.
    let proba = model.predict_proba(&csr, &x);
    let event = sys
        .tkg
        .events
        .iter()
        .filter(|e| {
            trail_linalg::vector::argmax(proba.row(e.node.index())) == Some(e.apt as usize)
        })
        .max_by_key(|e| sys.tkg.graph.degree(e.node))
        .or_else(|| sys.tkg.events.first());
    let Some(event) = event else {
        println!("no events to explain");
        return;
    };
    let sub = trail_gnn::sampler::sample_k_hop(&mut rng, &csr, &[event.node], 2, 12);
    let local_rows: Vec<usize> = sub.nodes.iter().map(|n| n.index()).collect();
    let x_sub = x.gather_rows(&local_rows);
    let target_local = sub.local_of[&event.node];
    let expl = trail_gnn::explain::explain(
        &model,
        &sub,
        &x_sub,
        target_local,
        event.apt as usize,
        &trail_gnn::explain::ExplainerConfig::default(),
    );
    println!(
        "event {} ({}), subgraph {} nodes / {} edges, p(class)={:.2}",
        event.report_id,
        sys.tkg.registry.name(event.apt),
        sub.len(),
        sub.edges.len(),
        expl.base_probability
    );
    println!("top-15 influential nodes (paper: IOC features outweigh reuse paths):");
    for local in expl.top_nodes(target_local, 15) {
        let node = sub.nodes[local];
        let rec = sys.tkg.graph.node(node);
        println!(
            "  {:<8} {:<50} importance {:.3}",
            format!("{:?}", rec.kind),
            sys.tkg.graph.key(node).chars().take(50).collect::<String>(),
            expl.node_importance[local]
        );
    }
}

/// `repro quant` — i8-quantized inference vs f32 on the attribution
/// GNN (DESIGN.md §11). Trains one fold exactly as Table IV does, then
/// compares `forward` against `forward_quantized` on the test-fold
/// input: max-abs logit error, argmax agreement on the test events,
/// test accuracy under both paths, and min-of-N per-forward wall
/// clock. Everything lands in `BENCH_repro.json` under the `quant`
/// taxonomy plus `quant_forward_f32` / `quant_forward_i8` stages.
pub fn quant(sys: &TrailSystem, opts: &RunOptions, emb: &NodeEmbeddings, rec: &mut BenchRecorder) {
    header("quant", "i8 symmetric per-row quantized inference vs f32 (2-layer GNN)");
    let mut rng = opts.rng();
    let cfg = opts.gnn_settings();
    let csr = sys.tkg.csr();
    let kf = attribute::event_folds(&mut rng, &sys.tkg, opts.folds.max(2));
    let Some((train_ev, test_ev)) = kf.splits().next() else {
        println!("no event folds to evaluate");
        return;
    };
    let pairs = |idx: &[usize]| -> Vec<(trail_graph::NodeId, u16)> {
        idx.iter().map(|&i| (sys.tkg.events[i].node, sys.tkg.events[i].apt)).collect()
    };
    let train_pairs = pairs(&train_ev);
    let test_pairs = pairs(&test_ev);

    let mut x_train = trail::embed::assemble_gnn_input(&sys.tkg, emb, &train_pairs);
    let sage_cfg = trail_gnn::SageConfig {
        input_dim: x_train.cols(),
        hidden: cfg.hidden,
        layers: 2,
        n_classes: sys.tkg.n_classes(),
        l2_normalize: cfg.l2_normalize,
    };
    let masking = trail_gnn::LabelMasking {
        offset: emb.code_dim + 5,
        visible_fraction: cfg.label_visible_fraction,
    };
    let (mut model, _) = rec.time("quant_train", || {
        trail_gnn::train_sage_masked(
            &mut rng, &csr, &mut x_train, sage_cfg, &train_pairs, &[], &cfg.train, masking,
        )
    });

    // Inference input: train labels visible, test labels masked.
    let x_test = trail::embed::assemble_gnn_input(&sys.tkg, emb, &train_pairs);

    // Accuracy + error metrics (one forward each; also warms the
    // quantized weight cache so the timing loop measures steady state).
    let logits_f32 = model.forward(&csr, &x_test, false);
    let logits_q = model.forward_quantized(&csr, &x_test);
    let max_abs_err = logits_f32
        .as_slice()
        .iter()
        .zip(logits_q.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let mut agree = 0usize;
    let mut correct_f32 = 0usize;
    let mut correct_q = 0usize;
    for &(node, apt) in &test_pairs {
        let pf = trail_linalg::vector::argmax(logits_f32.row(node.index())).unwrap_or(0);
        let pq = trail_linalg::vector::argmax(logits_q.row(node.index())).unwrap_or(0);
        agree += usize::from(pf == pq);
        correct_f32 += usize::from(pf == apt as usize);
        correct_q += usize::from(pq == apt as usize);
    }
    let n_test = test_pairs.len().max(1);
    let agreement = agree as f64 / n_test as f64;

    // Min-of-N per-forward wall clock, full-graph inference.
    let reps = if opts.quick { 3 } else { 10 };
    let mut f32_ns = f64::INFINITY;
    let mut quant_ns = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = model.forward(&csr, &x_test, false);
        f32_ns = f32_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        let _ = model.forward_quantized(&csr, &x_test);
        quant_ns = quant_ns.min(t.elapsed().as_nanos() as f64);
    }
    let speedup = f32_ns / quant_ns;
    rec.record("quant_forward_f32", f32_ns / 1e9);
    rec.record("quant_forward_i8", quant_ns / 1e9);
    rec.record_taxonomy(
        "quant",
        serde_json::json!({
            "max_abs_logit_err": max_abs_err as f64,
            "argmax_agreement": agreement,
            "test_events": n_test as u64,
            "acc_f32": correct_f32 as f64 / n_test as f64,
            "acc_i8": correct_q as f64 / n_test as f64,
            "forward_f32_ns": f32_ns,
            "forward_i8_ns": quant_ns,
            "speedup": speedup,
        }),
    );

    row("max |logit err|", "—", format!("{max_abs_err:.2e} (gate ≤ 1e-2 on fixture)"));
    row("argmax agreement", "—", format!("{:.2}% ({agree}/{n_test} test events)", agreement * 100.0));
    row("test accuracy f32/i8", "—", format!(
        "{:.4} / {:.4}",
        correct_f32 as f64 / n_test as f64,
        correct_q as f64 / n_test as f64
    ));
    row("per-forward wall clock", "—", format!(
        "f32 {:.2} ms, i8 {:.2} ms ({speedup:.2}x)",
        f32_ns / 1e6,
        quant_ns / 1e6
    ));
    println!(
        "[quant] max_abs_logit_err={max_abs_err:.3e} argmax_agreement={agreement:.4} \
         speedup={speedup:.3}"
    );
}

/// `repro serve-bench` — attribution-as-a-service under load
/// (DESIGN.md §12). Trains the full stack on every event (the Fig. 10
/// protocol), freezes it into a TSB1 [`trail_serve::ServeBundle`],
/// round-trips the bundle through disk, then replays one seeded query
/// mix at several worker-pool widths. Each level's p50/p99/mean
/// latency, throughput and outcome totals land in `BENCH_serve.json`;
/// the run also proves two invariants and returns `false` (non-zero
/// exit) if either breaks:
///
/// * **determinism** — the response fingerprint (every ranking, bit
///   for bit) is identical at every concurrency level;
/// * **reconciliation** — `trail-obs` request counters match the load
///   generator's issued/admitted/rejected/completed/failed totals
///   exactly, including during the poison-query breaker drill.
pub fn serve_bench(sys: &TrailSystem, opts: &RunOptions, rec: &mut BenchRecorder) -> bool {
    use trail_osint::BreakerConfig;
    use trail_serve::{loadgen, LoadMix, QueryLimits, RuntimeConfig, ServeBundle, ServeRuntime};

    header("serve-bench", "concurrent read-only attribution serving (TSB1 bundle)");
    let mut rng = opts.rng();
    let gnn_cfg = opts.gnn_settings();
    let frozen = rec.time("serve_train_freeze", || {
        trail::freeze::train_frozen(&mut rng, &sys.tkg, &opts.ae_settings(), &gnn_cfg, 2)
    });
    let bundle = rec
        .time("serve_bundle_freeze", || ServeBundle::freeze(&sys.tkg, &frozen).expect("freeze"));

    // Round-trip through disk so the benched bundle is the loaded one
    // (exercising the full TSB1 decode + validation path).
    let dir = std::env::temp_dir().join(format!("trail-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bundle.tsb");
    rec.time("serve_bundle_save", || bundle.save(&path).expect("bundle save"));
    let bundle_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let bundle =
        Arc::new(rec.time("serve_bundle_load", || ServeBundle::load(&path).expect("bundle load")));
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "[serve] bundle: {} nodes, {} events, {} classes, {} bytes on disk",
        bundle.graph().node_count(),
        bundle.events().len(),
        bundle.n_classes(),
        bundle_bytes
    );

    let levels: Vec<usize> = if opts.quick { vec![1, 8] } else { vec![1, 4, 8] };
    let max_level = levels.iter().copied().max().unwrap_or(1);
    let runtime = ServeRuntime::new(
        Arc::clone(&bundle),
        Arc::new(CircuitBreaker::new(BreakerConfig::default())),
        RuntimeConfig { replicas: max_level, limits: QueryLimits::default() },
    );

    let mix = LoadMix {
        queries: if opts.quick { 240 } else { 1000 },
        iocs_per_query: 8,
        unknown_fraction: 0.2,
        poison_fraction: 0.0,
        seed: opts.seed ^ 0x5e12_e5,
    };
    let queries = loadgen::generate(&runtime, &mix);

    let mut ok = true;
    let mut reports = Vec::new();
    for &c in &levels {
        let lvl =
            rec.time(&format!("serve_level_{c}"), || loadgen::run_level(&runtime, &queries, c));
        println!(
            "[serve] concurrency={} issued={} admitted={} rejected={} completed={} failed={} \
             p50_us={} p99_us={} mean_us={} qps={:.1} fingerprint={:#018x}",
            lvl.concurrency,
            lvl.issued,
            lvl.admitted,
            lvl.rejected,
            lvl.completed,
            lvl.failed,
            lvl.p50_us,
            lvl.p99_us,
            lvl.mean_us,
            lvl.qps,
            lvl.fingerprint
        );
        ok &= lvl.counters_reconciled && lvl.completed > 0;
        reports.push(lvl);
    }
    let deterministic = reports.windows(2).all(|w| w[0].fingerprint == w[1].fingerprint);
    ok &= deterministic;

    // Breaker drill: same bundle, hair-trigger breaker, poisoned mix.
    // Totals vary with scheduling (admission is concurrent), but the
    // counter tree must still reconcile exactly at full width.
    let drill_rt = ServeRuntime::new(
        Arc::clone(&bundle),
        Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_rejections: 4,
            half_open_successes: 1,
        })),
        RuntimeConfig { replicas: max_level, limits: QueryLimits::default() },
    );
    let drill_mix = LoadMix {
        queries: if opts.quick { 120 } else { 400 },
        poison_fraction: 0.1,
        seed: mix.seed ^ 1,
        ..mix
    };
    let drill_queries = loadgen::generate(&drill_rt, &drill_mix);
    let drill =
        rec.time("serve_breaker_drill", || loadgen::run_level(&drill_rt, &drill_queries, max_level));
    println!(
        "[serve] drill: issued={} admitted={} rejected={} completed={} failed={} reconciled={}",
        drill.issued, drill.admitted, drill.rejected, drill.completed, drill.failed,
        drill.counters_reconciled
    );
    ok &= drill.counters_reconciled && drill.failed > 0 && drill.rejected > 0;

    let max_p99_us = reports.iter().map(|r| r.p99_us).max().unwrap_or(0);
    let min_qps = reports.iter().map(|r| r.qps).fold(f64::INFINITY, f64::min);
    println!(
        "[serve-summary] levels={} deterministic={} reconciled={} max_p99_us={} min_qps={:.1}",
        reports.len(),
        u8::from(deterministic),
        u8::from(reports.iter().all(|r| r.counters_reconciled) && drill.counters_reconciled),
        max_p99_us,
        min_qps
    );

    let level_json: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "concurrency": r.concurrency,
                "issued": r.issued,
                "admitted": r.admitted,
                "rejected": r.rejected,
                "completed": r.completed,
                "failed": r.failed,
                "p50_us": r.p50_us,
                "p99_us": r.p99_us,
                "mean_us": r.mean_us,
                "wall_seconds": r.wall_seconds,
                "qps": r.qps,
                "fingerprint": format!("{:#018x}", r.fingerprint),
                "counters_reconciled": r.counters_reconciled,
            })
        })
        .collect();
    let drill_json = serde_json::json!({
        "concurrency": drill.concurrency,
        "issued": drill.issued,
        "admitted": drill.admitted,
        "rejected": drill.rejected,
        "completed": drill.completed,
        "failed": drill.failed,
        "counters_reconciled": drill.counters_reconciled,
    });
    let doc = serde_json::json!({
        "experiment": "serve-bench",
        "seed": opts.seed,
        "scale": opts.scale as f64,
        "quick": opts.quick,
        "threads": trail_linalg::pool::num_threads(),
        "queries": mix.queries,
        "iocs_per_query": mix.iocs_per_query,
        "bundle_bytes": bundle_bytes,
        "deterministic": deterministic,
        "max_p99_us": max_p99_us,
        "min_qps": min_qps,
        "levels": level_json,
        "drill": drill_json,
    });
    match std::fs::write(
        "BENCH_serve.json",
        serde_json::to_string_pretty(&doc).expect("serve doc serialises"),
    ) {
        Ok(()) => println!("[serve] level reports written to BENCH_serve.json"),
        Err(e) => {
            eprintln!("[serve] could not write BENCH_serve.json: {e}");
            ok = false;
        }
    }
    ok
}

/// `repro stream-bench` — event-at-a-time TKG growth under a latency
/// budget (DESIGN.md §13). Streams every post-cutoff report through a
/// [`trail::stream::StreamRuntime`] one event at a time with a
/// roughly-monthly tick cadence, then contrasts the amortized
/// per-event cost of keeping the inputs current (push work plus the
/// ticks' incremental sync: delta merge, dirty-row re-encode, matrix
/// growth) against the cost a naive design would pay per event: one
/// full input rebuild — CSR freeze, whole-graph code recompute, GNN
/// input assembly — exactly the per-window preparation of the study's
/// full-rebuild path. Per-tick model work (predictions, fine-tune) is
/// timed and reported separately: both designs pay it per *tick*, so
/// it does not belong in the per-event comparison. All numbers land in
/// `BENCH_stream.json`.
///
/// The run also proves two invariants and returns `false` (non-zero
/// exit) if either breaks:
///
/// * **equivalence** — a second runtime over an identical world,
///   consuming the same reports in micro-batches of 64, ends with
///   bitwise-identical TKG and model fingerprints and tick series;
/// * **reconciliation** — the latency-budget ledger closes exactly:
///   `issued == within_budget + exceeded == attributed + dropped`;
/// * **durability** — the schedule written through the TWL1 WAL scans
///   back equal under every fsync policy (`[wal-summary]
///   recovered_equal`), and a torn tail truncates to exactly the
///   durable prefix.
pub fn stream_bench(sys: TrailSystem, opts: &RunOptions, rec: &mut BenchRecorder) -> bool {
    use trail::stream::{AsofPolicy, StreamConfig, StreamRuntime};
    use trail_osint::DAYS_PER_MONTH;

    header("stream-bench", "event-at-a-time TKG growth under a latency budget");
    let cutoff = sys.asof_day;
    let horizon = sys.client.world().config.horizon_day();
    let schedule = sys.client.stream_reports(cutoff, horizon);
    if schedule.is_empty() {
        eprintln!("[stream] world has no post-cutoff reports to stream");
        return false;
    }
    let study = study_config(opts);
    // Roughly monthly ticks, expressed as an event-count cadence so the
    // equivalence run below ticks at identical points by construction.
    let cadence = (schedule.len() / study.months.max(1) as usize).max(1);
    let cfg = StreamConfig {
        study,
        asof: AsofPolicy::WindowEnd { origin: cutoff, stride: DAYS_PER_MONTH },
        // The main run ticks manually so push and tick cost separate
        // cleanly; the equivalence run uses the automatic cadence at
        // the same boundaries, cross-checking the two trigger paths.
        tick_every: None,
        budget_us: 50_000,
    };
    println!(
        "[stream] {} reports, tick every {} events, budget {} us/event",
        schedule.len(),
        cadence,
        cfg.budget_us
    );

    let mut rt = rec.time("stream_init", || {
        StreamRuntime::new(opts.rng(), sys, cfg.clone())
    });
    let mut push_secs = 0.0f64;
    let mut tick_secs = 0.0f64;
    for r in &schedule {
        let t = Instant::now();
        rt.push(r);
        push_secs += t.elapsed().as_secs_f64();
        if rt.pending_events() >= cadence {
            let t = Instant::now();
            rt.tick();
            tick_secs += t.elapsed().as_secs_f64();
        }
    }
    let t = Instant::now();
    rt.finish();
    tick_secs += t.elapsed().as_secs_f64();
    rec.record("stream_push", push_secs);
    rec.record("stream_ticks", tick_secs);
    let ledger = rt.ledger();
    let amortized_us = (push_secs + rt.sync_seconds()) * 1e6 / ledger.issued.max(1) as f64;
    println!(
        "[stream] issued={} attributed={} dropped={} within_budget={} exceeded={} ticks={}",
        ledger.issued,
        ledger.attributed,
        ledger.dropped,
        ledger.within_budget,
        ledger.exceeded,
        rt.tick_reports().len()
    );

    // The naive baseline: what one event would cost if every arrival
    // triggered a full input rebuild over the final (largest) graph.
    // Encoder training is excluded — even a naive design trains once.
    let rebuild_us = {
        let tkg = &rt.system().tkg;
        let mut rng = opts.rng();
        let (_, encoders, scalers) =
            trail::embed::train_autoencoders_with_scalers(&mut rng, tkg, &cfg.study.ae);
        let (_, secs) = rec.time_with("stream_rebuild_baseline", || {
            let _csr = tkg.csr();
            let emb = trail::embed::compute_codes_with(tkg, &encoders, &scalers, cfg.study.ae.batch_size);
            let pairs: Vec<_> = tkg.events.iter().map(|e| (e.node, e.apt)).collect();
            trail::embed::assemble_gnn_input(tkg, &emb, &pairs)
        });
        secs * 1e6
    };
    let ratio = rebuild_us / amortized_us.max(1e-9);

    // Equivalence drill: identical world, same seed and config, same
    // report stream in micro-batches of 64 — must land on the same
    // bits.
    let cfg64 = StreamConfig { tick_every: Some(cadence), ..cfg.clone() };
    let rt64 = rec.time("stream_equivalence_run", || {
        let mut rt64 = StreamRuntime::new(opts.rng(), opts.build_system(), cfg64);
        for chunk in schedule.chunks(64) {
            rt64.push_batch(chunk);
        }
        rt64.finish();
        rt64
    });
    let equal = rt.tkg_fingerprint() == rt64.tkg_fingerprint()
        && rt.model_fingerprint() == rt64.model_fingerprint()
        && rt.tick_reports() == rt64.tick_reports();
    let reconciled = ledger.reconciles() && rt64.ledger().reconciles();
    if !equal {
        eprintln!(
            "[stream] DIVERGENCE: event-at-a-time {:#018x}/{:#018x} vs micro-batch-64 \
             {:#018x}/{:#018x}",
            rt.tkg_fingerprint(),
            rt.model_fingerprint(),
            rt64.tkg_fingerprint(),
            rt64.model_fingerprint()
        );
    }
    println!(
        "[stream-summary] events={} ticks={} amortized_us={:.1} rebuild_us={:.1} ratio={:.1} \
         equal={} reconciled={}",
        ledger.issued,
        rt.tick_reports().len(),
        amortized_us,
        rebuild_us,
        ratio,
        u8::from(equal),
        u8::from(reconciled)
    );

    // WAL microbench: the pure durability overhead (frame encode +
    // append + fsync) per event under each policy, over the same
    // report schedule — no runtime attached, so the numbers isolate
    // what `DurableStream` adds to a push. Afterwards the `Always` log
    // is scanned back and must replay the schedule exactly, and a torn
    // tail must truncate to the durable prefix.
    let (wal_us, recovered_equal, torn_ok) = {
        use trail::stream::wal::{self, FsyncPolicy, Wal, WalConfig};
        let root = std::env::temp_dir().join(format!("trail-walbench-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let policies = [
            ("always", FsyncPolicy::Always),
            ("every32", FsyncPolicy::EveryN(32)),
            ("ontick", FsyncPolicy::OnTick),
        ];
        let mut wal_us = [f64::NAN; 3];
        let mut io_ok = true;
        for (i, (name, policy)) in policies.iter().enumerate() {
            let cfg = WalConfig {
                dir: root.join(name),
                segment_bytes: 4 << 20,
                fsync: *policy,
            };
            let run = || -> Result<f64, wal::WalError> {
                let mut w = Wal::create(cfg.clone())?;
                let t = Instant::now();
                for (j, r) in schedule.iter().enumerate() {
                    w.append(r)?;
                    if matches!(policy, FsyncPolicy::OnTick) && (j + 1) % cadence == 0 {
                        w.sync()?;
                    }
                }
                w.sync()?;
                Ok(t.elapsed().as_secs_f64() * 1e6 / schedule.len() as f64)
            };
            match run() {
                Ok(us) => wal_us[i] = us,
                Err(e) => {
                    eprintln!("[stream] WAL bench ({name}) errored: {e}");
                    io_ok = false;
                }
            }
        }
        let recovered_equal = match wal::scan(&root.join("always")) {
            Ok((recovered, rep)) => rep.tear.is_none() && recovered == schedule,
            Err(e) => {
                eprintln!("[stream] WAL recovery scan errored: {e}");
                false
            }
        };
        // Tear the every32 log three bytes into its last record: the
        // scan must truncate to exactly the first N-1 records.
        let torn_ok = {
            let seg = root.join("every32").join("wal-00000000.twl");
            let torn = std::fs::metadata(&seg)
                .and_then(|m| {
                    std::fs::OpenOptions::new()
                        .write(true)
                        .open(&seg)
                        .and_then(|f| f.set_len(m.len().saturating_sub(3)).map(|()| ()))
                })
                .is_ok();
            torn && match wal::scan(&root.join("every32")) {
                Ok((recovered, rep)) => {
                    rep.tear.is_some()
                        && recovered.len() == schedule.len() - 1
                        && recovered[..] == schedule[..schedule.len() - 1]
                }
                Err(e) => {
                    eprintln!("[stream] torn-tail scan errored: {e}");
                    false
                }
            }
        };
        std::fs::remove_dir_all(&root).ok();
        (wal_us, recovered_equal && io_ok, torn_ok)
    };
    println!(
        "[wal-summary] records={} always_us={:.1} every32_us={:.1} ontick_us={:.1} \
         recovered_equal={} torn_tail_ok={}",
        schedule.len(),
        wal_us[0],
        wal_us[1],
        wal_us[2],
        u8::from(recovered_equal),
        u8::from(torn_ok)
    );

    let tick_json: Vec<serde_json::Value> = rt
        .tick_reports()
        .iter()
        .map(|t| {
            serde_json::json!({
                "month": t.result.month,
                "n_events": t.result.n_events,
                "stale_acc": t.result.stale_acc,
                "fresh_acc": t.result.fresh_acc,
                "lp_agree": t.lp_agree,
            })
        })
        .collect();
    let wal_json = serde_json::json!({
        "always_us": wal_us[0],
        "every32_us": wal_us[1],
        "ontick_us": wal_us[2],
        "recovered_equal": recovered_equal,
        "torn_tail_ok": torn_ok,
    });
    let doc = serde_json::json!({
        "experiment": "stream-bench",
        "seed": opts.seed,
        "scale": opts.scale as f64,
        "quick": opts.quick,
        "threads": trail_linalg::pool::num_threads(),
        "events": ledger.issued,
        "attributed": ledger.attributed,
        "dropped": ledger.dropped,
        "within_budget": ledger.within_budget,
        "exceeded": ledger.exceeded,
        "budget_us": cfg.budget_us,
        "tick_every": cadence,
        "ticks": rt.tick_reports().len(),
        "push_seconds": push_secs,
        "tick_seconds": tick_secs,
        "sync_seconds": rt.sync_seconds(),
        "amortized_us": amortized_us,
        "rebuild_us": rebuild_us,
        "ratio": ratio,
        "equal": equal,
        "reconciled": reconciled,
        "wal": wal_json,
        "tkg_fingerprint": format!("{:#018x}", rt.tkg_fingerprint()),
        "model_fingerprint": format!("{:#018x}", rt.model_fingerprint()),
        "tick_results": tick_json,
    });
    let mut ok = equal
        && reconciled
        && recovered_equal
        && torn_ok
        && ledger.attributed > 0
        && !rt.tick_reports().is_empty();
    match std::fs::write(
        "BENCH_stream.json",
        serde_json::to_string_pretty(&doc).expect("stream doc serialises"),
    ) {
        Ok(()) => println!("[stream] run report written to BENCH_stream.json"),
        Err(e) => {
            eprintln!("[stream] could not write BENCH_stream.json: {e}");
            ok = false;
        }
    }
    ok
}

/// `repro scale-bench` — sharded parallel ingest + compact storage at
/// paper scale (DESIGN.md §15). Builds one world, ingests it four
/// ways — the sequential reference plus the shard-parallel path at
/// 1/2/8 worker threads over a fixed 8-shard partition — and proves
/// the determinism contract on every run: each sharded build must be
/// *bitwise* identical to the sequential one (the persisted graph
/// bytes, not just a fingerprint) with an exactly-equal ingest
/// taxonomy. It then audits the compact storage layer: the u32 CSR
/// must agree element-for-element with a pointer-width [`trail_graph::WideCsr`]
/// built from the same store, and its adjacency bytes/node are
/// reported against the wide baseline. Allocation-event deltas (the
/// counting-allocator RSS proxy) land next to each build.
///
/// Everything is written to `BENCH_scale.json` plus one grep-able
/// `[scale-summary]` line for the `verify.sh --perf` gate. Returns
/// `false` (non-zero exit) if any equality invariant breaks. The
/// 8-thread speedup is reported but only *gated* when the machine has
/// the cores to show it (the `cores` field records that).
pub fn scale_bench(opts: &RunOptions, rec: &mut BenchRecorder) -> bool {
    header("scale-bench", "sharded parallel ingest + compact graph storage");
    let mut wcfg = WorldConfig::default().scaled(opts.scale);
    wcfg.seed = opts.seed;
    wcfg.transient_fault_prob = opts.transient_fault_prob;
    let world = rec.time("scale_world_gen", || Arc::new(World::generate(wcfg)));
    let client = OsintClient::new(Arc::clone(&world));
    let cutoff = world.config.cutoff_day;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Sequential reference: the exact single-threaded build path.
    let allocs0 = trail_obs::alloc::allocation_count();
    let (seq, seq_secs) =
        rec.time_with("scale_sequential_build", || TrailSystem::build(client.clone(), cutoff));
    let seq_allocs = trail_obs::alloc::allocation_count() - allocs0;
    let events = seq.tkg.events.len();
    let seq_bytes = trail_graph::persist::to_bytes(&seq.tkg.graph);
    let seq_evps = events as f64 / seq_secs.max(1e-9);
    println!(
        "[scale] sequential: {} events, {} nodes, {} edges in {seq_secs:.2}s \
         ({seq_evps:.1} events/s, {seq_allocs} allocation events)",
        events,
        seq.tkg.graph.node_count(),
        seq.tkg.graph.edge_count()
    );

    // Shard-parallel builds over a fixed partition: varying only the
    // worker thread count keeps the work identical, so wall-clock
    // differences measure parallel scaling and nothing else.
    const N_SHARDS: usize = 8;
    let mut shard_equal = true;
    let mut levels = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let allocs0 = trail_obs::alloc::allocation_count();
        let (sys, secs) = rec.time_with(&format!("scale_sharded_t{threads}"), || {
            TrailSystem::build_with_shards(client.clone(), cutoff, N_SHARDS, threads)
        });
        let allocs = trail_obs::alloc::allocation_count() - allocs0;
        let equal = sys.ingest_stats == seq.ingest_stats
            && trail_graph::persist::to_bytes(&sys.tkg.graph) == seq_bytes;
        if !equal {
            eprintln!("[scale] DIVERGENCE: {threads}-thread sharded build != sequential");
        }
        shard_equal &= equal;
        let evps = events as f64 / secs.max(1e-9);
        println!(
            "[scale] sharded t{threads}: {secs:.2}s ({evps:.1} events/s, \
             {allocs} allocation events, bitwise_equal={})",
            u8::from(equal)
        );
        levels.push((threads, secs, evps, allocs, equal));
    }
    let t1_secs = levels[0].1;
    let t8_secs = levels[2].1;
    let speedup8 = t1_secs / t8_secs.max(1e-9);

    // Compact-storage audit: the u32 CSR against the pointer-width
    // reference layout over the same store.
    let csr = seq.tkg.csr();
    let wide = trail_graph::WideCsr::from_store(&seq.tkg.graph);
    let structural_ok = wide.agrees_with(&csr);
    let n_nodes = csr.node_count().max(1);
    let bpn_compact = csr.heap_bytes() as f64 / n_nodes as f64;
    let bpn_wide = wide.heap_bytes() as f64 / n_nodes as f64;
    let compact_ratio = bpn_compact / bpn_wide.max(1e-9);
    let feature_bytes = seq.tkg.feature_heap_bytes();
    println!(
        "[scale] adjacency: {bpn_wide:.1} bytes/node wide -> {bpn_compact:.1} bytes/node \
         compact (ratio {compact_ratio:.3}, structural agreement {}); feature arena {} bytes",
        u8::from(structural_ok),
        feature_bytes
    );

    println!(
        "[scale-summary] events={events} shards={N_SHARDS} cores={cores} \
         shard_equal={} structural_ok={} evps_seq={seq_evps:.1} evps_t1={:.1} evps_t2={:.1} \
         evps_t8={:.1} speedup8={speedup8:.3} bpn_wide={bpn_wide:.1} bpn_compact={bpn_compact:.1} \
         compact_ratio={compact_ratio:.4}",
        u8::from(shard_equal),
        u8::from(structural_ok),
        levels[0].2,
        levels[1].2,
        levels[2].2,
    );

    let level_json: Vec<serde_json::Value> = levels
        .iter()
        .map(|&(threads, secs, evps, allocs, equal)| {
            serde_json::json!({
                "threads": threads,
                "seconds": secs,
                "events_per_sec": evps,
                "allocations": allocs,
                "bitwise_equal": equal,
            })
        })
        .collect();
    let seq_json = serde_json::json!({
        "seconds": seq_secs,
        "events_per_sec": seq_evps,
        "allocations": seq_allocs,
    });
    let doc = serde_json::json!({
        "experiment": "scale-bench",
        "seed": opts.seed,
        "scale": opts.scale as f64,
        "quick": opts.quick,
        "faults": opts.transient_fault_prob as f64,
        "cores": cores,
        "pool_threads": trail_linalg::pool::num_threads(),
        "events": events,
        "nodes": seq.tkg.graph.node_count(),
        "edges": seq.tkg.graph.edge_count(),
        "shards": N_SHARDS,
        "shard_equal": shard_equal,
        "structural_ok": structural_ok,
        "sequential": seq_json,
        "sharded": level_json,
        "speedup8": speedup8,
        "bytes_per_node_wide": bpn_wide,
        "bytes_per_node_compact": bpn_compact,
        "compact_ratio": compact_ratio,
        "feature_arena_bytes": feature_bytes,
    });
    let mut ok = shard_equal && structural_ok && events > 0 && bpn_compact < bpn_wide;
    match std::fs::write(
        "BENCH_scale.json",
        serde_json::to_string_pretty(&doc).expect("scale doc serialises"),
    ) {
        Ok(()) => println!("[scale] run report written to BENCH_scale.json"),
        Err(e) => {
            eprintln!("[scale] could not write BENCH_scale.json: {e}");
            ok = false;
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::BenchRecorder;

    #[test]
    fn recorder_accumulates_and_serialises() {
        let mut rec = BenchRecorder::new();
        rec.set_meta("threads", 4u64);
        rec.set_meta("threads", 8u64); // last write wins
        rec.record("stage_a", 1.5);
        rec.record("stage_a", 0.5); // repeats accumulate
        let v = rec.time("stage_b", || 7);
        assert_eq!(v, 7);
        rec.record_taxonomy("setup_tkg", serde_json::json!({"linked": 3}));
        rec.record_taxonomy("setup_tkg", serde_json::json!({"linked": 5})); // last wins
        let json = rec.to_json();
        assert_eq!(json["threads"], 8);
        assert_eq!(json["ingest_taxonomy"]["setup_tkg"]["linked"], 5);
        let a = json["stages_seconds"]["stage_a"].as_f64().expect("stage_a");
        assert!((a - 2.0).abs() < 1e-9);
        assert!(json["stages_seconds"]["stage_b"].as_f64().expect("stage_b") >= 0.0);
    }

    #[test]
    fn recorder_embeds_stage_metrics_delta() {
        trail_obs::set_enabled(true);
        let mut rec = BenchRecorder::new();
        let v = rec.time("obs_stage", || {
            trail_obs::counter_add("bench.test_counter", 3);
            11
        });
        assert_eq!(v, 11);
        // A second run of the same stage merges into the same snapshot.
        rec.time("obs_stage", || trail_obs::counter_add("bench.test_counter", 2));
        let json = rec.to_json();
        let metrics = &json["metrics"]["obs_stage"];
        assert_eq!(metrics["counters"]["bench.test_counter"].as_u64(), Some(5));
        assert_eq!(metrics["spans"]["obs_stage"]["count"].as_u64(), Some(2));
    }
}
