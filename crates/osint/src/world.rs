//! The ground-truth world: registries of ASNs, IPs, domains, URLs, the
//! campaign machinery, and the generated timeline of attributed events.
//!
//! Generation is entirely deterministic in `WorldConfig::seed`. The
//! world is immutable once generated; the [`crate::OsintClient`]
//! provides the query surface the TRAIL pipeline consumes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

use trail_ioc::report::{RawIndicator, RawReport};

use crate::config::WorldConfig;
use crate::naming;
use crate::profile::{pools, AptProfile, APT_NAMES};
use crate::DAYS_PER_MONTH;

/// First octets usable for synthetic public IP space (reserved and
/// special-use ranges excluded).
const FIRST_OCTETS: &[u8] = &[
    5, 23, 31, 37, 45, 62, 77, 80, 85, 91, 93, 95, 103, 104, 109, 141, 146, 151, 158, 176, 178,
    185, 188, 193, 194, 195, 212, 213, 217,
];

/// An autonomous system in the registry.
#[derive(Debug, Clone)]
pub struct AsnInfo {
    /// AS number.
    pub number: u32,
    /// Operator name.
    pub name: String,
    /// Country the AS announces from.
    pub country: String,
    /// Address registry / issuer.
    pub issuer: String,
    /// First two octets of the /16 this AS announces.
    pub prefix: (u8, u8),
    /// log2 of the announced pool size.
    pub size_log: f32,
}

/// Ground truth for one IP address.
#[derive(Debug, Clone)]
pub struct IpTruth {
    /// Index into the ASN registry.
    pub asn: u32,
    /// Issuer string (may differ from the ASN's registry).
    pub issuer: String,
    /// Geolocation.
    pub lat: f32,
    /// Geolocation.
    pub lon: f32,
    /// First day this address was active.
    pub first_day: u32,
    /// Last day this address was observed.
    pub last_day: u32,
    /// Domain indices that historically resolved to this address.
    pub domains: Vec<u32>,
}

/// Ground truth for one domain.
#[derive(Debug, Clone)]
pub struct DomainTruth {
    /// IP indices from A records.
    pub ips: Vec<u32>,
    /// URL indices hosted on this domain (the `url_list` surface).
    pub urls: Vec<u32>,
    /// Non-A record counts: AAAA, CNAME, MX, NS, TXT, SOA, PTR, SRV.
    pub extra_records: [u32; 8],
    /// First day seen.
    pub first_day: u32,
    /// Last day seen (grows as campaigns reuse the domain).
    pub last_day: u32,
}

/// Ground truth for one URL.
#[derive(Debug, Clone)]
pub struct UrlTruth {
    /// Hosting domain index (None when the host is a literal IP).
    pub domain: Option<u32>,
    /// IPs the URL resolves to.
    pub ips: Vec<u32>,
    /// Server banner.
    pub server: String,
    /// Server OS fingerprint.
    pub server_os: String,
    /// Content encoding.
    pub encoding: String,
    /// Hosted file MIME type.
    pub file_type: String,
    /// Coarse file class.
    pub file_class: String,
    /// Typical HTTP response code.
    pub http_code: u16,
    /// Exposed services.
    pub services: Vec<String>,
    /// Header flags.
    pub header_flags: Vec<String>,
    /// Creation day.
    pub created_day: u32,
}

/// A generated attributed event (the OTX pulse analogue plus ground truth).
#[derive(Debug, Clone)]
pub struct GeneratedEvent {
    /// The raw report as the feed would serve it.
    pub report: RawReport,
    /// Ground-truth APT index (labels in `report.tags` may be noisy!).
    pub true_apt: usize,
    /// Day the event occurred.
    pub day: u32,
}

/// One campaign's live infrastructure pool.
#[derive(Debug, Clone)]
struct Campaign {
    ips: Vec<u32>,
    domains: Vec<u32>,
    urls: Vec<u32>,
    favorite_c2: u32,
}

/// The immutable generated world.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// One profile per APT (post-drift state; drift history is baked
    /// into the generated infrastructure).
    pub profiles: Vec<AptProfile>,
    /// ASN registry.
    pub asns: Vec<AsnInfo>,
    pub(crate) ips: Vec<IpTruth>,
    pub(crate) ip_names: Vec<String>,
    pub(crate) ip_index: HashMap<String, u32>,
    pub(crate) domains: Vec<DomainTruth>,
    pub(crate) domain_names: Vec<String>,
    pub(crate) domain_index: HashMap<String, u32>,
    pub(crate) urls: Vec<UrlTruth>,
    pub(crate) url_names: Vec<String>,
    pub(crate) url_index: HashMap<String, u32>,
    /// Generated events, sorted by day.
    pub events: Vec<GeneratedEvent>,
}

impl World {
    /// Generate a world from the configuration.
    pub fn generate(config: WorldConfig) -> Self {
        Generator::new(config).run()
    }

    /// APT class names in label order.
    pub fn apt_names(&self) -> Vec<&str> {
        self.profiles.iter().map(|p| p.name.as_str()).collect()
    }

    /// Resolve a feed tag (canonical name or alias, case-insensitive)
    /// to an APT index.
    pub fn apt_index(&self, tag: &str) -> Option<usize> {
        let t = tag.to_ascii_lowercase();
        self.profiles.iter().position(|p| {
            p.name.to_ascii_lowercase() == t || p.aliases.iter().any(|a| a.to_ascii_lowercase() == t)
        })
    }

    /// Ground-truth label of an event by report id.
    pub fn truth(&self, report_id: &str) -> Option<usize> {
        self.events.iter().find(|e| e.report.id == report_id).map(|e| e.true_apt)
    }

    /// A tiny hand-written world with **no RNG anywhere** in its
    /// construction: every registry entry, cross-link and report below
    /// is a literal. The downstream noise channels (analysis gaps,
    /// feed-noise presentation) are pure fnv1a hashes of this fixed
    /// content, so the TKG built from this world is bit-identical on
    /// every toolchain — the anchor for the golden-fingerprint
    /// regression test. Not suitable for accuracy experiments
    /// (`profiles` is empty and the event sample is minimal).
    pub fn fixture() -> Self {
        let mut config = WorldConfig::tiny(0xF1B5);
        config.n_apts = 3;
        config.cutoff_day = 600;
        config.analysis_miss_prob = 0.1;
        config.feed_noise = 0.3;
        config.transient_fault_prob = 0.0;

        let asns = vec![
            AsnInfo {
                number: 64496,
                name: "FIXTURE-NET-1".into(),
                country: "US".into(),
                issuer: "arin".into(),
                prefix: (185, 10),
                size_log: 12.0,
            },
            AsnInfo {
                number: 64511,
                name: "FIXTURE-NET-2".into(),
                country: "DE".into(),
                issuer: "ripe".into(),
                prefix: (193, 20),
                size_log: 10.0,
            },
        ];

        let ip_names: Vec<String> = [
            "185.10.0.1",
            "185.10.0.2",
            "185.10.0.3",
            "193.20.0.1",
            "193.20.0.2",
            "193.20.0.3",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let ip = |asn: u32, issuer: &str, lat: f32, lon: f32, domains: Vec<u32>| IpTruth {
            asn,
            issuer: issuer.into(),
            lat,
            lon,
            first_day: 10,
            last_day: 500,
            domains,
        };
        let ips = vec![
            ip(0, "arin", 38.9, -77.0, vec![0]),
            ip(0, "arin", 40.7, -74.0, vec![0, 3]),
            ip(0, "ripe", 34.1, -118.2, vec![1]),
            ip(1, "ripe", 52.5, 13.4, vec![2]),
            ip(1, "ripe", 48.1, 11.6, vec![2, 1]),
            ip(1, "arin", 50.1, 8.7, vec![3]),
        ];

        let domain_names: Vec<String> =
            ["alpha-command.net", "bravo-panel.org", "charlie-drop.com", "delta-cdn.io"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect();
        let domains = vec![
            DomainTruth {
                ips: vec![0, 1],
                urls: vec![0],
                extra_records: [1, 0, 1, 1, 1, 0, 0, 0],
                first_day: 20,
                last_day: 450,
            },
            DomainTruth {
                ips: vec![2],
                urls: vec![1],
                extra_records: [0, 1, 1, 1, 0, 0, 0, 0],
                first_day: 60,
                last_day: 480,
            },
            DomainTruth {
                ips: vec![3, 4],
                urls: vec![2],
                extra_records: [2, 0, 1, 1, 1, 1, 0, 0],
                first_day: 90,
                last_day: 500,
            },
            DomainTruth {
                ips: vec![5],
                urls: vec![],
                extra_records: [0, 0, 1, 1, 0, 0, 0, 0],
                first_day: 120,
                last_day: 520,
            },
        ];

        let url_names: Vec<String> = [
            "http://alpha-command.net/gate.php",
            "http://bravo-panel.org/login",
            "http://charlie-drop.com/payload.exe",
            "http://193.20.0.3/beacon",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let urls = vec![
            UrlTruth {
                domain: Some(0),
                ips: vec![0, 1],
                server: "nginx".into(),
                server_os: "linux".into(),
                encoding: "gzip".into(),
                file_type: "text/html".into(),
                file_class: "html".into(),
                http_code: 200,
                services: vec!["http".into()],
                header_flags: vec!["hsts".into()],
                created_day: 50,
            },
            UrlTruth {
                domain: Some(1),
                ips: vec![2],
                server: "apache".into(),
                server_os: "linux".into(),
                encoding: "identity".into(),
                file_type: "text/html".into(),
                file_class: "html".into(),
                http_code: 200,
                services: vec!["http".into(), "https".into()],
                header_flags: vec![],
                created_day: 80,
            },
            UrlTruth {
                domain: Some(2),
                ips: vec![3],
                server: "nginx".into(),
                server_os: "freebsd".into(),
                encoding: "gzip".into(),
                file_type: "application/x-dosexec".into(),
                file_class: "executable".into(),
                http_code: 200,
                services: vec!["http".into()],
                header_flags: vec!["server-tokens".into()],
                created_day: 110,
            },
            UrlTruth {
                domain: None,
                ips: vec![5],
                server: "python".into(),
                server_os: "linux".into(),
                encoding: "identity".into(),
                file_type: "application/octet-stream".into(),
                file_class: "binary".into(),
                http_code: 404,
                services: vec!["http".into()],
                header_flags: vec![],
                created_day: 140,
            },
        ];

        let ind = |t: &str, v: &str| RawIndicator {
            indicator_type: t.into(),
            indicator: v.into(),
        };
        // Six reports, two per APT, with deliberate cross-event IOC
        // reuse and noisy spellings (defanged, mixed case, trailing
        // dot) plus one unparseable indicator.
        let raw_events: Vec<(u32, usize, Vec<&str>, Vec<RawIndicator>)> = vec![
            (
                100,
                0,
                vec!["sofacy", "APT28"],
                vec![
                    ind("URL", "http://alpha-command.net/gate.php"),
                    ind("domain", "alpha-command[.]net"),
                    ind("IPv4", "185.10.0.1"),
                ],
            ),
            (
                150,
                1,
                vec!["cozy-bear"],
                vec![
                    ind("hostname", "Bravo-Panel.ORG."),
                    ind("URL", "hxxp://bravo-panel[.]org/login"),
                    ind("IPv4", "185.10.0.3"),
                ],
            ),
            (
                200,
                2,
                vec!["APT27"],
                vec![
                    ind("URL", "http://charlie-drop.com/payload.exe"),
                    ind("IPv4", "193.20.0[.]1"),
                    ind("domain", "charlie-drop.com"),
                ],
            ),
            (
                250,
                0,
                vec!["APT28"],
                vec![
                    ind("IPv4", "185.10.0[.]1"),
                    ind("domain", "delta-cdn.io"),
                    ind("URL", "http://193.20.0.3/beacon"),
                ],
            ),
            (
                300,
                1,
                vec!["APT29"],
                vec![
                    ind("domain", "bravo-panel.org"),
                    ind("IPv4", "193.20.0.2"),
                    ind("domain", "not a domain!!"),
                ],
            ),
            (
                350,
                2,
                vec!["APT27"],
                vec![
                    ind("URL", "hxxp://charlie-drop[.]com/payload.exe"),
                    ind("IPv4", "193.20.0.3"),
                    ind("hostname", "charlie-drop.com."),
                ],
            ),
        ];
        let events: Vec<GeneratedEvent> = raw_events
            .into_iter()
            .enumerate()
            .map(|(i, (day, true_apt, tags, indicators))| GeneratedEvent {
                report: RawReport {
                    id: format!("FIX-{i:04}"),
                    created_day: day,
                    tags: tags.into_iter().map(str::to_owned).collect(),
                    indicators,
                },
                true_apt,
                day,
            })
            .collect();

        let index = |names: &[String]| -> HashMap<String, u32> {
            names.iter().enumerate().map(|(i, n)| (n.clone(), i as u32)).collect()
        };
        let (ip_index, domain_index, url_index) =
            (index(&ip_names), index(&domain_names), index(&url_names));
        World {
            config,
            profiles: Vec::new(),
            asns,
            ips,
            ip_names,
            ip_index,
            domains,
            domain_names,
            domain_index,
            urls,
            url_names,
            url_index,
            events,
        }
    }

    /// Registry sizes `(ips, domains, urls, asns)` — world inventory.
    pub fn inventory(&self) -> (usize, usize, usize, usize) {
        (self.ips.len(), self.domains.len(), self.urls.len(), self.asns.len())
    }

    /// All IP addresses in the world registry.
    pub fn ip_names(&self) -> &[String] {
        &self.ip_names
    }

    /// All domain names in the world registry.
    pub fn domain_names(&self) -> &[String] {
        &self.domain_names
    }

    /// All URLs in the world registry.
    pub fn url_names(&self) -> &[String] {
        &self.url_names
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

struct Generator {
    cfg: WorldConfig,
    rng: StdRng,
    profiles: Vec<AptProfile>,
    asns: Vec<AsnInfo>,
    ips: Vec<IpTruth>,
    ip_names: Vec<String>,
    ip_index: HashMap<String, u32>,
    domains: Vec<DomainTruth>,
    domain_names: Vec<String>,
    domain_index: HashMap<String, u32>,
    urls: Vec<UrlTruth>,
    url_names: Vec<String>,
    url_index: HashMap<String, u32>,
    backbones: Vec<Vec<u32>>,
    shared_ips: Vec<u32>,
    shared_domains: Vec<u32>,
    events: Vec<GeneratedEvent>,
    asn_by_country: HashMap<String, Vec<usize>>,
}

/// Geopolitical clusters: groups in the same cluster share hosting
/// habits, which is what makes e.g. APT37 confusable with APT38 in the
/// paper's Fig. 7.
fn cluster_of(name: &str) -> usize {
    match name {
        "APT37" | "APT38" | "KIMSUKY" => 0,                                  // DPRK
        "APT1" | "APT3" | "APT10" | "APT17" | "APT27" | "APT40" | "APT41" => 1, // CN
        "APT28" | "APT29" | "TURLA" | "SANDWORM" => 2,                        // RU
        _ => 3,                                                               // crimeware
    }
}

const CLUSTER_COUNTRIES: [&[&str]; 4] = [
    &["kp", "cn", "ru"],
    &["cn", "hk", "sg"],
    &["ru", "nl", "lv"],
    &["us", "de", "nl"],
];

impl Generator {
    fn new(cfg: WorldConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            profiles: Vec::new(),
            asns: Vec::new(),
            ips: Vec::new(),
            ip_names: Vec::new(),
            ip_index: HashMap::new(),
            domains: Vec::new(),
            domain_names: Vec::new(),
            domain_index: HashMap::new(),
            urls: Vec::new(),
            url_names: Vec::new(),
            url_index: HashMap::new(),
            backbones: Vec::new(),
            shared_ips: Vec::new(),
            shared_domains: Vec::new(),
            events: Vec::new(),
            asn_by_country: HashMap::new(),
        }
    }

    fn run(mut self) -> World {
        self.gen_asns();
        self.gen_profiles();
        self.gen_shared_infra();
        self.gen_backbones();
        self.gen_timeline();
        self.events.sort_by_key(|e| e.day);
        World {
            config: self.cfg,
            profiles: self.profiles,
            asns: self.asns,
            ips: self.ips,
            ip_names: self.ip_names,
            ip_index: self.ip_index,
            domains: self.domains,
            domain_names: self.domain_names,
            domain_index: self.domain_index,
            urls: self.urls,
            url_names: self.url_names,
            url_index: self.url_index,
            events: self.events,
        }
    }

    fn gen_asns(&mut self) {
        for i in 0..self.cfg.n_asns {
            let a = FIRST_OCTETS[i % FIRST_OCTETS.len()];
            let b = (i / FIRST_OCTETS.len()) as u8;
            let country = pools::COUNTRIES[self.rng.gen_range(0..pools::COUNTRIES.len())];
            let issuer = pools::ISSUERS[self.rng.gen_range(0..pools::ISSUERS.len())];
            self.asn_by_country.entry(country.to_owned()).or_default().push(i);
            self.asns.push(AsnInfo {
                number: 64512 + i as u32,
                name: format!("AS-{}-{}", country.to_uppercase(), i),
                country: country.to_owned(),
                issuer: issuer.to_owned(),
                prefix: (a, b),
                size_log: self.rng.gen_range(8.0..20.0),
            });
        }
    }

    fn gen_profiles(&mut self) {
        let n = self.cfg.n_apts.min(APT_NAMES.len());
        for (rank, name) in APT_NAMES.iter().take(n).enumerate() {
            let mut p = AptProfile::generate(&mut self.rng, name, rank);
            // Cluster members share hosting countries (with individual order).
            let cluster = CLUSTER_COUNTRIES[cluster_of(name)];
            let mut order: Vec<&str> = cluster.to_vec();
            order.shuffle(&mut self.rng);
            p.countries = crate::profile::Preference {
                choices: order
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (c.to_owned(), 0.5f32.powi(i as i32)))
                    .collect(),
            };
            // Preferred ASNs drawn from the profile's top countries.
            for _ in 0..3 {
                let country = p.countries.sample(&mut self.rng).to_owned();
                if let Some(cands) = self.asn_by_country.get(&country) {
                    p.preferred_asns.push(cands[self.rng.gen_range(0..cands.len())]);
                }
            }
            if p.preferred_asns.is_empty() {
                p.preferred_asns.push(self.rng.gen_range(0..self.asns.len()));
            }
            self.profiles.push(p);
        }
    }

    fn gen_shared_infra(&mut self) {
        // Popular benign infrastructure many reports touch: public DNS,
        // CDNs, compromised shared hosting.
        for i in 0..self.cfg.shared_infra_size {
            let asn = self.rng.gen_range(0..self.asns.len());
            let ip = self.new_ip_on_asn(asn, 0, None);
            self.shared_ips.push(ip);
            if i % 2 == 0 {
                let d = self.new_domain_raw(None, 0, &[ip]);
                self.shared_domains.push(d);
            }
        }
        // Shared domains also resolve to several shared IPs → high-degree
        // noise hubs whose propagated labels wash out (paper Section VI-B).
        for &d in &self.shared_domains.clone() {
            for _ in 0..3 {
                let ip = self.shared_ips[self.rng.gen_range(0..self.shared_ips.len())];
                self.link_domain_ip(d, ip);
            }
        }
    }

    fn gen_backbones(&mut self) {
        for apt in 0..self.profiles.len() {
            let mut bb = Vec::new();
            for _ in 0..self.cfg.backbone_ips_per_apt {
                let asn = self.pick_asn(Some(apt));
                let ip = self.new_ip_on_asn(asn, 0, Some(apt));
                bb.push(ip);
            }
            self.backbones.push(bb);
        }
        // DPRK cluster groups share part of their backbones — the overlap
        // MITRE notes ("North Korean groups ... often all reported as
        // Lazarus"), which drives the Fig. 7 confusions.
        let nk: Vec<usize> = self
            .profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| cluster_of(&p.name) == 0)
            .map(|(i, _)| i)
            .collect();
        if nk.len() > 1 {
            let donor = nk[0];
            let shared: Vec<u32> =
                self.backbones[donor].iter().take(self.cfg.backbone_ips_per_apt / 2).copied().collect();
            for &g in &nk[1..] {
                self.backbones[g].extend_from_slice(&shared);
            }
        }
    }

    fn gen_timeline(&mut self) {
        // Assign main-window events to APTs by activity weight.
        let weights: Vec<f32> = self.profiles.iter().map(|p| p.activity_weight).collect();
        let total_w: f32 = weights.iter().sum();
        let mut counts: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total_w) * self.cfg.n_events as f32).round() as usize)
            .collect();
        // Paper rule: an APT needs >= 25 events to be included; enforce a
        // proportional floor so every class has train/test support.
        let floor = (self.cfg.n_events / self.cfg.n_apts / 4).max(5);
        for c in &mut counts {
            *c = (*c).max(floor);
        }

        let mut event_seq = 0usize;
        for apt in 0..self.profiles.len() {
            let mut days: Vec<u32> =
                (0..counts[apt]).map(|_| self.rng.gen_range(0..self.cfg.cutoff_day)).collect();
            days.sort_unstable();
            let mut campaign = self.new_campaign(apt, *days.first().unwrap_or(&0));
            let mut remaining = self.campaign_length();
            for day in days {
                if remaining == 0 {
                    campaign = self.new_campaign(apt, day);
                    remaining = self.campaign_length();
                }
                remaining -= 1;
                let ev = self.gen_event(apt, &mut campaign, day, event_seq);
                self.events.push(ev);
                event_seq += 1;
            }
        }

        // Post-cutoff study window: drifting behaviour, NK-heavy mix.
        let nk_heavy: Vec<usize> = self
            .profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| cluster_of(&p.name) == 0 || p.name == "APT27")
            .map(|(i, _)| i)
            .collect();
        let mut study_campaigns: HashMap<usize, (Campaign, usize)> = HashMap::new();
        for month in 0..self.cfg.study_months {
            // Behavioural drift accumulates month over month.
            for apt in 0..self.profiles.len() {
                if self.rng.gen::<f32>() < 0.35 {
                    let mut p = self.profiles[apt].clone();
                    p.drift(&mut self.rng);
                    self.profiles[apt] = p;
                    study_campaigns.remove(&apt); // drift retires infrastructure
                }
            }
            for _ in 0..self.cfg.study_events_per_month {
                let apt = if self.rng.gen::<f32>() < 0.55 && !nk_heavy.is_empty() {
                    nk_heavy[self.rng.gen_range(0..nk_heavy.len())]
                } else {
                    self.rng.gen_range(0..self.profiles.len())
                };
                let day = self.cfg.cutoff_day
                    + month * DAYS_PER_MONTH
                    + self.rng.gen_range(0..DAYS_PER_MONTH);
                let length = self.campaign_length();
                let entry = match study_campaigns.remove(&apt) {
                    Some((c, rem)) if rem > 0 => (c, rem),
                    _ => (self.new_campaign(apt, day), length),
                };
                let (mut c, rem) = entry;
                let ev = self.gen_event(apt, &mut c, day, event_seq);
                self.events.push(ev);
                event_seq += 1;
                study_campaigns.insert(apt, (c, rem - 1));
            }
        }
    }

    fn campaign_length(&mut self) -> usize {
        // Geometric with the configured mean, at least 1.
        let p = 1.0 / self.cfg.mean_events_per_campaign.max(1.0);
        let mut n = 1;
        while self.rng.gen::<f32>() > p && n < 40 {
            n += 1;
        }
        n
    }

    // --- infrastructure creation ---------------------------------------

    fn pick_asn(&mut self, apt: Option<usize>) -> usize {
        if let Some(a) = apt {
            if self.rng.gen::<f32>() < self.cfg.ip_signal {
                let pref = &self.profiles[a].preferred_asns;
                return pref[self.rng.gen_range(0..pref.len())];
            }
        }
        self.rng.gen_range(0..self.asns.len())
    }

    fn new_ip_on_asn(&mut self, asn: usize, day: u32, apt: Option<usize>) -> u32 {
        let (a, b) = self.asns[asn].prefix;
        let text = loop {
            let t = format!("{a}.{b}.{}.{}", self.rng.gen_range(0..256), self.rng.gen_range(1..255));
            if !self.ip_index.contains_key(&t) {
                break t;
            }
        };
        let issuer = match apt {
            Some(i) if self.rng.gen::<f32>() < self.cfg.ip_signal => {
                self.profiles[i].issuers.sample(&mut self.rng).to_owned()
            }
            _ => self.asns[asn].issuer.clone(),
        };
        // Country-coherent geolocation: hash the country into a base
        // coordinate, then jitter.
        let h = trail_ioc::vocab::fnv1a(&self.asns[asn].country);
        let lat = ((h % 120) as f32 - 60.0) + self.rng.gen_range(-3.0..3.0);
        let lon = (((h >> 8) % 300) as f32 - 150.0) + self.rng.gen_range(-3.0..3.0);
        let idx = self.ips.len() as u32;
        self.ips.push(IpTruth {
            asn: asn as u32,
            issuer,
            lat,
            lon,
            first_day: day,
            last_day: day,
            domains: Vec::new(),
        });
        self.ip_names.push(text.clone());
        self.ip_index.insert(text, idx);
        // Co-hosted tenants: domains that resolve here but are never
        // reported in any event. Passive DNS surfaces them during
        // enrichment — they are the bulk of the paper's secondary nodes.
        let max_cohosted = (2.0 * self.cfg.pdns_domains_per_ip) as usize;
        if max_cohosted > 0 {
            let k = self.rng.gen_range(0..=max_cohosted);
            for _ in 0..k {
                self.new_domain_raw(None, day, &[idx]);
            }
        }
        idx
    }

    fn new_ip(&mut self, apt: Option<usize>, day: u32) -> u32 {
        let asn = self.pick_asn(apt);
        self.new_ip_on_asn(asn, day, apt)
    }

    /// A hidden (never-reported) IP carrying the APT's fingerprint,
    /// linked to `domain` — only discoverable through enrichment.
    fn attach_hidden_ip(&mut self, apt: usize, day: u32, domain: u32) {
        if self.rng.gen::<f32>() < self.cfg.hidden_ip_prob {
            let ip = self.new_ip(Some(apt), day);
            self.link_domain_ip(domain, ip);
        }
    }

    fn link_domain_ip(&mut self, d: u32, ip: u32) {
        if !self.domains[d as usize].ips.contains(&ip) {
            self.domains[d as usize].ips.push(ip);
        }
        if !self.ips[ip as usize].domains.contains(&d) {
            self.ips[ip as usize].domains.push(d);
        }
    }

    fn new_domain_raw(&mut self, apt: Option<usize>, day: u32, resolve_to: &[u32]) -> u32 {
        let (label, tld, subdomain) = match apt {
            Some(a) if self.rng.gen::<f32>() < self.cfg.domain_signal => {
                let p = self.profiles[a].clone();
                let label = if self.rng.gen::<f32>() < p.style.dga_prob {
                    let len = self.rng.gen_range(p.style.dga_len.0..=p.style.dga_len.1);
                    naming::dga_label(&mut self.rng, len, p.style.digit_affinity)
                } else {
                    naming::word_label(&mut self.rng)
                };
                let sub = if self.rng.gen::<f32>() < p.style.subdomain_prob {
                    let len = self.rng.gen_range(4..8);
                    Some(naming::dga_label(&mut self.rng, len, 0.3))
                } else {
                    None
                };
                (label, p.tlds.sample(&mut self.rng).to_owned(), sub)
            }
            _ => {
                let label = if self.rng.gen::<f32>() < 0.5 {
                    naming::word_label(&mut self.rng)
                } else {
                    let len = self.rng.gen_range(6..14);
                    naming::dga_label(&mut self.rng, len, 0.25)
                };
                (label, pools::TLDS[self.rng.gen_range(0..pools::TLDS.len())].to_owned(), None)
            }
        };
        let name = match subdomain {
            Some(s) => format!("{s}.{label}.{tld}"),
            None => format!("{label}.{tld}"),
        };
        if let Some(&existing) = self.domain_index.get(&name) {
            return existing; // rare collision: treat as reuse
        }
        let idx = self.domains.len() as u32;
        self.domains.push(DomainTruth {
            ips: Vec::new(),
            urls: Vec::new(),
            extra_records: [
                0,
                0,
                self.rng.gen_range(0..2),
                self.rng.gen_range(1..3),
                self.rng.gen_range(0..3),
                1,
                0,
                0,
            ],
            first_day: day,
            last_day: day,
        });
        self.domain_names.push(name.clone());
        self.domain_index.insert(name, idx);
        for &ip in resolve_to {
            self.link_domain_ip(idx, ip);
        }
        idx
    }

    fn new_url(&mut self, apt: usize, day: u32, campaign: &Campaign) -> u32 {
        let p = self.profiles[apt].clone();
        let signal = self.rng.gen::<f32>() < self.cfg.url_signal;
        // Host: usually a campaign domain, sometimes a bare IP.
        let (host, domain_idx, ip_idx) = if !campaign.domains.is_empty() && self.rng.gen::<f32>() < 0.9
        {
            let d = campaign.domains[self.rng.gen_range(0..campaign.domains.len())];
            (self.domain_names[d as usize].clone(), Some(d), None)
        } else if !campaign.ips.is_empty() {
            let ip = campaign.ips[self.rng.gen_range(0..campaign.ips.len())];
            (self.ip_names[ip as usize].clone(), None, Some(ip))
        } else {
            let ip = self.new_ip(Some(apt), day);
            (self.ip_names[ip as usize].clone(), None, Some(ip))
        };
        let depth = self.rng.gen_range(p.style.path_depth.0..=p.style.path_depth.1);
        let entropy = if signal { p.style.path_entropy } else { self.rng.gen_range(0.0..1.0) };
        let (path, ext_idx) = naming::url_path(&mut self.rng, depth, entropy);
        let port = if self.rng.gen::<f32>() < p.style.port_prob {
            format!(":{}", [8080u16, 8443, 443, 8000, 4443][self.rng.gen_range(0..5)])
        } else {
            String::new()
        };
        let query = if self.rng.gen::<f32>() < p.style.query_prob {
            format!("?{}={}", naming::dga_label(&mut self.rng, 2, 0.0), naming::dga_label(&mut self.rng, 6, 0.6))
        } else {
            String::new()
        };
        let text = format!("http://{host}{port}{path}{query}");
        if let Some(&existing) = self.url_index.get(&text) {
            return existing;
        }
        let (ext, mime, class) = naming::EXTENSIONS[ext_idx];
        let _ = ext;
        let (server, os, encoding) = if signal {
            (
                p.servers.sample(&mut self.rng).to_owned(),
                p.oses.sample(&mut self.rng).to_owned(),
                p.encodings.sample(&mut self.rng).to_owned(),
            )
        } else {
            (
                {
                    let base = pools::SERVERS[self.rng.gen_range(0..pools::SERVERS.len())];
                    naming::server_banner(&mut self.rng, base)
                },
                pools::OSES[self.rng.gen_range(0..pools::OSES.len())].to_owned(),
                pools::ENCODINGS[self.rng.gen_range(0..pools::ENCODINGS.len())].to_owned(),
            )
        };
        let services: Vec<String> = if signal {
            let mut s = vec![p.services.top().to_owned()];
            if self.rng.gen::<f32>() < 0.5 {
                s.push(p.services.sample(&mut self.rng).to_owned());
            }
            s
        } else {
            vec![pools::SERVICES[self.rng.gen_range(0..pools::SERVICES.len())].to_owned()]
        };
        let header_flags: Vec<String> = if signal && self.rng.gen::<f32>() < 0.7 {
            vec![p.header_flags.sample(&mut self.rng).to_owned()]
        } else {
            Vec::new()
        };
        let resolved = match (domain_idx, ip_idx) {
            (Some(d), _) => self.domains[d as usize].ips.clone(),
            (None, Some(ip)) => vec![ip],
            _ => Vec::new(),
        };
        let idx = self.urls.len() as u32;
        self.urls.push(UrlTruth {
            domain: domain_idx,
            ips: resolved,
            server,
            server_os: os,
            encoding,
            file_type: mime.to_owned(),
            file_class: class.to_owned(),
            http_code: pools::HTTP_CODES[self.rng.gen_range(0..pools::HTTP_CODES.len())],
            services,
            header_flags,
            created_day: day,
        });
        if let Some(d) = domain_idx {
            self.domains[d as usize].urls.push(idx);
        }
        self.url_names.push(text.clone());
        self.url_index.insert(text, idx);
        idx
    }

    fn new_campaign(&mut self, apt: usize, day: u32) -> Campaign {
        let mut ips = Vec::new();
        for _ in 0..3 {
            ips.push(self.new_ip(Some(apt), day));
        }
        let favorite_c2 = ips[0];
        let mut domains = Vec::new();
        for _ in 0..4 {
            let n_res = self.rng.gen_range(1..=2usize);
            let resolve: Vec<u32> =
                (0..n_res).map(|_| ips[self.rng.gen_range(0..ips.len())]).collect();
            let d = self.new_domain_raw(Some(apt), day, &resolve);
            // The enrichment-only connectivity: some campaign domains also
            // resolve to the APT backbone, which is rarely reported
            // directly — these links only surface via passive DNS.
            if self.rng.gen::<f32>() < self.cfg.backbone_link_prob {
                let bb = &self.backbones[apt];
                let ip = bb[self.rng.gen_range(0..bb.len())];
                self.link_domain_ip(d, ip);
            }
            domains.push(d);
        }
        // Hidden IPs behind campaign domains (enrichment-only links).
        for d in domains.clone() {
            self.attach_hidden_ip(apt, day, d);
        }
        let mut campaign = Campaign { ips, domains, urls: Vec::new(), favorite_c2 };
        for _ in 0..4 {
            let u = self.new_url(apt, day, &campaign);
            campaign.urls.push(u);
        }
        // Unreported URLs on campaign domains: same APT fingerprint,
        // only surfaced by the domain `url_list` enrichment.
        for _ in 0..self.cfg.hidden_urls_per_campaign {
            self.new_url(apt, day, &campaign);
        }
        campaign
    }

    // --- event generation -----------------------------------------------

    fn gen_event(
        &mut self,
        apt: usize,
        campaign: &mut Campaign,
        day: u32,
        seq: usize,
    ) -> GeneratedEvent {
        let lognorm = LogNormal::new(0.0, 0.55).expect("valid params");
        let n_iocs =
            ((self.cfg.mean_iocs_per_event * lognorm.sample(&mut self.rng) as f32) as usize).max(4);
        let mut indicators = Vec::with_capacity(n_iocs + 2);
        let mut seen = std::collections::HashSet::new();

        // The campaign's favorite C2 appears in most of its reports —
        // the Fig. 4 heavy-reuse tail (Cobalt Strike style servers).
        if self.rng.gen::<f32>() < 0.35 {
            let name = self.ip_names[campaign.favorite_c2 as usize].clone();
            seen.insert(name.clone());
            indicators.push(RawIndicator { indicator_type: "IPv4".into(), indicator: name });
            self.touch_ip(campaign.favorite_c2, day);
        }

        for _ in 0..n_iocs {
            let roll = self.rng.gen::<f32>();
            let (itype, text) = if roll < 0.48 {
                ("URL", self.event_url(apt, day, campaign))
            } else if roll < 0.79 {
                ("domain", self.event_domain(apt, day, campaign))
            } else {
                ("IPv4", self.event_ip(apt, day, campaign))
            };
            if seen.insert(text.clone()) {
                // Reports defang a third of their indicators.
                let text = if self.rng.gen::<f32>() < 0.33 {
                    trail_ioc::defang::defang(&text)
                } else {
                    text
                };
                indicators.push(RawIndicator { indicator_type: itype.into(), indicator: text });
            }
        }

        if self.rng.gen::<f32>() < self.cfg.junk_indicator_prob * n_iocs as f32 {
            indicators.push(RawIndicator {
                indicator_type: "URL".into(),
                indicator: "javascript:document.write('<img src=x>')".into(),
            });
        }

        // Tags: canonical name or an alias; label noise swaps the APT.
        let tagged_apt = if self.rng.gen::<f32>() < self.cfg.label_noise {
            self.rng.gen_range(0..self.profiles.len())
        } else {
            apt
        };
        let p = &self.profiles[tagged_apt];
        let mut tags = Vec::new();
        if !p.aliases.is_empty() && self.rng.gen::<f32>() < 0.4 {
            tags.push(p.aliases[self.rng.gen_range(0..p.aliases.len())].clone());
            if self.rng.gen::<f32>() < 0.5 {
                tags.push(p.name.clone());
            }
        } else {
            tags.push(p.name.clone());
        }

        GeneratedEvent {
            report: RawReport {
                id: format!("pulse-{seq:05}"),
                created_day: day,
                tags,
                indicators,
            },
            true_apt: apt,
            day,
        }
    }

    fn touch_ip(&mut self, ip: u32, day: u32) {
        let t = &mut self.ips[ip as usize];
        t.first_day = t.first_day.min(day);
        t.last_day = t.last_day.max(day);
    }

    fn touch_domain(&mut self, d: u32, day: u32) {
        let t = &mut self.domains[d as usize];
        t.first_day = t.first_day.min(day);
        t.last_day = t.last_day.max(day);
    }

    fn event_ip(&mut self, apt: usize, day: u32, campaign: &mut Campaign) -> String {
        let idx = if self.rng.gen::<f32>() < self.cfg.shared_infra_prob {
            self.shared_ips[self.rng.gen_range(0..self.shared_ips.len())]
        } else if self.rng.gen::<f32>() < self.cfg.pool_reuse_prob && !campaign.ips.is_empty() {
            campaign.ips[self.rng.gen_range(0..campaign.ips.len())]
        } else {
            let ip = self.new_ip(Some(apt), day);
            campaign.ips.push(ip);
            ip
        };
        self.touch_ip(idx, day);
        self.ip_names[idx as usize].clone()
    }

    fn event_domain(&mut self, apt: usize, day: u32, campaign: &mut Campaign) -> String {
        let idx = if self.rng.gen::<f32>() < self.cfg.shared_infra_prob
            && !self.shared_domains.is_empty()
        {
            self.shared_domains[self.rng.gen_range(0..self.shared_domains.len())]
        } else if self.rng.gen::<f32>() < self.cfg.pool_reuse_prob && !campaign.domains.is_empty() {
            campaign.domains[self.rng.gen_range(0..campaign.domains.len())]
        } else {
            let n_res = self.rng.gen_range(1..=2usize);
            let resolve: Vec<u32> = (0..n_res)
                .filter_map(|_| {
                    if campaign.ips.is_empty() {
                        None
                    } else {
                        Some(campaign.ips[self.rng.gen_range(0..campaign.ips.len())])
                    }
                })
                .collect();
            let d = self.new_domain_raw(Some(apt), day, &resolve);
            if self.rng.gen::<f32>() < self.cfg.backbone_link_prob {
                let bb = &self.backbones[apt];
                let ip = bb[self.rng.gen_range(0..bb.len())];
                self.link_domain_ip(d, ip);
            }
            self.attach_hidden_ip(apt, day, d);
            campaign.domains.push(d);
            d
        };
        self.touch_domain(idx, day);
        self.domain_names[idx as usize].clone()
    }

    fn event_url(&mut self, apt: usize, day: u32, campaign: &mut Campaign) -> String {
        let idx = if self.rng.gen::<f32>() < self.cfg.pool_reuse_prob && !campaign.urls.is_empty() {
            campaign.urls[self.rng.gen_range(0..campaign.urls.len())]
        } else {
            let u = self.new_url(apt, day, campaign);
            campaign.urls.push(u);
            u
        };
        if let Some(d) = self.urls[idx as usize].domain {
            self.touch_domain(d, day);
        }
        self.url_names[idx as usize].clone()
    }
}

/// A deterministic fault plan for the chaos harness.
///
/// Derived entirely from one seed by integer mixing (no RNG crate
/// involved), so the same `--chaos SEED` produces the same faults, the
/// same mid-study kill points and the same snapshot-corruption drill on
/// every machine. The plan stays deliberately coarse: it perturbs the
/// *world's* fault knobs and names where to crash/corrupt; the harness
/// decides what to assert.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// The seed this plan was derived from.
    pub seed: u64,
    /// Transient-fault probability injected into the world.
    pub transient_fault_prob: f32,
    /// Analysis-gap probability injected into the world.
    pub analysis_miss_prob: f32,
    /// One plan in three simulates a fully dead feed: every attempt
    /// faults, so enrichment must degrade rather than converge.
    pub feed_dead: bool,
    /// Study-window indices after which the run is killed and resumed
    /// from the latest checkpoint (always non-empty, strictly
    /// increasing).
    pub kill_windows: Vec<u32>,
    /// Byte offsets (modulo snapshot length at use time) to flip in the
    /// snapshot-corruption drill.
    pub corrupt_offsets: Vec<u64>,
    /// Byte offsets (modulo total WAL length at use time) at which the
    /// streaming writer is "killed" in the WAL drill: the log is cut
    /// there — mid-append, mid-header, mid-rotation, wherever the
    /// offset lands — and recovery must replay the durable prefix
    /// bitwise.
    pub wal_cut_points: Vec<u64>,
    /// Byte offsets (modulo sealed-segment length at use time) to flip
    /// in a *sealed* WAL segment: recovery must surface a typed
    /// corruption error naming the segment, never a panic or a silent
    /// skip.
    pub wal_corrupt_offsets: Vec<u64>,
}

/// splitmix64 finalizer — the standard 64-bit mixer; good avalanche,
/// no state, perfect for deriving independent plan fields from a seed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ChaosPlan {
    /// Derive the plan for `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let feed_dead = mix64(seed ^ 0xdead) % 3 == 0;
        let transient_fault_prob = if feed_dead {
            1.0
        } else {
            // 0.30 ..= 0.90 in steps of 0.05: hostile but survivable.
            0.30 + (mix64(seed ^ 0xfa01) % 13) as f32 * 0.05
        };
        let analysis_miss_prob = 0.05 + (mix64(seed ^ 0x9155) % 4) as f32 * 0.05;
        // Two distinct kill points inside a study of >= 2 windows.
        let k1 = (mix64(seed ^ 0x0111) % 2) as u32; // window 0 or 1
        let k2 = k1 + 1 + (mix64(seed ^ 0x0222) % 2) as u32;
        let corrupt_offsets =
            (0..4).map(|i| mix64(seed ^ (0xc0_44 + i))).collect();
        let wal_cut_points = (0..4).map(|i| mix64(seed ^ (0x3a1_0 + i))).collect();
        let wal_corrupt_offsets = (0..2).map(|i| mix64(seed ^ (0xf1_1b + i))).collect();
        Self {
            seed,
            transient_fault_prob,
            analysis_miss_prob,
            feed_dead,
            kill_windows: vec![k1, k2],
            corrupt_offsets,
            wal_cut_points,
            wal_corrupt_offsets,
        }
    }

    /// Apply the plan's fault knobs to a world configuration.
    pub fn apply(&self, cfg: &mut WorldConfig) {
        cfg.transient_fault_prob = self.transient_fault_prob;
        cfg.analysis_miss_prob = self.analysis_miss_prob;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plan_is_deterministic_and_well_formed() {
        for seed in [0u64, 1, 2, 3, 0xfeed, u64::MAX] {
            let a = ChaosPlan::from_seed(seed);
            let b = ChaosPlan::from_seed(seed);
            assert_eq!(a, b, "plan for seed {seed} not reproducible");
            assert!(a.transient_fault_prob > 0.0 && a.transient_fault_prob <= 1.0);
            assert!(a.analysis_miss_prob > 0.0 && a.analysis_miss_prob < 0.5);
            if a.feed_dead {
                assert_eq!(a.transient_fault_prob, 1.0);
            }
            assert_eq!(a.kill_windows.len(), 2);
            assert!(a.kill_windows[0] < a.kill_windows[1]);
            assert_eq!(a.corrupt_offsets.len(), 4);
            assert_eq!(a.wal_cut_points.len(), 4);
            assert_eq!(a.wal_corrupt_offsets.len(), 2);
        }
        // Some seed in a small range exercises the dead-feed branch and
        // some seed does not.
        let dead = (0..8u64).filter(|&s| ChaosPlan::from_seed(s).feed_dead).count();
        assert!(dead > 0 && dead < 8, "{dead}/8 dead-feed plans");
    }

    #[test]
    fn chaos_plan_applies_to_config() {
        let plan = ChaosPlan::from_seed(7);
        let mut cfg = WorldConfig::tiny(7);
        plan.apply(&mut cfg);
        assert_eq!(cfg.transient_fault_prob, plan.transient_fault_prob);
        assert_eq!(cfg.analysis_miss_prob, plan.analysis_miss_prob);
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = World::generate(WorldConfig::tiny(42));
        let w2 = World::generate(WorldConfig::tiny(42));
        assert_eq!(w1.events.len(), w2.events.len());
        assert_eq!(w1.events[0].report, w2.events[0].report);
        assert_eq!(w1.inventory(), w2.inventory());
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = World::generate(WorldConfig::tiny(1));
        let w2 = World::generate(WorldConfig::tiny(2));
        assert_ne!(w1.events[0].report.indicators, w2.events[0].report.indicators);
    }

    #[test]
    fn events_sorted_and_within_horizon() {
        let cfg = WorldConfig::tiny(7);
        let horizon = cfg.horizon_day();
        let w = World::generate(cfg);
        assert!(w.events.windows(2).all(|p| p[0].day <= p[1].day));
        assert!(w.events.iter().all(|e| e.day < horizon));
        // Both main-window and study-window events exist.
        assert!(w.events.iter().any(|e| e.day < w.config.cutoff_day));
        assert!(w.events.iter().any(|e| e.day >= w.config.cutoff_day));
    }

    #[test]
    fn every_apt_has_events() {
        let w = World::generate(WorldConfig::tiny(7));
        for apt in 0..w.config.n_apts {
            let n = w.events.iter().filter(|e| e.true_apt == apt).count();
            assert!(n >= 5, "APT {apt} has only {n} events");
        }
    }

    #[test]
    fn alias_resolution_works() {
        let w = World::generate(WorldConfig::tiny(3));
        assert_eq!(w.apt_index("APT28"), Some(0));
        assert_eq!(w.apt_index("sofacy"), Some(0));
        assert_eq!(w.apt_index("Fancy-Bear"), Some(0));
        assert_eq!(w.apt_index("nonexistent"), None);
    }

    #[test]
    fn reports_contain_parseable_iocs() {
        let w = World::generate(WorldConfig::tiny(5));
        let mut total = 0;
        let mut ok = 0;
        for e in &w.events {
            let parsed = e.report.parse();
            total += e.report.indicators.len();
            ok += parsed.iocs.len();
        }
        // Nearly all indicators parse (junk is injected deliberately).
        assert!(ok as f32 / total as f32 > 0.9, "{ok}/{total}");
    }

    #[test]
    fn reuse_exists_across_events() {
        let w = World::generate(WorldConfig::tiny(11));
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for e in &w.events {
            let mut in_event = std::collections::HashSet::new();
            for ind in &e.report.indicators {
                in_event.insert(ind.indicator.as_str());
            }
            for t in in_event {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let reused = counts.values().filter(|&&c| c > 1).count();
        assert!(reused > 0, "no IOC reuse generated");
        // And a heavy tail: some IOC appears in many events.
        assert!(counts.values().copied().max().unwrap() >= 3);
    }

    #[test]
    fn truth_lookup() {
        let w = World::generate(WorldConfig::tiny(5));
        let e = &w.events[0];
        assert_eq!(w.truth(&e.report.id), Some(e.true_apt));
        assert_eq!(w.truth("pulse-99999"), None);
    }

    #[test]
    fn fixture_is_internally_consistent() {
        let w = World::fixture();
        // Index maps resolve every registry name to its position.
        for (i, n) in w.ip_names.iter().enumerate() {
            assert_eq!(w.ip_index[n], i as u32);
        }
        for (i, n) in w.domain_names.iter().enumerate() {
            assert_eq!(w.domain_index[n], i as u32);
        }
        for (i, n) in w.url_names.iter().enumerate() {
            assert_eq!(w.url_index[n], i as u32);
        }
        // Cross-links stay in bounds.
        for t in &w.ips {
            assert!((t.asn as usize) < w.asns.len());
            assert!(t.domains.iter().all(|&d| (d as usize) < w.domains.len()));
        }
        for t in &w.domains {
            assert!(t.ips.iter().all(|&i| (i as usize) < w.ips.len()));
            assert!(t.urls.iter().all(|&u| (u as usize) < w.urls.len()));
        }
        for t in &w.urls {
            assert!(t.domain.is_none_or(|d| (d as usize) < w.domains.len()));
            assert!(t.ips.iter().all(|&i| (i as usize) < w.ips.len()));
        }
        // Every event carries a resolvable label and lies pre-cutoff.
        for e in &w.events {
            assert!(e.true_apt < w.config.n_apts);
            assert!(e.day < w.config.cutoff_day);
            assert_eq!(e.report.created_day, e.day);
        }
        // Two fixtures are identical — no hidden randomness.
        let w2 = World::fixture();
        assert_eq!(w.events.len(), w2.events.len());
        for (a, b) in w.events.iter().zip(&w2.events) {
            assert_eq!(a.report, b.report);
        }
    }
}
