//! Offline stand-in for `proptest` covering the repo's usage: the
//! `proptest!` macro with `pat in strategy` arguments, numeric-range and
//! tuple strategies, `collection::vec`, `any::<bool>()`, and a small
//! regex-subset string strategy (`".{0,24}"`, `"[a-z0-9.]{0,16}"` style
//! patterns).
//!
//! No shrinking: a failing case panics with the generated inputs in the
//! assertion message (cases are generated from a per-test deterministic
//! seed, so failures reproduce).

use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the 1-CPU harness fast while
        // still exercising the space (failures reproduce deterministically).
        Self { cases: 64 }
    }
}

/// A generator of values for one `pat in strategy` binding.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// `any::<T>()` support (upstream `Arbitrary`).
pub trait ArbitraryStub: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryStub for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryStub for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryStub> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitraryStub>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Regex-subset string strategy: a *sequence* of terms, each a `[...]`
/// class (literal chars and `a-z` ranges), `.` (printable ASCII), a
/// literal-alternation group `(com|net|org)`, or a bare literal char,
/// optionally quantified with `{n}` / `{min,max}` (default: once).
/// Covers every pattern the repo's proptests use.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let terms = parse_pattern(self)
            .unwrap_or_else(|| panic!("stub proptest: unsupported string pattern {self:?}"));
        let mut out = String::new();
        for (term, min, max) in &terms {
            let reps = if max > min { rng.gen_range(*min..=*max) } else { *min };
            for _ in 0..reps {
                match term {
                    Term::Class(alphabet) => {
                        out.push(alphabet[rng.gen_range(0..alphabet.len())]);
                    }
                    Term::Alt(alts) => {
                        out.push_str(&alts[rng.gen_range(0..alts.len())]);
                    }
                }
            }
        }
        out
    }
}

enum Term {
    /// One character drawn from an alphabet.
    Class(Vec<char>),
    /// One literal string drawn from `(a|b|c)`.
    Alt(Vec<String>),
}

fn parse_pattern(pat: &str) -> Option<Vec<(Term, usize, usize)>> {
    let chars: Vec<char> = pat.chars().collect();
    let mut terms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let term = match chars[i] {
            '.' => {
                i += 1;
                Term::Class((32u8..127).map(char::from).collect())
            }
            '[' => {
                let end = (i + 1..chars.len()).find(|&j| chars[j] == ']')?;
                let inner = &chars[i + 1..end];
                i = end + 1;
                let mut alphabet = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        for c in inner[j]..=inner[j + 2] {
                            alphabet.push(c);
                        }
                        j += 3;
                    } else {
                        alphabet.push(inner[j]);
                        j += 1;
                    }
                }
                if alphabet.is_empty() {
                    return None;
                }
                Term::Class(alphabet)
            }
            '(' => {
                let end = (i + 1..chars.len()).find(|&j| chars[j] == ')')?;
                let inner: String = chars[i + 1..end].iter().collect();
                i = end + 1;
                let alts: Vec<String> = inner.split('|').map(str::to_owned).collect();
                if alts.iter().any(|a| a.chars().any(|c| "[](){}|.".contains(c))) {
                    return None; // literal alternatives only
                }
                Term::Alt(alts)
            }
            c => {
                i += 1;
                Term::Class(vec![c])
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let end = (i + 1..chars.len()).find(|&j| chars[j] == '}')?;
            let body: String = chars[i + 1..end].iter().collect();
            i = end + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if min > max {
            return None;
        }
        terms.push((term, min, max));
    }
    Some(terms)
}

pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Upstream takes `impl Into<SizeRange>`; cover the forms the repo
    /// uses (exact length, half-open and inclusive ranges).
    pub trait IntoSizeRange {
        fn into_size_range(self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            *self.start()..self.end().saturating_add(1)
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> std::ops::Range<usize> {
            // Exact length: an empty range makes `generate` use `start`.
            self..self
        }
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, len: len.into_size_range() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed derived from the test's module path and
/// name, so each proptest gets an independent, reproducible stream.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

pub fn fresh_rng(test_path: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_path))
}

// Re-export so macro expansions can name the rng type without the user
// crate depending on the stub `rand` directly.
pub use rand::rngs::StdRng as TestRng;
pub use rand::RngCore as _;

pub mod prelude {
    pub use super::collection;
    pub use super::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// The `proptest!` block macro: expands each `fn name(pat in strategy)`
/// item into a `#[test]` that loops `cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::fresh_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&$strat, &mut rng),)+);
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Entry points last: the bare form is a catch-all and must not
    // shadow the internal @cfg arms above.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
