//! The TKG schema: node and edge kinds of the paper's Figure 2 / Table I.

use serde::{Deserialize, Serialize};

/// Kind of a TKG node (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeKind {
    /// A cyber incident report attributed to a single APT.
    Event,
    /// An IPv4/IPv6 address observed as an IOC.
    Ip,
    /// A full URL observed as an IOC.
    Url,
    /// A domain name observed as an IOC.
    Domain,
    /// An autonomous-system number grouping IP addresses.
    Asn,
}

impl NodeKind {
    /// All node kinds, in the order Table II reports them.
    pub const ALL: [NodeKind; 5] =
        [NodeKind::Event, NodeKind::Ip, NodeKind::Url, NodeKind::Domain, NodeKind::Asn];

    /// Stable small index (used to bucket per-kind statistics).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            NodeKind::Event => 0,
            NodeKind::Ip => 1,
            NodeKind::Url => 2,
            NodeKind::Domain => 3,
            NodeKind::Asn => 4,
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Event => "Events",
            NodeKind::Ip => "IPs",
            NodeKind::Url => "URLs",
            NodeKind::Domain => "Domains",
            NodeKind::Asn => "ASNs",
        }
    }
}

/// Kind of a TKG edge (paper Table I).
///
/// ```
/// use trail_graph::EdgeKind;
/// // Table I lists exactly six relations.
/// assert_eq!(EdgeKind::ALL.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Event → IP/Domain/URL: the IOC appeared in the incident report.
    InReport,
    /// IP → Domain: passive DNS captured a resolution from the IP to the
    /// domain at some point in the past.
    ARecord,
    /// IP → ASN: the ASN containing the IP address.
    InGroup,
    /// URL → IP: the IP the URL resolves to (nslookup / passive DNS).
    UrlResolvesTo,
    /// URL → Domain: the domain the URL is hosted on (lexical).
    HostedOn,
    /// Domain → IP: a resolution from the domain to an IP address.
    DomainResolvesTo,
}

impl EdgeKind {
    /// All edge kinds, in Table I order.
    pub const ALL: [EdgeKind; 6] = [
        EdgeKind::InReport,
        EdgeKind::ARecord,
        EdgeKind::InGroup,
        EdgeKind::UrlResolvesTo,
        EdgeKind::HostedOn,
        EdgeKind::DomainResolvesTo,
    ];

    /// Stable small index.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            EdgeKind::InReport => 0,
            EdgeKind::ARecord => 1,
            EdgeKind::InGroup => 2,
            EdgeKind::UrlResolvesTo => 3,
            EdgeKind::HostedOn => 4,
            EdgeKind::DomainResolvesTo => 5,
        }
    }

    /// Table I name of the relation.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::InReport => "InReport",
            EdgeKind::ARecord => "A Record",
            EdgeKind::InGroup => "InGroup",
            EdgeKind::UrlResolvesTo => "ResolvesTo",
            EdgeKind::HostedOn => "HostedOn",
            EdgeKind::DomainResolvesTo => "ResolvesTo",
        }
    }

    /// Whether this edge kind may run from `src` to `dst`, per Table I.
    pub fn allows(self, src: NodeKind, dst: NodeKind) -> bool {
        use EdgeKind::*;
        use NodeKind::*;
        matches!(
            (self, src, dst),
            (InReport, Event, Ip)
                | (InReport, Event, Domain)
                | (InReport, Event, Url)
                | (ARecord, Ip, Domain)
                | (InGroup, Ip, Asn)
                | (UrlResolvesTo, Url, Ip)
                | (HostedOn, Url, Domain)
                | (DomainResolvesTo, Domain, Ip)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_allowed_pairs_exact() {
        // Enumerate the full (edge, src, dst) product and assert that the
        // accepted set is exactly the eight rows of Table I.
        let mut allowed = Vec::new();
        for e in EdgeKind::ALL {
            for s in NodeKind::ALL {
                for d in NodeKind::ALL {
                    if e.allows(s, d) {
                        allowed.push((e, s, d));
                    }
                }
            }
        }
        assert_eq!(allowed.len(), 8);
        assert!(allowed.contains(&(EdgeKind::InReport, NodeKind::Event, NodeKind::Url)));
        assert!(allowed.contains(&(EdgeKind::ARecord, NodeKind::Ip, NodeKind::Domain)));
        assert!(allowed.contains(&(EdgeKind::InGroup, NodeKind::Ip, NodeKind::Asn)));
        assert!(allowed.contains(&(EdgeKind::DomainResolvesTo, NodeKind::Domain, NodeKind::Ip)));
        // Nothing points *at* an event, and ASNs have no outgoing edges.
        assert!(allowed.iter().all(|&(_, _, d)| d != NodeKind::Event));
        assert!(allowed.iter().all(|&(_, s, _)| s != NodeKind::Asn));
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for k in NodeKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        let mut seen_e = [false; 6];
        for e in EdgeKind::ALL {
            assert!(!seen_e[e.index()]);
            seen_e[e.index()] = true;
        }
    }
}
