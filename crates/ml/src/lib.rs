//! Classical machine-learning substrate for the TRAIL reproduction.
//!
//! Implements, from scratch over [`trail_linalg`], everything the
//! paper's Section VI-A pipeline uses:
//!
//! * [`dataset`] — feature/label containers, stratified k-fold CV.
//! * [`scaler`] — standard scaling fitted on the training split.
//! * [`smote`] — SMOTE minority oversampling (Chawla et al.).
//! * [`metrics`] — accuracy, balanced accuracy, confusion matrices.
//! * [`tree`] / [`forest`] — CART decision trees and Random Forests.
//! * [`gbt`] — XGBoost-style second-order gradient-boosted trees with
//!   the multiclass soft-probability objective.
//! * [`nn`] — the paper's MLP (2048→1024→512→128→64 with batch-norm,
//!   ReLU and dropout), Adam, cross-entropy, plus the autoencoders the
//!   GNN uses for per-type input projection.
//! * [`hyperopt`] — Tree-of-Parzen-Estimators search (Hyperopt's TPE).
//! * [`explain`] — additive per-feature tree attributions (the
//!   SHAP-beeswarm substitute for Fig. 9) and permutation importance.

pub mod dataset;
pub mod explain;
pub mod forest;
pub mod gbt;
pub mod hyperopt;
pub mod metrics;
pub mod nn;
pub mod scaler;
pub mod smote;
pub mod tree;

pub use dataset::Dataset;
pub use forest::RandomForest;
pub use gbt::GradientBoostedTrees;
pub use metrics::ConfusionMatrix;
pub use scaler::StandardScaler;

use trail_linalg::Matrix;

/// A trained multiclass classifier.
pub trait Classifier {
    /// Per-class probabilities, one row per input row.
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Hard class predictions (argmax of probabilities).
    fn predict(&self, x: &Matrix) -> Vec<u16> {
        let proba = self.predict_proba(x);
        proba
            .rows_iter()
            .map(|row| trail_linalg::vector::argmax(row).unwrap_or(0) as u16)
            .collect()
    }

    /// Number of classes.
    fn n_classes(&self) -> usize;
}
