//! The two-hop enrichment pipeline (paper Section IV-A/B).
//!
//! For every reported (first-order) IOC we request an analysis from the
//! intelligence exchange. The analysis yields features (encoded into
//! the TKG feature store) and *secondary IOCs* — IPs behind domains,
//! historic domains behind IPs, ASNs, the domains URLs are hosted on.
//! Secondary IOCs are analysed too (their own features and edges back
//! into the graph) but their relational output is not expanded further:
//! "due to time and space constraints, we limit it to two hops from the
//! initial event."

use trail_graph::{EdgeKind, NodeId, NodeKind};
use trail_ioc::domain::DomainIoc;
use trail_ioc::ip::IpIoc;
use trail_ioc::url::UrlIoc;
use trail_ioc::Ioc;
use trail_osint::OsintClient;

use crate::collector::CollectedEvent;
use crate::sparse::SparseVec;
use crate::tkg::Tkg;

/// Enrichment pipeline over an OSINT client.
pub struct Enricher<'a> {
    client: &'a OsintClient,
    /// Analyses are requested "as of" this day (the TKG build date).
    pub asof_day: u32,
}

/// What one event ingestion touched (sizes for logging/tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// First-order IOC nodes attached.
    pub first_order: usize,
    /// Secondary IOC nodes discovered.
    pub secondary: usize,
    /// Edges added.
    pub edges: usize,
    /// Analyses that returned nothing (gaps).
    pub misses: usize,
}

impl<'a> Enricher<'a> {
    /// New enricher querying analyses as of `asof_day`.
    pub fn new(client: &'a OsintClient, asof_day: u32) -> Self {
        Self { client, asof_day }
    }

    /// Ingest one collected event: create the event node, attach
    /// first-order IOCs, run two-hop enrichment, store features.
    pub fn ingest(&self, tkg: &mut Tkg, event: &CollectedEvent) -> IngestStats {
        let mut stats = IngestStats::default();
        let event_node = tkg.graph.upsert_node(NodeKind::Event, &event.report.id);
        tkg.add_event(event_node, &event.report.id, event.report.created_day, event.apt);

        // Pass 1: first-order nodes + InReport edges.
        let mut first_order: Vec<(NodeId, Ioc)> = Vec::with_capacity(event.report.iocs.len());
        for ioc in &event.report.iocs {
            let node = tkg.graph.upsert_node(Tkg::node_kind(ioc.kind()), ioc.text());
            tkg.graph.mark_first_order(node);
            if tkg.graph.add_edge(event_node, node, EdgeKind::InReport).expect("schema") {
                stats.edges += 1;
            }
            stats.first_order += 1;
            first_order.push((node, ioc.clone()));
        }

        // Pass 2: analyse first-order IOCs; collect secondary IOCs.
        let mut secondary: Vec<(NodeId, Ioc)> = Vec::new();
        for (node, ioc) in &first_order {
            match ioc {
                Ioc::Url(url) => self.enrich_url(tkg, *node, url, true, &mut secondary, &mut stats),
                Ioc::Domain(d) => self.enrich_domain(tkg, *node, d, true, &mut secondary, &mut stats),
                Ioc::Ip(ip) => self.enrich_ip(tkg, *node, ip, true, &mut secondary, &mut stats),
            }
        }

        // Pass 3: analyse secondary IOCs — features plus edges to nodes
        // already present; no further expansion.
        let mut sink: Vec<(NodeId, Ioc)> = Vec::new();
        for (node, ioc) in &secondary {
            match ioc {
                Ioc::Domain(d) => self.enrich_domain(tkg, *node, d, false, &mut sink, &mut stats),
                Ioc::Ip(ip) => self.enrich_ip(tkg, *node, ip, false, &mut sink, &mut stats),
                Ioc::Url(url) => self.enrich_url(tkg, *node, url, false, &mut sink, &mut stats),
            }
        }
        stats.secondary = secondary.len();
        stats
    }

    fn enrich_url(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        url: &UrlIoc,
        expand: bool,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
    ) {
        // Lexical relation, no lookup needed: HostedOn.
        if let Some(domain) = url.hosted_domain() {
            let d_node = if expand {
                Some(self.secondary_node(tkg, Ioc::Domain(domain.clone()), secondary))
            } else {
                tkg.graph.find_node(NodeKind::Domain, &domain.text)
            };
            if let Some(d_node) = d_node {
                if tkg.graph.add_edge(node, d_node, EdgeKind::HostedOn).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        let Some(analysis) = self.client.analyze_url(&url.text, self.asof_day) else {
            stats.misses += 1;
            return;
        };
        for ip_text in &analysis.resolved_ips {
            let Ok(ip) = IpIoc::parse(ip_text) else { continue };
            let ip_node = if expand {
                Some(self.secondary_node(tkg, Ioc::Ip(ip), secondary))
            } else {
                tkg.graph.find_node(NodeKind::Ip, ip_text)
            };
            if let Some(ip_node) = ip_node {
                if tkg.graph.add_edge(node, ip_node, EdgeKind::UrlResolvesTo).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        if !tkg.has_features(node) {
            let dense = tkg.url_encoder.encode(url, &analysis);
            tkg.set_features(node, SparseVec::from_dense(&dense));
        }
    }

    fn enrich_domain(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        domain: &DomainIoc,
        expand: bool,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
    ) {
        let Some(analysis) = self.client.analyze_domain(&domain.text, self.asof_day) else {
            stats.misses += 1;
            return;
        };
        for ip_text in &analysis.resolved_ips {
            let Ok(ip) = IpIoc::parse(ip_text) else { continue };
            let ip_node = if expand {
                Some(self.secondary_node(tkg, Ioc::Ip(ip), secondary))
            } else {
                // Two-hop cap: only link to IPs already in the graph.
                tkg.graph.find_node(NodeKind::Ip, ip_text)
            };
            if let Some(ip_node) = ip_node {
                if tkg.graph.add_edge(node, ip_node, EdgeKind::DomainResolvesTo).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        // Secondary URLs from the domain's url_list (expansion only).
        if expand {
            for u_text in &analysis.hosted_urls {
                let Ok(u) = UrlIoc::parse(u_text) else { continue };
                let u_node = self.secondary_node(tkg, Ioc::Url(u), secondary);
                if tkg.graph.add_edge(u_node, node, EdgeKind::HostedOn).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        if !tkg.has_features(node) {
            let dense = tkg.domain_encoder.encode(domain, &analysis);
            tkg.set_features(node, SparseVec::from_dense(&dense));
        }
    }

    fn enrich_ip(
        &self,
        tkg: &mut Tkg,
        node: NodeId,
        ip: &IpIoc,
        expand: bool,
        secondary: &mut Vec<(NodeId, Ioc)>,
        stats: &mut IngestStats,
    ) {
        let Some(analysis) = self.client.analyze_ip(&ip.text, self.asof_day) else {
            stats.misses += 1;
            return;
        };
        // ASN node (whois/dig output) — cheap metadata, always linked.
        if let Some(asn) = analysis.asn {
            let asn_node = tkg.graph.upsert_node(NodeKind::Asn, &format!("AS{asn}"));
            if tkg.graph.add_edge(node, asn_node, EdgeKind::InGroup).expect("schema") {
                stats.edges += 1;
            }
        }
        for d_text in &analysis.historic_domains {
            let Ok(d) = DomainIoc::parse(d_text) else { continue };
            let d_node = if expand {
                Some(self.secondary_node(tkg, Ioc::Domain(d), secondary))
            } else {
                tkg.graph.find_node(NodeKind::Domain, d_text)
            };
            if let Some(d_node) = d_node {
                if tkg.graph.add_edge(node, d_node, EdgeKind::ARecord).expect("schema") {
                    stats.edges += 1;
                }
            }
        }
        if !tkg.has_features(node) {
            let dense = tkg.ip_encoder.encode(ip, &analysis);
            tkg.set_features(node, SparseVec::from_dense(&dense));
        }
    }

    /// Upsert a secondary IOC node; queue it for depth-2 analysis the
    /// first time it appears in this event.
    fn secondary_node(
        &self,
        tkg: &mut Tkg,
        ioc: Ioc,
        secondary: &mut Vec<(NodeId, Ioc)>,
    ) -> NodeId {
        let kind = Tkg::node_kind(ioc.kind());
        let existed = tkg.graph.find_node(kind, ioc.text());
        let node = tkg.graph.upsert_node(kind, ioc.text());
        if existed.is_none() {
            secondary.push((node, ioc));
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{collect, AptRegistry};
    use std::sync::Arc;
    use trail_osint::{World, WorldConfig};

    fn setup() -> (OsintClient, Vec<CollectedEvent>) {
        let world = Arc::new(World::generate(WorldConfig::tiny(31)));
        let client = OsintClient::new(world);
        let reports = client.events_before(client.world().config.cutoff_day);
        let registry = AptRegistry::new(client.world().config.n_apts);
        let (events, _) = collect(&reports, &registry);
        (client, events)
    }

    #[test]
    fn ingest_builds_connected_event_subgraph() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        let stats = enricher.ingest(&mut tkg, &events[0]);
        assert!(stats.first_order > 0);
        assert!(stats.edges >= stats.first_order);
        let e = tkg.event_by_report(&events[0].report.id).unwrap();
        assert!(tkg.graph.degree(e.node) == stats.first_order);
    }

    #[test]
    fn enrichment_discovers_secondary_iocs() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        let mut total_secondary = 0;
        for e in events.iter().take(10) {
            total_secondary += enricher.ingest(&mut tkg, e).secondary;
        }
        assert!(total_secondary > 0, "no secondary IOCs found across 10 events");
        // Secondary nodes are not first-order.
        let some_secondary = tkg
            .graph
            .iter_nodes()
            .any(|(_, n)| !n.first_order && matches!(n.kind, NodeKind::Ip | NodeKind::Domain));
        assert!(some_secondary);
    }

    #[test]
    fn repeated_ingest_of_shared_iocs_is_idempotent_on_edges() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        for e in events.iter().take(20) {
            enricher.ingest(&mut tkg, e);
        }
        // No duplicate (src, dst, kind) edges can exist by construction;
        // verify via a scan.
        let mut seen = std::collections::HashSet::new();
        for e in tkg.graph.edges() {
            assert!(seen.insert((e.src, e.dst, e.kind)), "duplicate edge {e:?}");
        }
    }

    #[test]
    fn features_are_stored_for_analysable_iocs() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        for e in events.iter().take(15) {
            enricher.ingest(&mut tkg, e);
        }
        let n_featured = tkg.featured_nodes(trail_ioc::IocKind::Ip).len()
            + tkg.featured_nodes(trail_ioc::IocKind::Url).len()
            + tkg.featured_nodes(trail_ioc::IocKind::Domain).len();
        assert!(n_featured > 10, "only {n_featured} featured nodes");
    }

    #[test]
    fn url_hosted_on_edges_exist() {
        let (client, events) = setup();
        let mut tkg = Tkg::new(AptRegistry::new(client.world().config.n_apts));
        let enricher = Enricher::new(&client, client.world().config.cutoff_day);
        for e in events.iter().take(20) {
            enricher.ingest(&mut tkg, e);
        }
        let hosted = tkg.graph.edge_counts_by_kind()[EdgeKind::HostedOn.index()];
        assert!(hosted > 0, "no HostedOn edges");
        let in_group = tkg.graph.edge_counts_by_kind()[EdgeKind::InGroup.index()];
        assert!(in_group > 0, "no InGroup (ASN) edges");
    }
}
