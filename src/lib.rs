//! Umbrella crate for the TRAIL reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`); the actual library
//! surface lives in the member crates:
//!
//! * [`trail`] — the TRAIL system (pipeline, TKG, attribution).
//! * [`trail_osint`] — the synthetic OSINT world.
//! * [`trail_ioc`] — IOC parsing and feature extraction.
//! * [`trail_graph`] — the property-graph substrate.
//! * [`trail_ml`] / [`trail_gnn`] — the learning substrates.
//! * [`trail_linalg`] — dense kernels.

pub use trail;
pub use trail_gnn;
pub use trail_graph;
pub use trail_ioc;
pub use trail_linalg;
pub use trail_ml;
pub use trail_osint;
