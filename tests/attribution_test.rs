//! Attribution integration: the three analysis families all beat
//! random on a fresh synthetic world, and the graph methods beat the
//! per-IOC voting baseline — the ordering at the heart of Table IV.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trail::attribute::{
    self, GnnEvalConfig, IocModelSettings, ModelKind,
};
use trail::embed::train_autoencoders;
use trail::system::TrailSystem;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{OsintClient, World, WorldConfig};

fn build(seed: u64) -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(seed))));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

#[test]
fn all_three_ioc_model_families_train_and_predict() {
    let sys = build(900);
    let mut rng = StdRng::seed_from_u64(1);
    let settings = IocModelSettings::fast();
    let datasets = attribute::ioc_datasets(&mut rng, &sys.tkg, settings.max_samples);
    let ds = datasets.iter().max_by_key(|d| d.data.len()).expect("non-empty");
    assert!(ds.data.len() > 30);
    for model in ModelKind::ALL {
        let scores = attribute::crossval_ioc(&mut rng, ds, model, &settings, 2);
        assert_eq!(scores.acc.len(), 2);
        let (acc, _) = scores.acc_mean_std();
        assert!((0.0..=1.0).contains(&acc), "{model:?} acc {acc}");
    }
}

#[test]
fn lp_depth_ordering_matches_paper() {
    // Deeper propagation must not hurt much and usually helps — the
    // paper's LP 2L < 3L < 4L. Tiny worlds are noisy, so assert the
    // weaker invariant: LP4 >= LP2 - small slack, and both beat random.
    let sys = build(901);
    let mut rng = StdRng::seed_from_u64(2);
    let lp2 = attribute::eval_event_lp(&mut rng, &sys.tkg, 2, 3).acc_mean_std().0;
    let lp4 = attribute::eval_event_lp(&mut rng, &sys.tkg, 4, 3).acc_mean_std().0;
    let random = 1.0 / sys.tkg.n_classes() as f64;
    assert!(lp2 > random * 1.5, "LP2 {lp2} vs random {random}");
    assert!(lp4 > random * 1.5, "LP4 {lp4}");
    assert!(lp4 >= lp2 - 0.1, "LP4 {lp4} much worse than LP2 {lp2}");
}

#[test]
fn graph_methods_beat_ioc_voting() {
    let sys = build(902);
    let mut rng = StdRng::seed_from_u64(3);
    let vote = attribute::eval_event_ml(&mut rng, &sys.tkg, ModelKind::Rf, &IocModelSettings::fast(), 2)
        .acc_mean_std()
        .0;
    let lp4 = attribute::eval_event_lp(&mut rng, &sys.tkg, 4, 2).acc_mean_std().0;
    // The paper's central observation: topology carries more signal
    // than per-IOC features alone.
    assert!(lp4 > vote - 0.05, "LP4 {lp4} should not lose badly to voting {vote}");
}

#[test]
fn gnn_learns_and_beats_random() {
    let sys = build(903);
    let mut rng = StdRng::seed_from_u64(4);
    let ae = AutoencoderConfig { hidden: 32, code: 8, epochs: 2, batch_size: 64, lr: 1e-3 };
    let (emb, _) = train_autoencoders(&mut rng, &sys.tkg, &ae);
    let cfg = GnnEvalConfig {
        hidden: 16,
        train: trail_gnn::TrainConfig { lr: 0.02, epochs: 150, patience: 0 },
        val_fraction: 0.1,
        l2_normalize: false,
        label_visible_fraction: 0.6,
        sampled_neighbor_cap: None,
    };
    let scores = attribute::eval_event_gnn(&mut rng, &sys.tkg, &emb, 2, &cfg, 2);
    let (acc, _) = scores.acc_mean_std();
    let random = 1.0 / sys.tkg.n_classes() as f64;
    assert!(acc > random * 1.2, "GNN acc {acc} vs random {random}");
}

#[test]
fn fold_scores_are_reproducible_for_fixed_seeds() {
    let sys = build(904);
    let a = attribute::eval_event_lp(&mut StdRng::seed_from_u64(5), &sys.tkg, 3, 3);
    let b = attribute::eval_event_lp(&mut StdRng::seed_from_u64(5), &sys.tkg, 3, 3);
    assert_eq!(a.acc, b.acc);
    assert_eq!(a.bacc, b.bacc);
}
