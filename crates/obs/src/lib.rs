//! `trail-obs` — std-only observability for the TRAIL pipeline.
//!
//! Three primitives, one global registry:
//!
//! * **Spans** — RAII wall-clock timers that nest into a hierarchy.
//!   [`span`] returns a guard; while it lives, child spans opened on
//!   the same thread record under `parent/child` paths. Aggregates
//!   (count, total/min/max ns) are folded into the registry on drop.
//! * **Counters** — monotonic `u64`s bumped with [`counter_add`].
//! * **Histograms** — fixed-bucket latency/size distributions fed via
//!   [`observe`] (see [`Histogram`]).
//!
//! [`snapshot`] captures everything as a [`MetricsSnapshot`] — sorted,
//! serializable, and comparable — which `trail-bench` embeds per stage
//! in `BENCH_repro.json`.
//!
//! Threading: span nesting state is thread-local, so guards on worker
//! threads (the PR-1 pool) form their own trees without locking; the
//! fold on drop takes a short registry lock. Counters and histograms
//! are relaxed atomics behind an `RwLock`ed name table whose read path
//! is the common case. The whole layer can be switched off with
//! [`set_enabled`] (or `TRAIL_OBS=0`), reducing every call to one
//! relaxed atomic load — the overhead budget in DESIGN.md §8 is
//! measured against that baseline.
//!
//! Determinism: counters, histogram buckets and span *counts* depend
//! only on the workload, never on scheduling; only `*_ns` fields vary
//! run to run. [`MetricsSnapshot::without_wall_clock`] strips exactly
//! those fields, which is what the thread-count invariance test pins.

pub mod alloc;
mod hist;
mod snapshot;

pub use hist::Histogram;
pub use snapshot::{CounterStat, HistogramStat, MetricsSnapshot, SpanStat};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Canonical histogram bounds used by the pipeline instrumentation.
pub mod bounds {
    /// Retry backoff in milliseconds (base 50ms, exponential).
    pub const BACKOFF_MS: &[u64] = &[50, 100, 200, 400, 800, 1600];
    /// Attempts consumed per analysis query (1 = no retry).
    pub const ATTEMPTS: &[u64] = &[1, 2, 3, 4, 6, 8];
    /// Per-request attribution serving latency in microseconds
    /// (`trail-serve` request histograms).
    pub const SERVE_LATENCY_US: &[u64] =
        &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];
    /// Per-event streaming-ingest latency in microseconds (collect +
    /// enrich for one report; `trail::stream` event histograms).
    pub const STREAM_EVENT_US: &[u64] =
        &[100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000];
    /// Streaming tick latency in microseconds (delta CSR merge, dirty
    /// row re-encode, label-prop check and fine-tune epochs).
    pub const STREAM_TICK_US: &[u64] = &[
        1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 5_000_000, 10_000_000,
        50_000_000,
    ];
    /// Per-record write-ahead-log append latency in microseconds
    /// (frame encode + write + fsync under the configured policy;
    /// `trail::stream::wal` append histograms).
    pub const WAL_APPEND_US: &[u64] =
        &[5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000];
}

#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

struct Registry {
    enabled: AtomicBool,
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    spans: Mutex<HashMap<String, SpanAgg>>,
    hists: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let on = match std::env::var("TRAIL_OBS") {
            Ok(v) => !matches!(v.trim(), "0" | "off" | "false"),
            Err(_) => true,
        };
        Registry {
            enabled: AtomicBool::new(on),
            counters: RwLock::new(HashMap::new()),
            spans: Mutex::new(HashMap::new()),
            hists: RwLock::new(HashMap::new()),
        }
    })
}

/// Whether recording is currently on (default: on, unless `TRAIL_OBS`
/// is `0`/`off`/`false` at first use).
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Turn recording on or off process-wide. Already-recorded data stays
/// in the registry; live span guards opened while enabled still fold
/// on drop.
pub fn set_enabled(on: bool) {
    registry().enabled.store(on, Ordering::Relaxed);
}

/// Add `n` to the named monotonic counter.
pub fn counter_add(name: &str, n: u64) {
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    // Fast path: the counter already exists.
    if let Some(c) = reg.counters.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        c.fetch_add(n, Ordering::Relaxed);
        return;
    }
    reg.counters
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .fetch_add(n, Ordering::Relaxed);
}

/// Current value of a counter (0 when it was never bumped).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .counters
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Record `v` into the named histogram, creating it with `bounds` on
/// first use (later calls reuse the existing buckets).
pub fn observe(name: &str, bounds: &[u64], v: u64) {
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    if let Some(h) = reg.hists.read().unwrap_or_else(|e| e.into_inner()).get(name) {
        h.observe(v);
        return;
    }
    let h = {
        let mut w = reg.hists.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(w.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new(bounds))))
    };
    h.observe(v);
}

struct StackEntry {
    token: u64,
    path: String,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// RAII span timer. Obtain with [`span`]; the elapsed time is folded
/// into the registry when the guard drops. Guards are expected to drop
/// in LIFO order; out-of-order drops still record correct aggregates
/// (the path is fixed at entry) and the nesting stack self-heals.
#[must_use = "a span measures the scope of its guard; binding to _ drops it immediately"]
pub struct SpanGuard {
    start: Instant,
    /// `None` when recording was disabled at entry.
    live: Option<(String, u64, usize)>,
}

/// Open a span named `name`, nested under the innermost live span on
/// this thread. Returns a guard; the span closes when it drops.
pub fn span(name: &str) -> SpanGuard {
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return SpanGuard { start: Instant::now(), live: None };
    }
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    let (path, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(top) => format!("{}/{}", top.path, name),
            None => name.to_string(),
        };
        let depth = stack.len();
        stack.push(StackEntry { token, path: path.clone() });
        (path, depth)
    });
    SpanGuard { start: Instant::now(), live: Some((path, token, depth)) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((path, token, depth)) = self.live.take() else {
            return;
        };
        let elapsed_ns = self.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Pop self (and anything opened above and leaked) — but only
            // if the entry at our depth is really us; an out-of-order
            // drop otherwise leaves the stack to the still-live owner.
            if stack.get(depth).is_some_and(|e| e.token == token) {
                stack.truncate(depth);
            }
        });
        let mut spans = registry().spans.lock().unwrap_or_else(|e| e.into_inner());
        let agg = spans.entry(path).or_default();
        agg.count += 1;
        agg.total_ns += elapsed_ns;
        agg.max_ns = agg.max_ns.max(elapsed_ns);
        agg.min_ns = if agg.min_ns == 0 { elapsed_ns.max(1) } else { agg.min_ns.min(elapsed_ns.max(1)) };
    }
}

/// Capture the whole registry as a sorted, serializable snapshot.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut spans: Vec<SpanStat> = reg
        .spans
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(path, a)| SpanStat {
            path: path.clone(),
            count: a.count,
            total_ns: a.total_ns,
            min_ns: a.min_ns,
            max_ns: a.max_ns,
        })
        .collect();
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    let mut counters: Vec<CounterStat> = reg
        .counters
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, c)| CounterStat { name: name.clone(), value: c.load(Ordering::Relaxed) })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut histograms: Vec<HistogramStat> = reg
        .hists
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, h)| HistogramStat {
            name: name.clone(),
            bounds: h.bounds().to_vec(),
            counts: h.bucket_counts(),
            sum: h.sum(),
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { spans, counters, histograms }
}

/// Zero every metric in place. Counter and histogram handles stay
/// valid (values reset to 0); span aggregates are cleared. Live span
/// guards are unaffected and will record into the fresh state.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.read().unwrap_or_else(|e| e.into_inner()).values() {
        c.store(0, Ordering::Relaxed);
    }
    reg.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    for h in reg.hists.read().unwrap_or_else(|e| e.into_inner()).values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The registry is process-global; serialize tests that touch it.
    fn lock() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        g
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _g = lock();
        counter_add("t.a", 2);
        counter_add("t.a", 3);
        counter_add("t.b", 1);
        assert_eq!(counter_value("t.a"), 5);
        let s = snapshot();
        assert_eq!(s.counter("t.a"), 5);
        assert_eq!(s.counter("t.b"), 1);
        assert_eq!(s.counter("t.absent"), 0);
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let _g = lock();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _inner2 = span("inner");
        }
        let s = snapshot();
        let outer = s.span("outer").expect("outer recorded");
        assert_eq!(outer.count, 1);
        assert!(outer.total_ns > 0);
        assert!(outer.min_ns > 0 && outer.min_ns <= outer.max_ns);
        let inner = s.span("outer/inner").expect("nested path");
        assert_eq!(inner.count, 2);
        assert!(s.span("inner").is_none(), "child must not record a root path");
    }

    #[test]
    fn sibling_threads_nest_independently() {
        let _g = lock();
        let _root = span("root");
        std::thread::spawn(|| {
            let _t = span("worker");
        })
        .join()
        .unwrap();
        drop(_root);
        let s = snapshot();
        assert!(s.span("worker").is_some(), "other threads start their own tree");
        assert!(s.span("root/worker").is_none());
    }

    #[test]
    fn out_of_order_drops_still_record_correct_paths() {
        let _g = lock();
        let a = span("a");
        let b = span("b");
        drop(a); // non-LIFO: a drops while its child b is live
        drop(b);
        let c = span("c");
        drop(c);
        let s = snapshot();
        assert_eq!(s.span("a").unwrap().count, 1);
        assert_eq!(s.span("a/b").unwrap().count, 1);
        assert_eq!(s.span("c").unwrap().count, 1, "stack healed after misuse");
        assert!(s.span("a/c").is_none() && s.span("a/b/c").is_none());
    }

    #[test]
    fn disabled_layer_records_nothing() {
        let _g = lock();
        set_enabled(false);
        counter_add("off.c", 9);
        observe("off.h", &[10], 3);
        {
            let _s = span("off.span");
        }
        set_enabled(true);
        let s = snapshot();
        assert_eq!(s.counter("off.c"), 0);
        assert!(s.span("off.span").is_none());
        assert!(s.histogram("off.h").is_none());
    }

    #[test]
    fn histograms_register_once_and_accumulate() {
        let _g = lock();
        observe("h.x", &[10, 100], 5);
        observe("h.x", &[10, 100], 50);
        observe("h.x", &[10, 100], 500);
        let s = snapshot();
        let h = s.histogram("h.x").unwrap();
        assert_eq!(h.bounds, vec![10, 100]);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.sum, 555);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_valid() {
        let _g = lock();
        counter_add("r.c", 4);
        observe("r.h", &[1], 2);
        {
            let _s = span("r.s");
        }
        reset();
        assert_eq!(counter_value("r.c"), 0);
        counter_add("r.c", 1);
        assert_eq!(counter_value("r.c"), 1);
        let s = snapshot();
        assert!(s.span("r.s").is_none());
        assert_eq!(s.histogram("r.h").unwrap().total(), 0);
    }
}
