//! Generation parameters for the synthetic world.
//!
//! Defaults target the *shape* of the paper's dataset at roughly 1/4 of
//! its event count and a reduced per-event IOC count, which keeps the
//! full experiment suite tractable on a laptop while preserving the
//! statistics the models learn from. Every knob DESIGN.md calls out for
//! calibration lives here.

use serde::{Deserialize, Serialize};

/// All generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Number of APT classes (paper: 22).
    pub n_apts: usize,
    /// Total events on the training timeline (paper: 4,512).
    pub n_events: usize,
    /// Mean number of first-order IOCs per event (paper: 190; default is
    /// scaled down — see DESIGN.md).
    pub mean_iocs_per_event: f32,
    /// Number of ASNs in the registry (paper: ~6,028).
    pub n_asns: usize,
    /// Timeline cutoff day for the main dataset (events after this feed
    /// the longitudinal study; paper cutoff is May 2023).
    pub cutoff_day: u32,
    /// Extra months of post-cutoff events for the Fig. 7/8 study.
    pub study_months: u32,
    /// Events per month during the study window.
    pub study_events_per_month: usize,

    // --- campaign / reuse structure -------------------------------------
    /// Mean events per campaign (how long infrastructure lives).
    pub mean_events_per_campaign: f32,
    /// Probability an event IOC is drawn from the campaign pool rather
    /// than freshly created (drives Fig. 4 reuse and LP accuracy).
    pub pool_reuse_prob: f32,
    /// Per-APT backbone IPs shared across that APT's campaigns.
    pub backbone_ips_per_apt: usize,
    /// Probability a campaign domain also resolves to a backbone IP
    /// (creates the >2-hop paths only enrichment reveals).
    pub backbone_link_prob: f32,
    /// Number of globally shared benign infrastructure IPs/domains.
    pub shared_infra_size: usize,
    /// Probability an event includes a shared benign IOC (noise).
    pub shared_infra_prob: f32,
    /// Probability an event's label is corrupted to a random APT
    /// (reports are community-sourced; some attributions are wrong).
    pub label_noise: f32,
    /// Probability an indicator in a report is junk (script snippet).
    pub junk_indicator_prob: f32,

    // --- per-IOC feature signal strength --------------------------------
    /// Probability a URL's server config follows the APT preference
    /// rather than a global draw (drives Table III URL accuracy).
    pub url_signal: f32,
    /// Same for IP country/issuer (Table III IP accuracy).
    pub ip_signal: f32,
    /// Same for domain TLD/DGA style (Table III domain accuracy).
    pub domain_signal: f32,

    // --- enrichment surface ----------------------------------------------
    /// Mean co-hosted (never-reported) domains attached to each IP —
    /// the passive-DNS surface that makes 75 % of the paper's graph
    /// secondary.
    pub pdns_domains_per_ip: f32,
    /// Probability a campaign domain also resolves to a hidden
    /// (never-reported) IP carrying the APT's hosting fingerprint.
    pub hidden_ip_prob: f32,
    /// Unreported URLs created per campaign (discovered only through
    /// domain `url_list` enrichment).
    pub hidden_urls_per_campaign: usize,
    /// Probability an analysis query returns nothing (data gaps).
    pub analysis_miss_prob: f32,
    /// Days after last activity before a domain goes NXDOMAIN.
    pub nxdomain_after_days: f32,

    // --- feed realism / fault injection ----------------------------------
    /// Probability a relational string in an analysis response is
    /// *presented* non-canonically (mixed case, trailing dot, defanged),
    /// like a real feed. Presentation only: refanging/parsing recovers
    /// the same identity, so consumers that canonicalise see no change.
    pub feed_noise: f32,
    /// Probability one analysis *attempt* fails transiently
    /// (rate-limit/timeout). Deterministic per key + attempt number, so
    /// retries can succeed and runs reproduce bit-for-bit.
    pub transient_fault_prob: f32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x7214_11,
            n_apts: 22,
            n_events: 1128, // 1/4 of the paper's 4,512
            mean_iocs_per_event: 24.0,
            n_asns: 1500,
            cutoff_day: 3000, // ~ Feb 2015 + 100 months ~ May 2023
            study_months: 7,
            study_events_per_month: 22,
            mean_events_per_campaign: 3.0,
            pool_reuse_prob: 0.26,
            backbone_ips_per_apt: 8,
            backbone_link_prob: 0.26,
            shared_infra_size: 60,
            shared_infra_prob: 0.20,
            label_noise: 0.05,
            junk_indicator_prob: 0.02,
            url_signal: 0.66,
            ip_signal: 0.36,
            domain_signal: 0.50,
            pdns_domains_per_ip: 5.0,
            hidden_ip_prob: 0.5,
            hidden_urls_per_campaign: 2,
            analysis_miss_prob: 0.10,
            nxdomain_after_days: 400.0,
            feed_noise: 0.25,
            transient_fault_prob: 0.0,
        }
    }
}

impl WorldConfig {
    /// A tiny configuration for unit and integration tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            n_apts: 4,
            n_events: 48,
            mean_iocs_per_event: 8.0,
            n_asns: 40,
            cutoff_day: 600,
            study_months: 2,
            study_events_per_month: 6,
            ..Self::default()
        }
    }

    /// Scale event count and enrichment fanout by `s` (1.0 = default).
    pub fn scaled(mut self, s: f32) -> Self {
        self.n_events = ((self.n_events as f32 * s).round() as usize).max(self.n_apts * 8);
        self.study_events_per_month =
            ((self.study_events_per_month as f32 * s).round() as usize).max(6);
        self
    }

    /// Total days in the generated timeline (cutoff + study window).
    pub fn horizon_day(&self) -> u32 {
        self.cutoff_day + self.study_months * crate::DAYS_PER_MONTH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let c = WorldConfig::default();
        assert_eq!(c.n_apts, 22);
        assert!(c.n_events >= 1000);
        assert!(c.pool_reuse_prob > 0.0 && c.pool_reuse_prob < 1.0);
    }

    #[test]
    fn scaled_respects_minimum() {
        let c = WorldConfig::default().scaled(0.01);
        assert!(c.n_events >= c.n_apts * 8);
        let big = WorldConfig::default().scaled(2.0);
        assert_eq!(big.n_events, 2256);
    }

    #[test]
    fn horizon_covers_study() {
        let c = WorldConfig::default();
        assert_eq!(c.horizon_day(), c.cutoff_day + c.study_months * 30);
    }
}
