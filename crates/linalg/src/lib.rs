//! Dense `f32` linear-algebra kernels backing the TRAIL reproduction.
//!
//! The TRAIL paper trains multilayer perceptrons, autoencoders and
//! GraphSAGE networks over feature matrices with up to 1,517 columns.
//! No external BLAS is available in this environment, so this crate
//! provides the small set of dense kernels those models need:
//!
//! * [`Matrix`] — row-major `f32` matrix with blocked, optionally
//!   multi-threaded multiplication (plain / transposed variants).
//! * [`pool`] — the workspace-wide persistent worker pool behind every
//!   parallel kernel (matmul, CSR aggregation, tree ensembles), with
//!   the `TRAIL_THREADS` thread-count policy.
//! * [`vector`] — slice-level primitives (dot, axpy, softmax, argmax).
//! * [`stats`] — column statistics used by the standard scaler.
//! * [`init`] — Xavier/He random initialisers for network weights.
//!
//! Everything is deterministic given a seeded RNG; parallel kernels
//! partition work by output row so results do not depend on the
//! thread count.

pub mod init;
pub mod kernels;
pub mod matrix;
pub mod pool;
pub mod quant;
pub mod reference;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;

/// Error type for shape mismatches in matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub what: String,
}

impl ShapeError {
    /// Build a shape error from anything displayable.
    pub fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.what)
    }
}

impl std::error::Error for ShapeError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ShapeError>;
