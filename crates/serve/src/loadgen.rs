//! Deterministic seeded load generation and per-level measurement for
//! `repro serve-bench`.
//!
//! The generator samples a fixed query mix — known IOCs drawn from the
//! bundle's graph, unknown (unattributable) IOCs, and optional poison
//! requests for breaker drills — entirely from a seeded RNG, so the
//! same `(bundle, mix)` always produces the same query list. Replaying
//! that list at several concurrency levels and fingerprinting the
//! responses is how the bench proves rankings are independent of the
//! worker count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trail_graph::persist::fnv1a_bytes;
use trail_graph::NodeKind;
use trail_ioc::{IocKey, IocKind};

use crate::runtime::{Outcome, Query, Response, ServeRuntime};

/// Parameters of the seeded query mix.
#[derive(Debug, Clone)]
pub struct LoadMix {
    /// Total queries to generate.
    pub queries: usize,
    /// IOCs per query.
    pub iocs_per_query: usize,
    /// Probability a sampled IOC is synthetic (absent from the graph).
    pub unknown_fraction: f32,
    /// Probability a query is a poison request (fault drill).
    pub poison_fraction: f32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for LoadMix {
    fn default() -> Self {
        Self {
            queries: 256,
            iocs_per_query: 8,
            unknown_fraction: 0.2,
            poison_fraction: 0.0,
            seed: 0x5e12_e5,
        }
    }
}

/// Collect the bundle graph's IOC identities, in node order.
fn known_iocs(runtime: &ServeRuntime) -> Vec<IocKey> {
    let bundle = runtime.bundle();
    let graph = bundle.graph();
    let mut keys = Vec::new();
    for kind in IocKind::ALL {
        let nk = match kind {
            IocKind::Ip => NodeKind::Ip,
            IocKind::Url => NodeKind::Url,
            IocKind::Domain => NodeKind::Domain,
        };
        for id in graph.nodes_of_kind(nk) {
            if let Ok(key) = IocKey::parse(kind, graph.key(id)) {
                keys.push(key);
            }
        }
    }
    keys
}

/// Generate the seeded query mix against a runtime's bundle.
pub fn generate(runtime: &ServeRuntime, mix: &LoadMix) -> Vec<Query> {
    let known = known_iocs(runtime);
    assert!(!known.is_empty(), "bundle has no IOC nodes to query");
    let mut rng = StdRng::seed_from_u64(mix.seed);
    let mut out = Vec::with_capacity(mix.queries);
    for _ in 0..mix.queries {
        if rng.gen::<f32>() < mix.poison_fraction {
            out.push(Query::poison());
            continue;
        }
        let mut iocs = Vec::with_capacity(mix.iocs_per_query);
        for _ in 0..mix.iocs_per_query.max(1) {
            if rng.gen::<f32>() < mix.unknown_fraction {
                // TEST-NET-3 addresses: syntactically valid, never in
                // the synthetic world's address plan.
                let raw = format!("203.0.113.{}", rng.gen_range(0u16..256));
                iocs.push(IocKey::parse(IocKind::Ip, &raw).expect("valid synthetic IP"));
            } else {
                iocs.push(known[rng.gen_range(0..known.len())].clone());
            }
        }
        out.push(Query::new(iocs));
    }
    out
}

/// Everything measured at one concurrency level.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Worker-pool width the batch ran at.
    pub concurrency: usize,
    /// Requests issued.
    pub issued: u64,
    /// Requests past the breaker.
    pub admitted: u64,
    /// Requests shed by the breaker.
    pub rejected: u64,
    /// Admitted requests that returned a ranking.
    pub completed: u64,
    /// Admitted requests that faulted.
    pub failed: u64,
    /// Median request latency (µs).
    pub p50_us: u64,
    /// 99th-percentile request latency (µs).
    pub p99_us: u64,
    /// Mean request latency (µs).
    pub mean_us: u64,
    /// Whole-batch wall clock (seconds).
    pub wall_seconds: f64,
    /// Requests per second over the batch.
    pub qps: f64,
    /// FNV-1a over every response's outcome in issue order — equal
    /// fingerprints across levels mean bitwise-identical rankings.
    pub fingerprint: u64,
    /// Whether the `trail-obs` counter deltas reconciled exactly with
    /// the totals observed in the responses.
    pub counters_reconciled: bool,
}

/// Fingerprint a response vector: outcome tags plus, for rankings,
/// every `(class, score-bits)` pair in rank order.
pub fn fingerprint(responses: &[Response]) -> u64 {
    let mut bytes = Vec::with_capacity(responses.len() * 16);
    for r in responses {
        match &r.outcome {
            Outcome::Rejected => bytes.push(1),
            Outcome::Failed(_) => bytes.push(2),
            Outcome::Ranked(a) => {
                bytes.push(0);
                bytes.extend_from_slice(&(a.matched as u32).to_le_bytes());
                bytes.extend_from_slice(&(a.members as u32).to_le_bytes());
                bytes.extend_from_slice(&(a.events as u32).to_le_bytes());
                for &(class, score) in &a.ranked {
                    bytes.extend_from_slice(&class.to_le_bytes());
                    bytes.extend_from_slice(&score.to_bits().to_le_bytes());
                }
            }
        }
    }
    fnv1a_bytes(&bytes)
}

fn percentile(sorted_us: &[u64], p: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[(sorted_us.len() - 1) * p / 100]
}

/// Replay `queries` at one concurrency level and measure everything,
/// including the obs-counter reconciliation.
pub fn run_level(runtime: &ServeRuntime, queries: &[Query], concurrency: usize) -> LevelReport {
    let before = [
        trail_obs::counter_value("serve.issued"),
        trail_obs::counter_value("serve.admitted"),
        trail_obs::counter_value("serve.rejected"),
        trail_obs::counter_value("serve.completed"),
        trail_obs::counter_value("serve.failed"),
    ];
    let start = std::time::Instant::now();
    let responses = runtime.run_batch(queries, concurrency);
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut failed = 0u64;
    for r in &responses {
        match r.outcome {
            Outcome::Ranked(_) => completed += 1,
            Outcome::Rejected => rejected += 1,
            Outcome::Failed(_) => failed += 1,
        }
    }
    let issued = responses.len() as u64;
    let admitted = completed + failed;

    let after = [
        trail_obs::counter_value("serve.issued"),
        trail_obs::counter_value("serve.admitted"),
        trail_obs::counter_value("serve.rejected"),
        trail_obs::counter_value("serve.completed"),
        trail_obs::counter_value("serve.failed"),
    ];
    let deltas: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    let counters_reconciled = deltas == [issued, admitted, rejected, completed, failed];

    let mut lat: Vec<u64> = responses.iter().map(|r| r.latency_us).collect();
    lat.sort_unstable();
    let mean_us = if lat.is_empty() { 0 } else { lat.iter().sum::<u64>() / lat.len() as u64 };

    LevelReport {
        concurrency,
        issued,
        admitted,
        rejected,
        completed,
        failed,
        p50_us: percentile(&lat, 50),
        p99_us: percentile(&lat, 99),
        mean_us,
        wall_seconds,
        qps: if wall_seconds > 0.0 { issued as f64 / wall_seconds } else { 0.0 },
        fingerprint: fingerprint(&responses),
        counters_reconciled,
    }
}
