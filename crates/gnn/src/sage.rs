//! GraphSAGE (Hamilton et al. 2017) as the paper specifies it:
//! mean aggregation over the neighbourhood (Eq. 3) with a separate
//! root-weight term for the node's own representation (the standard
//! GraphSAGE-mean formulation), per-layer L2 normalisation (Eq. 4),
//! and a final layer emitting one logit per APT class.
//!
//! At reproduction scale the whole graph fits in memory, so layers run
//! full-graph: a mean-aggregation sweep over the CSR followed by two
//! dense linear maps. Backward passes mirror each step by hand.
//!
//! Every layer owns its activation, cache and gradient buffers and the
//! forward/backward passes write into them via the `_into` kernels, so
//! once buffer shapes stabilise (after the first epoch) a full
//! forward + backward + step round trip performs zero heap
//! allocations. The buffered kernels zero their destinations before
//! accumulating (or accumulate into optimiser-zeroed gradients), which
//! keeps every f32 summation order identical to the allocating
//! formulation — outputs are bitwise unchanged.

use rand::Rng;
use trail_graph::{Csr, NodeId};
use trail_linalg::quant::{matmul_quant_acc, matmul_quant_into, QuantizedMatrix};
use trail_linalg::{init, Matrix};
use trail_ml::nn::{Adam, Param};

/// GraphSAGE architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SageConfig {
    /// Node-feature input width.
    pub input_dim: usize,
    /// Hidden width (paper: 512; default reduced for laptop scale —
    /// see DESIGN.md).
    pub hidden: usize,
    /// Number of SAGE layers (the paper evaluates 2, 3 and 4).
    pub layers: usize,
    /// Output classes.
    pub n_classes: usize,
    /// Apply the paper's per-layer L2 normalisation (Eq. 4). Exposed
    /// as an ablation (DESIGN.md): normalisation equalises every
    /// node's hidden magnitude, which discards the label-mass
    /// confidence that plain label propagation exploits.
    pub l2_normalize: bool,
}

impl SageConfig {
    /// Default-shaped config with L2 normalisation on (the paper's
    /// description).
    pub fn new(input_dim: usize, hidden: usize, layers: usize, n_classes: usize) -> Self {
        Self { input_dim, hidden, layers, n_classes, l2_normalize: true }
    }

    /// Configuration with the paper's hidden width.
    pub fn paper(input_dim: usize, layers: usize, n_classes: usize) -> Self {
        Self::new(input_dim, 512, layers, n_classes)
    }
}

/// Resize `m` to `rows × cols`, reallocating only when the shape
/// actually changes. The contents after a call are unspecified (zeroed
/// on reallocation, stale otherwise) — callers overwrite them.
pub(crate) fn ensure_shape(m: &mut Matrix, rows: usize, cols: usize) {
    if m.shape() != (rows, cols) {
        *m = Matrix::zeros(rows, cols);
    }
}

/// One SAGE layer:
/// `y = h W_root + mean(N(v)) W_nbr + b`, then ReLU + L2 unless final.
///
/// All intermediates live in owned buffers sized lazily on first use;
/// steady-state forward/backward rounds are allocation-free.
struct SageLayer {
    w_root: Param,
    w_nbr: Param,
    b: Param,
    last: bool,
    l2_normalize: bool,
    /// Copy of the layer input `h` from the last train-mode forward.
    cache_input: Matrix,
    /// Neighbour-mean aggregation of the last forward (train or not —
    /// the matrix doubles as the forward scratch buffer).
    cache_agg: Matrix,
    cache_mask: Vec<bool>,
    /// Post-normalisation activations of the last train-mode forward.
    cache_act: Matrix,
    cache_norms: Vec<f32>,
    /// Whether a train-mode forward has populated the caches.
    has_cache: bool,
    /// Layer output; the next layer reads it as its input.
    buf_out: Matrix,
    /// Scratch for `agg · W_nbr` — kept separate from `buf_out` so the
    /// two matmuls accumulate exactly as the allocating form did.
    buf_lin: Matrix,
    /// Working copy of the upstream gradient.
    buf_d_pre: Matrix,
    /// Gradient w.r.t. the layer input; the previous layer reads it as
    /// its upstream gradient.
    buf_d_h: Matrix,
    buf_d_agg: Matrix,
    buf_scatter: Matrix,
}

impl SageLayer {
    fn new<R: Rng + ?Sized>(
        rng: &mut R,
        d_in: usize,
        d_out: usize,
        last: bool,
        l2_normalize: bool,
    ) -> Self {
        Self {
            w_root: Param::new(init::he_uniform(rng, d_in, d_out)),
            w_nbr: Param::new(init::he_uniform(rng, d_in, d_out)),
            b: Param::new(Matrix::zeros(1, d_out)),
            last,
            l2_normalize,
            cache_input: Matrix::zeros(0, 0),
            cache_agg: Matrix::zeros(0, 0),
            cache_mask: Vec::new(),
            cache_act: Matrix::zeros(0, 0),
            cache_norms: Vec::new(),
            has_cache: false,
            buf_out: Matrix::zeros(0, 0),
            buf_lin: Matrix::zeros(0, 0),
            buf_d_pre: Matrix::zeros(0, 0),
            buf_d_h: Matrix::zeros(0, 0),
            buf_d_agg: Matrix::zeros(0, 0),
            buf_scatter: Matrix::zeros(0, 0),
        }
    }

    /// Forward pass into `self.buf_out`.
    fn forward_into(&mut self, csr: &Csr, h: &Matrix, train: bool) {
        let threads = trail_linalg::pool::num_threads();
        let n = h.rows();
        let d_in = h.cols();
        let d_out = self.w_root.value.cols();
        ensure_shape(&mut self.cache_agg, n, d_in);
        neighbor_mean_sweep_into(csr, h, SweepWeight::MeanOfNeighbors, threads, &mut self.cache_agg);
        ensure_shape(&mut self.buf_out, n, d_out);
        // The layer input is finite by construction (autoencoder codes,
        // structural features and one-hot labels at layer 0; ReLU + L2
        // outputs after) and meaningfully sparse (label one-hots,
        // post-ReLU zeros), so the root term takes the sparse-aware
        // entry point — bitwise identical to the dense kernel on
        // finite data. The aggregation term stays dense: neighbour
        // means smear the zeros out.
        h.matmul_sparse_into(&self.w_root.value, &mut self.buf_out).expect("root shape");
        ensure_shape(&mut self.buf_lin, n, d_out);
        self.cache_agg.matmul_into(&self.w_nbr.value, &mut self.buf_lin).expect("nbr shape");
        self.buf_out.add_assign(&self.buf_lin).expect("same shape");
        self.buf_out.add_row_broadcast(self.b.value.as_slice()).expect("bias");
        if train {
            ensure_shape(&mut self.cache_input, n, d_in);
            self.cache_input.as_mut_slice().copy_from_slice(h.as_slice());
            self.has_cache = true;
        }
        if self.last {
            return;
        }
        if train {
            self.cache_mask.clear();
            self.cache_mask.extend(self.buf_out.as_slice().iter().map(|&v| v > 0.0));
        }
        self.buf_out.map_inplace(|v| v.max(0.0));
        if self.l2_normalize {
            // Row-wise L2 normalisation (Eq. 4).
            let Self { buf_out, cache_norms, .. } = self;
            let cols = buf_out.cols();
            cache_norms.clear();
            for row in buf_out.as_mut_slice().chunks_exact_mut(cols) {
                let nrm = trail_linalg::vector::norm2(row).max(1e-12);
                for v in row.iter_mut() {
                    *v /= nrm;
                }
                cache_norms.push(nrm);
            }
            if train {
                ensure_shape(&mut self.cache_act, n, d_out);
                self.cache_act.as_mut_slice().copy_from_slice(self.buf_out.as_slice());
            }
        } else if train {
            self.cache_norms.clear();
        }
    }

    /// Backward pass into `self.buf_d_h` (the gradient w.r.t. the
    /// layer input). Must follow a train-mode [`Self::forward_into`]
    /// with no intervening forward — the caches are also the forward
    /// scratch buffers.
    fn backward_into(&mut self, csr: &Csr, d_out: &Matrix) {
        assert!(self.has_cache, "forward(train) first");
        let threads = trail_linalg::pool::num_threads();
        let n = d_out.rows();
        let d_o = d_out.cols();
        ensure_shape(&mut self.buf_d_pre, n, d_o);
        self.buf_d_pre.as_mut_slice().copy_from_slice(d_out.as_slice());
        if !self.last {
            if self.l2_normalize {
                // L2-norm backward: dx = (dy - y (dy·y)) / ||x||.
                let Self { buf_d_pre, cache_act, cache_norms, .. } = self;
                let cols = buf_d_pre.cols();
                for (r, norm) in cache_norms.iter().enumerate() {
                    let dot = trail_linalg::vector::dot(buf_d_pre.row(r), cache_act.row(r));
                    let y_row = cache_act.row(r);
                    let d_row = buf_d_pre.row_mut(r);
                    for c in 0..cols {
                        d_row[c] = (d_row[c] - y_row[c] * dot) / norm;
                    }
                }
            }
            // ReLU backward.
            for (g, &keep) in self.buf_d_pre.as_mut_slice().iter_mut().zip(&self.cache_mask) {
                if !keep {
                    *g = 0.0;
                }
            }
        }
        // Accumulate straight into the optimiser-zeroed grad buffers:
        // summing into zeros in the same k-order is bitwise identical
        // to materialising `t_matmul` and `add_assign`ing it.
        self.cache_input.t_matmul_acc(&self.buf_d_pre, &mut self.w_root.grad).expect("dw_root");
        self.cache_agg.t_matmul_acc(&self.buf_d_pre, &mut self.w_nbr.grad).expect("dw_nbr");
        {
            let Self { b, buf_d_pre, .. } = self;
            let bg = b.grad.as_mut_slice();
            for row in buf_d_pre.rows_iter() {
                for (g, &d) in bg.iter_mut().zip(row) {
                    *g += d;
                }
            }
        }
        let d_in = self.w_root.value.rows();
        ensure_shape(&mut self.buf_d_h, n, d_in);
        self.buf_d_pre.matmul_t_into(&self.w_root.value, &mut self.buf_d_h).expect("d_h root");
        ensure_shape(&mut self.buf_d_agg, n, d_in);
        self.buf_d_pre.matmul_t_into(&self.w_nbr.value, &mut self.buf_d_agg).expect("d_agg");
        ensure_shape(&mut self.buf_scatter, n, d_in);
        neighbor_mean_sweep_into(
            csr,
            &self.buf_d_agg,
            SweepWeight::TransposeMean,
            threads,
            &mut self.buf_scatter,
        );
        self.buf_d_h.add_assign(&self.buf_scatter).expect("same shape");
    }

    /// Allocating convenience wrapper for tests.
    #[cfg(test)]
    fn forward(&mut self, csr: &Csr, h: &Matrix, train: bool) -> Matrix {
        self.forward_into(csr, h, train);
        self.buf_out.clone()
    }
}

/// Weighting of the shared forward/backward neighbour-sweep kernel.
///
/// Both the forward mean aggregation and its backward adjoint are the
/// same gather: `out[v] = Σ_{u ∈ N(v)} w · src[u]` over the symmetric
/// CSR. Only the weight differs — `1/deg(v)` (the mean) forward,
/// `1/deg(u)` (the transposed mean) backward.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SweepWeight {
    /// `w = 1/deg(v)`: mean over the output row's neighbourhood.
    MeanOfNeighbors,
    /// `w = 1/deg(u)`: adjoint of the mean (gradient scatter, written
    /// as a gather so output rows stay disjoint).
    TransposeMean,
}

/// Row-parallel neighbour sweep over the CSR, written into a
/// caller-owned matrix (zeroed here first, so the accumulation order
/// matches the allocating form exactly). Every output row is produced
/// by exactly one thread and sums its neighbours in CSR order, so the
/// result is bitwise identical for every thread count.
fn neighbor_mean_sweep_into(
    csr: &Csr,
    src: &Matrix,
    weight: SweepWeight,
    threads: usize,
    out: &mut Matrix,
) {
    let n = csr.node_count();
    let d = src.cols();
    assert_eq!(src.rows(), n);
    assert_eq!(out.shape(), (n, d), "sweep output shape");
    out.as_mut_slice().fill(0.0);
    if n == 0 || d == 0 {
        return;
    }
    trail_linalg::pool::parallel_for_rows_limit(threads, out.as_mut_slice(), d, 16, |row0, band| {
        for (i, acc) in band.chunks_exact_mut(d).enumerate() {
            let v = row0 + i;
            let neighbors = csr.neighbors(NodeId::from(v));
            if neighbors.is_empty() {
                continue;
            }
            match weight {
                SweepWeight::MeanOfNeighbors => {
                    for &u in neighbors {
                        for (a, &x) in acc.iter_mut().zip(src.row(u.index())) {
                            *a += x;
                        }
                    }
                    let inv = 1.0 / neighbors.len() as f32;
                    for a in acc.iter_mut() {
                        *a *= inv;
                    }
                }
                SweepWeight::TransposeMean => {
                    for &u in neighbors {
                        let w = 1.0 / csr.degree(u) as f32;
                        for (a, &x) in acc.iter_mut().zip(src.row(u.index())) {
                            *a += w * x;
                        }
                    }
                }
            }
        }
    });
}

/// Allocating form of the neighbour sweep.
fn neighbor_mean_sweep(csr: &Csr, src: &Matrix, weight: SweepWeight, threads: usize) -> Matrix {
    let mut out = Matrix::zeros(csr.node_count(), src.cols());
    neighbor_mean_sweep_into(csr, src, weight, threads, &mut out);
    out
}

/// Mean aggregation over `N(v)` (neighbours only; zero for isolates).
pub fn aggregate_mean(csr: &Csr, h: &Matrix) -> Matrix {
    aggregate_mean_with_threads(csr, h, trail_linalg::pool::num_threads())
}

/// [`aggregate_mean`] pinned to at most `threads` pool participants
/// (1 ⇒ sequential reference). Exposed for equivalence tests and the
/// sequential-baseline benches.
pub fn aggregate_mean_with_threads(csr: &Csr, h: &Matrix, threads: usize) -> Matrix {
    neighbor_mean_sweep(csr, h, SweepWeight::MeanOfNeighbors, threads)
}

/// Transpose of [`aggregate_mean`]: route `d_agg` back to the inputs.
/// Written as a gather over the symmetric CSR (`out[v] = Σ_{u∈N(v)}
/// d_agg[u]/deg(u)`) so it parallelises by output row like the
/// forward pass.
#[cfg(test)]
fn scatter_mean_grad(csr: &Csr, d_agg: &Matrix) -> Matrix {
    scatter_mean_grad_with_threads(csr, d_agg, trail_linalg::pool::num_threads())
}

/// Backward adjoint of the mean aggregation with an explicit thread
/// cap, for tests and benches.
#[doc(hidden)]
pub fn scatter_mean_grad_with_threads(csr: &Csr, d_agg: &Matrix, threads: usize) -> Matrix {
    neighbor_mean_sweep(csr, d_agg, SweepWeight::TransposeMean, threads)
}

/// i8 snapshots of one layer's weight matrices, column-quantized and
/// stored transposed (see [`QuantizedMatrix::from_cols`]).
struct QuantLayerWeights {
    qw_root_t: QuantizedMatrix,
    qw_nbr_t: QuantizedMatrix,
}

/// Weight cache and scratch buffers for the quantized inference path.
/// Entirely separate from the training buffers: a quantized forward
/// never perturbs caches the f32 path depends on.
struct QuantState {
    /// `weights_version` the cached layer snapshots were taken at;
    /// `None` until the first quantized forward.
    built_at: Option<u64>,
    layers: Vec<QuantLayerWeights>,
    /// Ping-pong activation buffers (`h` holds the current layer
    /// input after the swap) plus the aggregation scratch.
    h: Matrix,
    out: Matrix,
    agg: Matrix,
    qh: QuantizedMatrix,
    qagg: QuantizedMatrix,
}

impl QuantState {
    fn new() -> Self {
        Self {
            built_at: None,
            layers: Vec::new(),
            h: Matrix::zeros(0, 0),
            out: Matrix::zeros(0, 0),
            agg: Matrix::zeros(0, 0),
            qh: QuantizedMatrix::new(),
            qagg: QuantizedMatrix::new(),
        }
    }
}

/// A full GraphSAGE model.
pub struct SageModel {
    layers: Vec<SageLayer>,
    cfg: SageConfig,
    /// Bumped on every parameter mutation; the quantized-weight cache
    /// is invalidated by comparing against it.
    weights_version: u64,
    quant: QuantState,
}

/// One layer's parameters as borrowed matrices:
/// `(W_root, W_nbr, bias)`.
pub type LayerWeights<'a> = (&'a Matrix, &'a Matrix, &'a Matrix);

impl SageModel {
    /// Build untrained.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, cfg: SageConfig) -> Self {
        assert!(cfg.layers >= 1);
        let mut layers = Vec::with_capacity(cfg.layers);
        let mut d_in = cfg.input_dim;
        for l in 0..cfg.layers {
            let last = l == cfg.layers - 1;
            let d_out = if last { cfg.n_classes } else { cfg.hidden };
            layers.push(SageLayer::new(rng, d_in, d_out, last, cfg.l2_normalize));
            d_in = d_out;
        }
        Self { layers, cfg, weights_version: 0, quant: QuantState::new() }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &SageConfig {
        &self.cfg
    }

    /// Full-graph forward pass producing per-node logits, borrowed
    /// from the last layer's output buffer. Allocation-free once
    /// buffer shapes stabilise; the borrow ends before
    /// [`Self::backward`] needs the model mutably.
    pub fn forward_cached(&mut self, csr: &Csr, x: &Matrix, train: bool) -> &Matrix {
        let n_layers = self.layers.len();
        for l in 0..n_layers {
            let (prev, rest) = self.layers.split_at_mut(l);
            let h: &Matrix = match prev.last() {
                Some(p) => &p.buf_out,
                None => x,
            };
            rest[0].forward_into(csr, h, train);
        }
        &self.layers[n_layers - 1].buf_out
    }

    /// Full-graph forward pass producing owned per-node logits.
    pub fn forward(&mut self, csr: &Csr, x: &Matrix, train: bool) -> Matrix {
        self.forward_cached(csr, x, train).clone()
    }

    /// Backward pass from per-node logit gradients. Must follow a
    /// train-mode forward with no intervening forward pass (the layer
    /// caches double as the forward scratch buffers).
    pub fn backward(&mut self, csr: &Csr, d_logits: &Matrix) {
        for l in (0..self.layers.len()).rev() {
            let (head, tail) = self.layers.split_at_mut(l + 1);
            let g: &Matrix = match tail.first() {
                Some(next) => &next.buf_d_h,
                None => d_logits,
            };
            head[l].backward_into(csr, g);
        }
    }

    /// Optimiser step over all parameters.
    pub fn step(&mut self, adam: &mut Adam) {
        adam.tick();
        for layer in &mut self.layers {
            adam.step(&mut layer.w_root);
            adam.step(&mut layer.w_nbr);
            adam.step(&mut layer.b);
        }
        self.weights_version += 1;
    }

    /// Per-node class probabilities (inference).
    pub fn predict_proba(&mut self, csr: &Csr, x: &Matrix) -> Matrix {
        let mut logits = self.forward(csr, x, false);
        let k = self.cfg.n_classes;
        for row in logits.as_mut_slice().chunks_exact_mut(k) {
            trail_linalg::vector::softmax_inplace(row);
        }
        logits
    }

    /// Layer weights — the explainer re-runs the model on masked
    /// subgraphs.
    pub fn weights(&self) -> Vec<LayerWeights<'_>> {
        self.layers.iter().map(|l| (&l.w_root.value, &l.w_nbr.value, &l.b.value)).collect()
    }

    /// Whether layer `l` applies L2 normalisation (hidden layers with
    /// the Eq. 4 option on).
    pub fn layer_is_normalised(&self, l: usize) -> bool {
        !self.layers[l].last && self.layers[l].l2_normalize
    }

    /// Whether layer `l` applies the ReLU activation (all but the last).
    pub fn layer_is_hidden(&self, l: usize) -> bool {
        !self.layers[l].last
    }

    /// Clone of every layer's parameter values `(W_root, W_nbr, b)`.
    /// The trainers capture this at the best-validation epoch so early
    /// stopping can return those weights instead of the last epoch's.
    pub(crate) fn snapshot_params(&self) -> Vec<(Matrix, Matrix, Matrix)> {
        self.layers
            .iter()
            .map(|l| (l.w_root.value.clone(), l.w_nbr.value.clone(), l.b.value.clone()))
            .collect()
    }

    /// Restore parameter values captured by [`Self::snapshot_params`].
    /// Optimiser moments are left as-is — restoration only happens when
    /// training is about to stop.
    pub(crate) fn restore_params(&mut self, snap: &[(Matrix, Matrix, Matrix)]) {
        assert_eq!(snap.len(), self.layers.len(), "snapshot layer count");
        for (layer, (w_root, w_nbr, b)) in self.layers.iter_mut().zip(snap) {
            layer.w_root.value = w_root.clone();
            layer.w_nbr.value = w_nbr.clone();
            layer.b.value = b.clone();
        }
        self.weights_version += 1;
        // Belt and braces: the version bump already invalidates the
        // quantized weight cache, but restores are rare and correctness
        // here is what keeps a restored model's i8 path bitwise equal
        // to quantizing from scratch — drop the cache outright so no
        // counter coincidence can ever resurrect stale i8 weights.
        self.quant.built_at = None;
    }

    /// Zero every parameter's Adam moments.
    ///
    /// Each training pass owns a fresh [`Adam`] whose bias-correction
    /// timestep starts at zero, so moments from an earlier pass are
    /// stale under the new timestep. They are also invisible to the
    /// weight-only checkpoint format: letting them leak across passes
    /// would make a model's trajectory depend on optimiser history a
    /// restored checkpoint cannot reproduce.
    pub fn reset_optimizer_state(&mut self) {
        for layer in &mut self.layers {
            for p in [&mut layer.w_root, &mut layer.w_nbr, &mut layer.b] {
                p.m.as_mut_slice().fill(0.0);
                p.v.as_mut_slice().fill(0.0);
            }
        }
    }

    /// Replace layer `l`'s parameters (shape-checked). Used for loading
    /// saved weights and for constructing reference models in tests.
    pub fn set_layer_weights(&mut self, l: usize, w_root: Matrix, w_nbr: Matrix, b: Matrix) {
        assert_eq!(w_root.shape(), self.layers[l].w_root.value.shape(), "W_root shape");
        assert_eq!(w_nbr.shape(), self.layers[l].w_nbr.value.shape(), "W_nbr shape");
        assert_eq!(b.shape(), self.layers[l].b.value.shape(), "b shape");
        self.layers[l].w_root = Param::new(w_root);
        self.layers[l].w_nbr = Param::new(w_nbr);
        self.layers[l].b = Param::new(b);
        self.weights_version += 1;
        // Same defensive invalidation as `restore_params`: loading
        // saved weights must never serve a stale i8 snapshot.
        self.quant.built_at = None;
    }

    /// Rebuild the i8 weight snapshots if any parameter changed since
    /// the cache was last built.
    fn ensure_quant_cache(&mut self) {
        if self.quant.built_at == Some(self.weights_version) {
            return;
        }
        self.quant.layers.clear();
        for layer in &self.layers {
            self.quant.layers.push(QuantLayerWeights {
                qw_root_t: QuantizedMatrix::from_cols(&layer.w_root.value),
                qw_nbr_t: QuantizedMatrix::from_cols(&layer.w_nbr.value),
            });
        }
        self.quant.built_at = Some(self.weights_version);
    }

    /// Full-graph forward pass over i8-quantized weights and
    /// activations — the quantized **inference** path.
    ///
    /// Structure mirrors the f32 forward exactly: CSR mean-aggregation
    /// sweep, two linear maps (here `i32`-accumulated i8 matmuls,
    /// dequantized per element), bias add, then ReLU + row L2
    /// normalisation on hidden layers. Aggregation, bias, activation
    /// and normalisation all stay in f32, so the only deviation from
    /// [`Self::forward`] is the two quantizations per layer, each
    /// bounded by the epsilon contract in `trail_linalg::quant`.
    ///
    /// Weight snapshots are cached and invalidated automatically when
    /// parameters change ([`Self::step`], [`Self::set_layer_weights`],
    /// checkpoint restores). Training state is untouched: interleaving
    /// quantized forwards with f32 inference is safe, and the f32
    /// training trajectory stays bitwise-deterministic.
    pub fn forward_quantized(&mut self, csr: &Csr, x: &Matrix) -> Matrix {
        self.ensure_quant_cache();
        let threads = trail_linalg::pool::num_threads();
        let n = x.rows();
        let QuantState { layers: qweights, h, out, agg, qh, qagg, .. } = &mut self.quant;
        for (l, layer) in self.layers.iter().enumerate() {
            let input: &Matrix = if l == 0 { x } else { h };
            let d_in = input.cols();
            let d_out = layer.w_root.value.cols();
            ensure_shape(agg, n, d_in);
            neighbor_mean_sweep_into(csr, input, SweepWeight::MeanOfNeighbors, threads, agg);
            qh.quantize_rows_into(input);
            qagg.quantize_rows_into(agg);
            ensure_shape(out, n, d_out);
            let qw = &qweights[l];
            matmul_quant_into(qh, &qw.qw_root_t, out).expect("root shape");
            matmul_quant_acc(qagg, &qw.qw_nbr_t, out).expect("nbr shape");
            out.add_row_broadcast(layer.b.value.as_slice()).expect("bias");
            if !layer.last {
                out.map_inplace(|v| v.max(0.0));
                if layer.l2_normalize {
                    let cols = out.cols();
                    for row in out.as_mut_slice().chunks_exact_mut(cols.max(1)) {
                        let nrm = trail_linalg::vector::norm2(row).max(1e-12);
                        for v in row.iter_mut() {
                            *v /= nrm;
                        }
                    }
                }
            }
            std::mem::swap(h, out);
        }
        h.clone()
    }

    /// Per-node class probabilities over the quantized forward.
    pub fn predict_proba_quantized(&mut self, csr: &Csr, x: &Matrix) -> Matrix {
        let mut logits = self.forward_quantized(csr, x);
        let k = self.cfg.n_classes;
        for row in logits.as_mut_slice().chunks_exact_mut(k) {
            trail_linalg::vector::softmax_inplace(row);
        }
        logits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trail_graph::{EdgeKind, GraphStore, NodeKind};
    use trail_ml::nn::loss::softmax_cross_entropy;

    fn line_graph() -> (GraphStore, Vec<NodeId>) {
        let mut g = GraphStore::new();
        let e0 = g.upsert_node(NodeKind::Event, "e0");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let e1 = g.upsert_node(NodeKind::Event, "e1");
        g.add_edge(e0, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e1, ip, EdgeKind::InReport).unwrap();
        (g, vec![e0, ip, e1])
    }

    #[test]
    fn aggregation_means_neighbors_only() {
        let (g, n) = line_graph();
        let csr = Csr::from_store(&g);
        let h = Matrix::from_vec(3, 1, vec![3.0, 6.0, 9.0]).unwrap();
        let agg = aggregate_mean(&csr, &h);
        // e0: mean{ip}=6 ; ip: mean{e0,e1}=6 ; e1: mean{ip}=6.
        assert_eq!(agg.as_slice(), &[6.0, 6.0, 6.0]);
        let _ = n;
    }

    #[test]
    fn isolated_node_aggregates_to_zero() {
        let mut g = GraphStore::new();
        g.upsert_node(NodeKind::Asn, "AS1");
        let csr = Csr::from_store(&g);
        let h = Matrix::from_vec(1, 2, vec![5.0, -1.0]).unwrap();
        let agg = aggregate_mean(&csr, &h);
        assert_eq!(agg.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_is_transpose_of_aggregate() {
        // <aggregate(h), d> must equal <h, scatter(d)> for all h, d.
        let (g, _) = line_graph();
        let csr = Csr::from_store(&g);
        let h = Matrix::from_vec(3, 2, vec![1.0, 2.0, -1.0, 0.5, 3.0, -2.0]).unwrap();
        let d = Matrix::from_vec(3, 2, vec![0.2, -0.7, 1.0, 0.3, -0.4, 0.9]).unwrap();
        let lhs: f32 = aggregate_mean(&csr, &h)
            .as_slice()
            .iter()
            .zip(d.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = h
            .as_slice()
            .iter()
            .zip(scatter_mean_grad(&csr, &d).as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-5, "{lhs} vs {rhs}");
    }

    #[test]
    fn output_shape_matches_classes() {
        let (g, _) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SageConfig::new(4, 8, 3, 5);
        let mut model = SageModel::new(&mut rng, cfg);
        let x = Matrix::zeros(3, 4);
        let out = model.forward(&csr, &x, false);
        assert_eq!(out.shape(), (3, 5));
    }

    #[test]
    fn training_fits_a_labelled_pair() {
        // Two events share an IP; labels differ; distinct input features
        // let the model separate them.
        let (g, n) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SageConfig::new(2, 16, 2, 2);
        let mut model = SageModel::new(&mut rng, cfg);
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, 0.5, 0.0, 1.0]).unwrap();
        let labels = [(n[0], 0u16), (n[2], 1u16)];
        let mut adam = Adam::new(0.05);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            let logits = model.forward(&csr, &x, true);
            let rows: Vec<usize> = labels.iter().map(|(id, _)| id.index()).collect();
            let sub = logits.gather_rows(&rows);
            let y: Vec<u16> = labels.iter().map(|&(_, c)| c).collect();
            let (loss, d_sub) = softmax_cross_entropy(&sub, &y);
            let mut d_logits = Matrix::zeros(3, 2);
            for (i, &r) in rows.iter().enumerate() {
                d_logits.row_mut(r).copy_from_slice(d_sub.row(i));
            }
            model.backward(&csr, &d_logits);
            model.step(&mut adam);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.5, "{first_loss:?} -> {last_loss}");
        let proba = model.predict_proba(&csr, &x);
        assert!(proba[(n[0].index(), 0)] > 0.5);
        assert!(proba[(n[2].index(), 1)] > 0.5);
    }

    #[test]
    fn hidden_layers_are_unit_norm() {
        let (g, _) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SageConfig::new(3, 6, 2, 2);
        let mut model = SageModel::new(&mut rng, cfg);
        let x = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 + 0.5);
        let h = model.layers[0].forward(&csr, &x, false);
        for row in h.rows_iter() {
            let n = trail_linalg::vector::norm2(row);
            if n > 1e-9 {
                assert!((n - 1.0).abs() < 1e-4, "norm {n}");
            }
        }
    }

    #[test]
    fn root_weight_preserves_self_identity() {
        // With W_nbr = 0 and W_root = I, the layer is the identity map
        // (pre-normalisation): self features pass through undiluted.
        let (g, _) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SageConfig::new(2, 4, 1, 2);
        let mut model = SageModel::new(&mut rng, cfg);
        model.set_layer_weights(0, Matrix::identity(2), Matrix::zeros(2, 2), Matrix::zeros(1, 2));
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let y = model.forward(&csr, &x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn repeated_forward_reuses_buffers_bitwise() {
        // Buffer reuse across calls must not leak state between passes:
        // the same input yields the exact same output every time, and a
        // different input in between does not perturb it.
        let (g, _) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SageConfig::new(3, 8, 2, 4);
        let mut model = SageModel::new(&mut rng, cfg);
        let x = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32 * 0.25 - 1.0);
        let first = model.forward(&csr, &x, false);
        let other = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 * -0.5);
        let _ = model.forward(&csr, &other, true);
        let again = model.forward(&csr, &x, false);
        assert_eq!(first, again);
    }

    /// Train the labelled-pair fixture (seeded RNG, so the whole run is
    /// deterministic), then require the quantized forward to agree with
    /// f32: max-abs logit error within 1e-2 and identical argmax on
    /// every node.
    #[test]
    fn quantized_forward_tracks_f32_on_trained_fixture() {
        let (g, n) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SageConfig::new(2, 16, 2, 2);
        let mut model = SageModel::new(&mut rng, cfg);
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, 0.5, 0.0, 1.0]).unwrap();
        let labels = [(n[0], 0u16), (n[2], 1u16)];
        let mut adam = Adam::new(0.05);
        for _ in 0..60 {
            let logits = model.forward(&csr, &x, true);
            let rows: Vec<usize> = labels.iter().map(|(id, _)| id.index()).collect();
            let sub = logits.gather_rows(&rows);
            let y: Vec<u16> = labels.iter().map(|&(_, c)| c).collect();
            let (_, d_sub) = softmax_cross_entropy(&sub, &y);
            let mut d_logits = Matrix::zeros(3, 2);
            for (i, &r) in rows.iter().enumerate() {
                d_logits.row_mut(r).copy_from_slice(d_sub.row(i));
            }
            model.backward(&csr, &d_logits);
            model.step(&mut adam);
        }
        let exact = model.forward(&csr, &x, false);
        let quant = model.forward_quantized(&csr, &x);
        assert_eq!(exact.shape(), quant.shape());
        let mut max_err = 0.0f32;
        for (e, q) in exact.as_slice().iter().zip(quant.as_slice()) {
            max_err = max_err.max((e - q).abs());
        }
        assert!(max_err <= 1e-2, "max-abs logit error {max_err}");
        for r in 0..exact.rows() {
            let am = |row: &[f32]| trail_linalg::vector::argmax(row);
            assert_eq!(am(exact.row(r)), am(quant.row(r)), "argmax disagrees on row {r}");
        }
        // The f32 path must be untouched by the quantized pass.
        let exact_again = model.forward(&csr, &x, false);
        assert_eq!(exact, exact_again);
    }

    /// Restore-then-quantized-predict must match quantize-from-scratch
    /// bitwise: a model whose quant cache was built under *other*
    /// weights, then had a trained snapshot restored into it, serves
    /// exactly the i8 path a fresh model loaded with those weights
    /// serves — no stale cached i8 snapshot can survive the restore.
    #[test]
    fn restored_weights_requantize_bitwise_identical_to_scratch() {
        let (g, n) = line_graph();
        let csr = Csr::from_store(&g);
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, 0.5, 0.0, 1.0]).unwrap();
        let cfg = SageConfig::new(2, 16, 2, 2);

        // Train a reference model to get non-trivial weights.
        let mut rng = StdRng::seed_from_u64(2);
        let mut trained = SageModel::new(&mut rng, cfg);
        let labels = [(n[0], 0u16), (n[2], 1u16)];
        let mut adam = Adam::new(0.05);
        for _ in 0..30 {
            let logits = trained.forward(&csr, &x, true);
            let rows: Vec<usize> = labels.iter().map(|(id, _)| id.index()).collect();
            let sub = logits.gather_rows(&rows);
            let y: Vec<u16> = labels.iter().map(|&(_, c)| c).collect();
            let (_, d_sub) = softmax_cross_entropy(&sub, &y);
            let mut d_logits = Matrix::zeros(3, 2);
            for (i, &r) in rows.iter().enumerate() {
                d_logits.row_mut(r).copy_from_slice(d_sub.row(i));
            }
            trained.backward(&csr, &d_logits);
            trained.step(&mut adam);
        }
        let snap = trained.snapshot_params();

        // Model with a *warm* quant cache built under different weights,
        // then the trained snapshot restored via both restore paths.
        let mut via_restore = SageModel::new(&mut StdRng::seed_from_u64(99), cfg);
        let _ = via_restore.forward_quantized(&csr, &x); // warm stale cache
        via_restore.restore_params(&snap);

        let mut via_set = SageModel::new(&mut StdRng::seed_from_u64(99), cfg);
        let _ = via_set.forward_quantized(&csr, &x); // warm stale cache
        for (l, (w_root, w_nbr, b)) in snap.iter().enumerate() {
            via_set.set_layer_weights(l, w_root.clone(), w_nbr.clone(), b.clone());
        }

        // Quantize-from-scratch reference: never quantized before.
        let mut scratch = SageModel::new(&mut StdRng::seed_from_u64(99), cfg);
        scratch.restore_params(&snap);

        let want = scratch.forward_quantized(&csr, &x);
        assert_eq!(via_restore.forward_quantized(&csr, &x), want);
        assert_eq!(via_set.forward_quantized(&csr, &x), want);
        // And both agree with the trained model's own quantized path.
        assert_eq!(trained.forward_quantized(&csr, &x), want);
    }

    #[test]
    fn quantized_weight_cache_invalidates_on_param_change() {
        let (g, _) = line_graph();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SageConfig::new(2, 4, 1, 2);
        let mut model = SageModel::new(&mut rng, cfg);
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let before = model.forward_quantized(&csr, &x);
        model.set_layer_weights(0, Matrix::identity(2), Matrix::zeros(2, 2), Matrix::zeros(1, 2));
        let after = model.forward_quantized(&csr, &x);
        // Identity weights reproduce x exactly (scales are exact for
        // these inputs is not required — just that the cache refreshed).
        assert_ne!(before, after);
        let exact = model.forward(&csr, &x, false);
        for (e, q) in exact.as_slice().iter().zip(after.as_slice()) {
            assert!((e - q).abs() <= 0.05, "{e} vs {q}");
        }
    }
}
