//! Domain-name IOCs: validation and the paper's lexical features.

use serde::{Deserialize, Serialize};

use crate::defang::refang;
use crate::{shannon_entropy, IocError, Result};

/// A validated, lowercased domain name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DomainIoc {
    /// Canonical (lowercase, no trailing dot) text.
    pub text: String,
}

/// The four lexical features the paper tracks for domains: length,
/// digit ratio, label (period) count and character entropy. Together
/// these fingerprint domain-generation algorithms (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainLexical {
    /// Total length in characters.
    pub length: f32,
    /// Fraction of characters that are digits.
    pub digit_ratio: f32,
    /// Number of `.`-separated labels minus one (period count).
    pub periods: f32,
    /// Shannon entropy (bits) of the name.
    pub entropy: f32,
}

impl DomainIoc {
    /// Parse (possibly defanged) text as a domain name.
    ///
    /// Accepts letters, digits and hyphens in labels (LDH rule), at
    /// least two labels, an alphabetic TLD, and at most 253 chars.
    pub fn parse(raw: &str) -> Result<Self> {
        let s = refang(raw).to_ascii_lowercase();
        let s = s.strip_suffix('.').unwrap_or(&s).to_owned();
        if s.len() > 253 || s.is_empty() {
            return Err(IocError::invalid("domain", raw, "bad length"));
        }
        let labels: Vec<&str> = s.split('.').collect();
        if labels.len() < 2 {
            return Err(IocError::invalid("domain", raw, "needs at least two labels"));
        }
        for label in &labels {
            if label.is_empty() || label.len() > 63 {
                return Err(IocError::invalid("domain", raw, "bad label length"));
            }
            if !label.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
                return Err(IocError::invalid("domain", raw, "non-LDH character"));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(IocError::invalid("domain", raw, "label starts/ends with hyphen"));
            }
        }
        let tld = labels.last().expect("checked non-empty");
        if !tld.bytes().all(|b| b.is_ascii_alphabetic()) {
            return Err(IocError::invalid("domain", raw, "numeric TLD (looks like an IP?)"));
        }
        Ok(Self { text: s })
    }

    /// The top-level domain (final label).
    pub fn tld(&self) -> &str {
        self.text.rsplit('.').next().expect("validated")
    }

    /// The registrable (second-level + TLD) suffix, e.g.
    /// `c.b.a.example` → `a.example`. Approximation without a public
    /// suffix list, which is what the paper's lexical pipeline uses.
    pub fn registrable(&self) -> String {
        let labels: Vec<&str> = self.text.split('.').collect();
        labels[labels.len().saturating_sub(2)..].join(".")
    }

    /// Number of subdomain labels in front of the registrable part.
    pub fn subdomain_depth(&self) -> usize {
        self.text.split('.').count().saturating_sub(2)
    }

    /// Extract the four lexical features.
    pub fn lexical(&self) -> DomainLexical {
        let len = self.text.len() as f32;
        let digits = self.text.bytes().filter(u8::is_ascii_digit).count() as f32;
        DomainLexical {
            length: len,
            digit_ratio: if len > 0.0 { digits / len } else { 0.0 },
            periods: self.text.matches('.').count() as f32,
            entropy: shannon_entropy(&self.text),
        }
    }
}

impl std::fmt::Display for DomainIoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_canonicalises() {
        let d = DomainIoc::parse("ThreeBody[.]CN.").unwrap();
        assert_eq!(d.text, "threebody.cn");
        assert_eq!(d.tld(), "cn");
    }

    #[test]
    fn rejects_invalid() {
        for bad in ["", "nolabel", ".leading", "trailing..dots", "-bad.example", "bad-.example", "1.2.3.4", "a_b.example", &"x".repeat(300)] {
            assert!(DomainIoc::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn registrable_and_depth() {
        let d = DomainIoc::parse("v5y7s3.l2twn2.club").unwrap();
        assert_eq!(d.registrable(), "l2twn2.club");
        assert_eq!(d.subdomain_depth(), 1);
        let flat = DomainIoc::parse("example.com").unwrap();
        assert_eq!(flat.registrable(), "example.com");
        assert_eq!(flat.subdomain_depth(), 0);
    }

    #[test]
    fn lexical_features() {
        let d = DomainIoc::parse("abc123.example").unwrap();
        let l = d.lexical();
        assert_eq!(l.length, 14.0);
        assert!((l.digit_ratio - 3.0 / 14.0).abs() < 1e-6);
        assert_eq!(l.periods, 1.0);
        assert!(l.entropy > 0.0);
    }

    #[test]
    fn dga_style_domains_have_higher_entropy() {
        let dga = DomainIoc::parse("q7x9zk2mf4tq.club").unwrap();
        let plain = DomainIoc::parse("downloads.example").unwrap();
        assert!(dga.lexical().entropy > plain.lexical().entropy);
    }
}
