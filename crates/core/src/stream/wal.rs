//! TWL1 — the streaming write-ahead event log, and the durable stream
//! wrapper that replays it.
//!
//! [`super::StreamRuntime`]'s crash-recovery story is event sourcing:
//! the feed is the log, so replaying the same reports reconstructs the
//! same state bit for bit. That story has a hole in a long-running
//! deployment: a crash between checkpoints loses every pushed-but-
//! unpersisted event unless the *feed itself* can be re-queried from
//! the exact cursor — which real exchanges do not guarantee. The WAL
//! closes the hole locally: every report pushed through
//! [`DurableStream`] is appended to an on-disk segment log *before*
//! the runtime processes it, so recovery is always a local replay.
//!
//! ## Record frame
//!
//! The fourth member of the TKG2/TSC1/TSB1 frame family, one frame per
//! record (all integers little-endian):
//!
//! ```text
//! "TWL1" | u32 version | u64 payload_len | u64 fnv1a(payload) | payload
//! ```
//!
//! The payload is a compact binary [`RawReport`] encoding. Segments
//! are plain frame concatenations named `wal-<8-hex-digits>.twl`;
//! once a segment reaches [`WalConfig::segment_bytes`] it is *sealed*
//! (fsynced, never written again) and a fresh segment opens. A
//! zero-length segment is valid — it is exactly the state a crash
//! between "seal old" and "first append to new" leaves behind.
//!
//! ## Recovery contract: truncate at the tear
//!
//! [`Wal::open`] scans segments in name order and validates every
//! frame. An invalid frame (short header, bad magic/version, length
//! overrunning the file, checksum mismatch) in the **last** segment is
//! a *torn tail* — the unfinished append a kill left behind. The log
//! is physically truncated at the tear and every record before it
//! survives. The same damage in a **sealed** segment can only be bit
//! rot or a hostile edit, never a torn append, so it surfaces as a
//! typed [`WalError::CorruptSealed`] — never a panic, never a silent
//! skip. Length fields are validated in the u64 domain before any
//! `usize` cast, like every other frame in the family.
//!
//! ## What the WAL does and does not protect
//!
//! Durability of an appended record depends on the [`FsyncPolicy`]:
//! `Always` bounds loss to the in-flight append, `EveryN(n)` to the
//! last `n` appends, `OnTick` to the current tick window. The WAL
//! protects *pushed events*; it does not snapshot model state — the
//! replay retrains deterministically — and it does not defend sealed
//! segments against bit rot beyond detecting it (keep checkpoints for
//! that; see DESIGN.md §14).

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use trail_graph::persist::fnv1a_bytes;
use trail_ioc::report::{RawIndicator, RawReport};

use super::{PushOutcome, StreamRuntime, TickReport};

const MAGIC: [u8; 4] = *b"TWL1";
const VERSION: u32 = 1;
/// Frame header: magic + version + payload len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Why the log could not be written, scanned or replayed.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A frame in a sealed (non-last) segment failed validation. Torn
    /// appends can only reach the last segment, so this is bit rot or
    /// a hostile edit — the log refuses to replay rather than guess.
    CorruptSealed {
        /// Index of the damaged segment.
        segment: u64,
        /// Byte offset of the bad frame within the segment.
        offset: u64,
        /// What failed there.
        what: &'static str,
    },
    /// A frame's checksum passed but its payload is not a valid report
    /// encoding — only reachable for a buggy or hostile writer.
    MalformedRecord {
        /// Segment the record lives in.
        segment: u64,
        /// Byte offset of the frame within the segment.
        offset: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// The directory already holds segments where a fresh log was
    /// demanded ([`Wal::create`] refuses to clobber history).
    NotEmpty {
        /// The offending directory.
        dir: PathBuf,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::CorruptSealed { segment, offset, what } => {
                write!(f, "sealed segment {segment} corrupt at byte {offset}: {what}")
            }
            WalError::MalformedRecord { segment, offset, what } => {
                write!(f, "malformed record in segment {segment} at byte {offset}: {what}")
            }
            WalError::NotEmpty { dir } => {
                write!(f, "wal dir {} already holds segments", dir.display())
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: a crash loses at most the
    /// in-flight record.
    Always,
    /// `fdatasync` every `n` appends (and on seal): a crash loses at
    /// most the last `n` records.
    EveryN(u64),
    /// `fdatasync` only when the stream ticks (and on seal): the crash
    /// window is the current tick's events — cheapest, and exactly the
    /// window a tick-granular consumer already tolerates.
    OnTick,
}

/// Log construction parameters.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory the segments live in (created if absent).
    pub dir: PathBuf,
    /// Seal the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A log in `dir` with 4 MiB segments and per-append fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), segment_bytes: 4 << 20, fsync: FsyncPolicy::Always }
    }
}

/// Where recovery found a torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tear {
    /// Segment index holding the torn frame.
    pub segment: u64,
    /// Byte offset the segment was truncated to.
    pub offset: u64,
}

/// What a recovery scan found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segments scanned (including empty ones).
    pub segments: u64,
    /// Complete records recovered.
    pub records: u64,
    /// The torn tail, if the last segment ended mid-append.
    pub tear: Option<Tear>,
}

/// The append-only segment log.
pub struct Wal {
    cfg: WalConfig,
    /// Active (last) segment.
    file: File,
    seg_index: u64,
    seg_len: u64,
    appended_since_sync: u64,
    records: u64,
}

fn segment_name(index: u64) -> String {
    format!("wal-{index:08x}.twl")
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(segment_name(index))
}

/// Parse `wal-<8-hex>.twl` back to its index.
fn parse_segment_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".twl")?;
    if rest.len() != 8 {
        return None;
    }
    u64::from_str_radix(rest, 16).ok()
}

/// fsync a directory so a just-created/renamed entry is durable — the
/// same hole [`trail_graph::persist::write_atomic`] closes for
/// snapshots.
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Sorted indices of the segments present in `dir`. Non-segment files
/// are ignored (the dir may hold bundles or checkpoints too).
fn list_segments(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push(idx);
        }
    }
    out.sort_unstable();
    Ok(out)
}

// --- record codec ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encode one report as a TWL1 payload (no frame).
fn encode_report(r: &RawReport) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + 16 * r.indicators.len());
    put_str(&mut p, &r.id);
    put_u32(&mut p, r.created_day);
    put_u32(&mut p, r.tags.len() as u32);
    for t in &r.tags {
        put_str(&mut p, t);
    }
    put_u32(&mut p, r.indicators.len() as u32);
    for i in &r.indicators {
        put_str(&mut p, &i.indicator_type);
        put_str(&mut p, &i.indicator);
    }
    p
}

/// Bounds-checked payload reader (persist.rs idiom, error type local).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], &'static str> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let s = &self.data[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(what),
        }
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, &'static str> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn str(&mut self, what: &'static str) -> Result<String, &'static str> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string")
    }

    /// A count that must plausibly fit in the remaining bytes.
    fn count(&mut self, min_elem: usize, what: &'static str) -> Result<usize, &'static str> {
        let n = self.u32(what)? as usize;
        if n > (self.data.len() - self.pos) / min_elem.max(1) + 1 {
            return Err(what);
        }
        Ok(n)
    }
}

/// Decode a TWL1 payload back into a report.
fn decode_report(payload: &[u8]) -> Result<RawReport, &'static str> {
    let mut c = Cursor { data: payload, pos: 0 };
    let id = c.str("report id")?;
    let created_day = c.u32("created day")?;
    let n_tags = c.count(4, "tag count")?;
    let mut tags = Vec::with_capacity(n_tags);
    for _ in 0..n_tags {
        tags.push(c.str("tag")?);
    }
    let n_ind = c.count(8, "indicator count")?;
    let mut indicators = Vec::with_capacity(n_ind);
    for _ in 0..n_ind {
        indicators.push(RawIndicator {
            indicator_type: c.str("indicator type")?,
            indicator: c.str("indicator")?,
        });
    }
    if c.pos != payload.len() {
        return Err("trailing bytes after indicators");
    }
    Ok(RawReport { id, created_day, tags, indicators })
}

/// Frame one payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One validated frame scan step: `Ok(Some((payload, next_offset)))`,
/// `Ok(None)` at a clean end-of-segment, `Err(what)` at a tear.
fn scan_frame(data: &[u8], offset: u64) -> Result<Option<(&[u8], u64)>, &'static str> {
    let pos = offset as usize;
    let rest = &data[pos..];
    if rest.is_empty() {
        return Ok(None);
    }
    if rest.len() < HEADER_LEN {
        return Err("short header");
    }
    if rest[..4] != MAGIC {
        return Err("bad magic");
    }
    let version = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err("unsupported version");
    }
    let want = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
    let expected = u64::from_le_bytes(rest[16..24].try_into().expect("8 bytes"));
    // Validate the untrusted length entirely in the u64 domain before
    // any usize cast or slicing: an inflated (or u64::MAX) length must
    // read as "frame overruns the segment", not wrap into a small
    // in-bounds slice on a 32-bit target.
    let available = (rest.len() - HEADER_LEN) as u64;
    if want > available {
        return Err("payload overruns segment");
    }
    let payload = &rest[HEADER_LEN..HEADER_LEN + want as usize];
    if fnv1a_bytes(payload) != expected {
        return Err("checksum mismatch");
    }
    Ok(Some((payload, offset + (HEADER_LEN as u64) + want)))
}

impl Wal {
    /// Start a brand-new log. The directory is created if missing and
    /// must not already hold segments.
    pub fn create(cfg: WalConfig) -> Result<Self, WalError> {
        std::fs::create_dir_all(&cfg.dir)?;
        if !list_segments(&cfg.dir)?.is_empty() {
            return Err(WalError::NotEmpty { dir: cfg.dir.clone() });
        }
        let file = Self::new_segment(&cfg.dir, 0)?;
        Ok(Self { cfg, file, seg_index: 0, seg_len: 0, appended_since_sync: 0, records: 0 })
    }

    /// Open an existing log (or start one): scan every segment, apply
    /// the truncate-at-tear recovery rule, and return the log
    /// positioned for appending plus the recovered records.
    ///
    /// Idempotent: opening, doing nothing, and opening again recovers
    /// the same records and reports no new tear.
    pub fn open(cfg: WalConfig) -> Result<(Self, Vec<RawReport>, RecoveryReport), WalError> {
        std::fs::create_dir_all(&cfg.dir)?;
        let segments = list_segments(&cfg.dir)?;
        if segments.is_empty() {
            let wal = Self::create(cfg)?;
            return Ok((wal, Vec::new(), RecoveryReport::default()));
        }
        let mut records = Vec::new();
        let mut report = RecoveryReport { segments: segments.len() as u64, ..Default::default() };
        let last = *segments.last().expect("non-empty");
        for &idx in &segments {
            let path = segment_path(&cfg.dir, idx);
            let data = std::fs::read(&path)?;
            let mut offset = 0u64;
            loop {
                match scan_frame(&data, offset) {
                    Ok(None) => break,
                    Ok(Some((payload, next))) => {
                        let r = decode_report(payload).map_err(|what| {
                            WalError::MalformedRecord { segment: idx, offset, what }
                        })?;
                        records.push(r);
                        offset = next;
                    }
                    Err(_) if idx == last => {
                        // Torn tail: truncate the file at the tear so a
                        // later append never lands after garbage.
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(offset)?;
                        f.sync_all()?;
                        report.tear = Some(Tear { segment: idx, offset });
                        break;
                    }
                    Err(what) => {
                        return Err(WalError::CorruptSealed { segment: idx, offset, what });
                    }
                }
            }
        }
        report.records = records.len() as u64;
        trail_obs::counter_add("stream.wal.recovered", report.records);
        if report.tear.is_some() {
            trail_obs::counter_add("stream.wal.truncations", 1);
        }
        // Re-open the last segment for appending at its (possibly
        // truncated) end.
        let path = segment_path(&cfg.dir, last);
        let mut file = OpenOptions::new().write(true).open(&path)?;
        let seg_len = file.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                cfg,
                file,
                seg_index: last,
                seg_len,
                appended_since_sync: 0,
                records: report.records,
            },
            records,
            report,
        ))
    }

    fn new_segment(dir: &Path, index: u64) -> Result<File, WalError> {
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(dir, index))?;
        // The segment *entry* must be durable before anything in it is:
        // otherwise a crash can leave durable records in a file the
        // directory does not know about.
        fsync_dir(dir)?;
        Ok(file)
    }

    /// Append one report. Write-ahead discipline: callers feed the
    /// record to the runtime only after this returns.
    pub fn append(&mut self, report: &RawReport) -> Result<(), WalError> {
        let t = std::time::Instant::now();
        let bytes = frame(&encode_report(report));
        self.file.write_all(&bytes)?;
        self.seg_len += bytes.len() as u64;
        self.records += 1;
        self.appended_since_sync += 1;
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.appended_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnTick => {}
        }
        if self.seg_len >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        trail_obs::counter_add("stream.wal.appended", 1);
        trail_obs::observe(
            "stream.wal.append_us",
            trail_obs::bounds::WAL_APPEND_US,
            t.elapsed().as_micros() as u64,
        );
        Ok(())
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Seal the active segment and open the next one. A kill between
    /// the seal and the first append to the new segment leaves a valid
    /// empty segment — recovery treats it as zero records.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.file.sync_all()?;
        self.seg_index += 1;
        self.file = Self::new_segment(&self.cfg.dir, self.seg_index)?;
        self.seg_len = 0;
        self.appended_since_sync = 0;
        trail_obs::counter_add("stream.wal.rotations", 1);
        Ok(())
    }

    /// Records appended or recovered over this log's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Index of the active segment.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }
}

/// Scan a log directory read-only (no truncation, no file opens for
/// write): the records that *would* be recovered plus the report.
/// Drills use this to probe kill points without mutating the log.
pub fn scan(dir: &Path) -> Result<(Vec<RawReport>, RecoveryReport), WalError> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    let mut report = RecoveryReport { segments: segments.len() as u64, ..Default::default() };
    let last = match segments.last() {
        Some(&l) => l,
        None => return Ok((records, report)),
    };
    for &idx in &segments {
        let data = std::fs::read(segment_path(dir, idx))?;
        let mut offset = 0u64;
        loop {
            match scan_frame(&data, offset) {
                Ok(None) => break,
                Ok(Some((payload, next))) => {
                    let r = decode_report(payload)
                        .map_err(|what| WalError::MalformedRecord { segment: idx, offset, what })?;
                    records.push(r);
                    offset = next;
                }
                Err(_) if idx == last => {
                    report.tear = Some(Tear { segment: idx, offset });
                    break;
                }
                Err(what) => return Err(WalError::CorruptSealed { segment: idx, offset, what }),
            }
        }
    }
    report.records = records.len() as u64;
    Ok((records, report))
}

/// A [`StreamRuntime`] whose pushes are logged write-ahead.
///
/// Every report — including ones the collector will drop — is appended
/// to the WAL *before* [`StreamRuntime::push`] sees it, so a replay
/// reproduces not just the graph and model but the ledger and obs
/// counters too (drops are deterministic collector verdicts, and the
/// ledger counts issued reports, not just ingested ones).
pub struct DurableStream {
    wal: Wal,
    rt: StreamRuntime,
}

impl DurableStream {
    /// Wrap a fresh runtime over a brand-new log.
    pub fn create(wal_cfg: WalConfig, rt: StreamRuntime) -> Result<Self, WalError> {
        Ok(Self { wal: Wal::create(wal_cfg)?, rt })
    }

    /// Recover: scan the log (truncating a torn tail), replay every
    /// surviving record through `rt` — which must be freshly built,
    /// with no events pushed — and return the caught-up stream.
    ///
    /// The replayed runtime is bitwise-identical (TKG + model
    /// fingerprints, ledger) to one that pushed exactly the recovered
    /// records, because pushes are deterministic given the base system
    /// and config — the property `tests/wal_recovery_test.rs` pins at
    /// arbitrary kill offsets.
    pub fn recover(
        wal_cfg: WalConfig,
        mut rt: StreamRuntime,
    ) -> Result<(Self, RecoveryReport), WalError> {
        assert_eq!(
            rt.ledger().issued,
            0,
            "recovery replays into a fresh runtime; this one already saw events"
        );
        let (wal, records, report) = Wal::open(wal_cfg)?;
        {
            let _span = trail_obs::span("stream.wal.replay");
            for r in &records {
                rt.push(r);
            }
        }
        Ok((Self { wal, rt }, report))
    }

    /// Log the report, then push it. The record is on disk (durable per
    /// the fsync policy) before the runtime touches it; if the append
    /// fails the event is *not* processed, keeping "in the runtime"
    /// a subset of "in the log".
    pub fn push(&mut self, report: &RawReport) -> Result<PushOutcome, WalError> {
        self.wal.append(report)?;
        let ticks_before = self.rt.ticks_fired();
        let outcome = self.rt.push(report);
        if self.rt.ticks_fired() != ticks_before {
            self.tick_barrier()?;
        }
        Ok(outcome)
    }

    /// Fire a tick (see [`StreamRuntime::tick`]), honouring the
    /// `OnTick` fsync barrier.
    pub fn tick(&mut self) -> Result<Option<TickReport>, WalError> {
        let report = self.rt.tick();
        self.tick_barrier()?;
        Ok(report)
    }

    /// Drain pending events with a final tick and sync the log.
    pub fn finish(&mut self) -> Result<Option<TickReport>, WalError> {
        let report = self.rt.finish();
        self.wal.sync()?;
        Ok(report)
    }

    /// The `OnTick` policy's barrier: everything the tick trained on
    /// is durable once the tick completes.
    fn tick_barrier(&mut self) -> Result<(), WalError> {
        if self.wal.cfg.fsync == FsyncPolicy::OnTick {
            self.wal.sync()?;
        }
        Ok(())
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &StreamRuntime {
        &self.rt
    }

    /// Mutable access for freeze/refreeze (which must sync incremental
    /// state); ingestion should go through [`Self::push`] so it is
    /// logged.
    pub fn runtime_mut(&mut self) -> &mut StreamRuntime {
        &mut self.rt
    }

    /// The log.
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Unwrap, keeping the runtime and dropping the log handle.
    pub fn into_runtime(self) -> StreamRuntime {
        self.rt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("trail-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn report(i: u32) -> RawReport {
        RawReport {
            id: format!("r{i:04}"),
            created_day: 600 + i,
            tags: vec![format!("APT{}", i % 3), "extra-tag".to_owned()],
            indicators: vec![
                RawIndicator {
                    indicator_type: "IPv4".to_owned(),
                    indicator: format!("10.0.{}.{}", i / 256, i % 256),
                },
                RawIndicator {
                    indicator_type: "domain".to_owned(),
                    indicator: format!("c2-{i}.example"),
                },
            ],
        }
    }

    fn reports(n: u32) -> Vec<RawReport> {
        (0..n).map(report).collect()
    }

    /// Concatenated segment bytes in order (test helper).
    fn log_bytes(dir: &Path) -> Vec<u8> {
        let mut out = Vec::new();
        for idx in list_segments(dir).unwrap() {
            out.extend_from_slice(&std::fs::read(segment_path(dir, idx)).unwrap());
        }
        out
    }

    /// Simulate a kill when exactly `keep` bytes of the whole log were
    /// durable: truncate the segment containing the boundary, drop any
    /// later segments.
    fn truncate_log_at(dir: &Path, keep: u64) {
        let mut remaining = keep;
        for idx in list_segments(dir).unwrap() {
            let path = segment_path(dir, idx);
            let len = std::fs::metadata(&path).unwrap().len();
            if remaining >= len {
                remaining -= len;
            } else {
                let f = OpenOptions::new().write(true).open(&path).unwrap();
                f.set_len(remaining).unwrap();
                // A kill can't leave segments after the torn one: the
                // writer had not created them yet.
                let later: Vec<u64> = list_segments(dir)
                    .unwrap()
                    .into_iter()
                    .filter(|&j| j > idx)
                    .collect();
                for j in later {
                    std::fs::remove_file(segment_path(dir, j)).unwrap();
                }
                return;
            }
        }
    }

    #[test]
    fn record_codec_roundtrips() {
        for r in reports(5) {
            let payload = encode_report(&r);
            assert_eq!(decode_report(&payload).unwrap(), r);
        }
        // Empty tags/indicators are fine.
        let bare = RawReport {
            id: String::new(),
            created_day: 0,
            tags: Vec::new(),
            indicators: Vec::new(),
        };
        assert_eq!(decode_report(&encode_report(&bare)).unwrap(), bare);
    }

    #[test]
    fn append_and_recover_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let rs = reports(20);
        {
            let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
            for r in &rs {
                wal.append(r).unwrap();
            }
            assert_eq!(wal.records(), 20);
        }
        let (wal, recovered, rep) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered, rs);
        assert_eq!(rep.records, 20);
        assert_eq!(rep.tear, None);
        assert_eq!(wal.records(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_a_dir_with_history() {
        let dir = tmp_dir("notempty");
        {
            let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
            wal.append(&report(0)).unwrap();
        }
        assert!(matches!(Wal::create(WalConfig::new(&dir)), Err(WalError::NotEmpty { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_at_the_threshold() {
        let dir = tmp_dir("rotate");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 256; // a few records per segment
        let rs = reports(30);
        {
            let mut wal = Wal::create(cfg.clone()).unwrap();
            for r in &rs {
                wal.append(r).unwrap();
            }
            assert!(wal.segment_index() >= 2, "256-byte segments must rotate");
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        assert_eq!(segs, (0..segs.len() as u64).collect::<Vec<_>>(), "contiguous indices");
        // Every sealed segment respects the threshold + one record slop.
        for &idx in &segs[..segs.len() - 1] {
            let len = std::fs::metadata(segment_path(&dir, idx)).unwrap().len();
            assert!(len >= cfg.segment_bytes, "sealed segment {idx} under threshold: {len}");
        }
        let (_, recovered, rep) = Wal::open(cfg).unwrap();
        assert_eq!(recovered, rs);
        assert_eq!(rep.segments as usize, segs.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_continue_across_recovery() {
        let dir = tmp_dir("continue");
        let rs = reports(12);
        {
            let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
            for r in &rs[..7] {
                wal.append(r).unwrap();
            }
        }
        {
            let (mut wal, recovered, _) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert_eq!(recovered.len(), 7);
            for r in &rs[7..] {
                wal.append(r).unwrap();
            }
        }
        let (_, recovered, rep) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(recovered, rs);
        assert_eq!(rep.tear, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_byte_truncation_recovers_the_durable_prefix() {
        let dir = tmp_dir("anybyte");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 200; // force several segments
        let rs = reports(8);
        let mut wal = Wal::create(cfg.clone()).unwrap();
        // Byte size of the whole log after each append, so any cut
        // point maps to its expected surviving record count.
        let mut ends = Vec::new();
        for r in &rs {
            wal.append(r).unwrap();
            ends.push(log_bytes(&dir).len() as u64);
        }
        drop(wal);
        let total = *ends.last().unwrap();
        for keep in 0..=total {
            let copy = tmp_dir("anybyte-cut");
            std::fs::create_dir_all(&copy).unwrap();
            for idx in list_segments(&dir).unwrap() {
                std::fs::copy(segment_path(&dir, idx), segment_path(&copy, idx)).unwrap();
            }
            truncate_log_at(&copy, keep);
            let expected = ends.iter().filter(|&&e| e <= keep).count();
            let (_, recovered, rep) = Wal::open(WalConfig::new(&copy)).unwrap();
            assert_eq!(
                recovered.len(),
                expected,
                "cut at byte {keep}/{total}: recovered {} records, expected {expected}",
                recovered.len()
            );
            assert_eq!(&recovered[..], &rs[..expected], "cut at byte {keep}");
            // A tear is reported iff the cut fell mid-record (cut at 0
            // leaves a clean empty segment; records never span
            // segments, so record boundaries are global byte offsets).
            assert_eq!(rep.tear.is_some(), keep != 0 && !ends.contains(&keep), "cut at {keep}");
            // Recovery is idempotent: a second open sees a clean log.
            let (_, again, rep2) = Wal::open(WalConfig::new(&copy)).unwrap();
            assert_eq!(again.len(), expected);
            assert_eq!(rep2.tear, None, "cut at byte {keep}: tear must be gone after truncation");
            std::fs::remove_dir_all(&copy).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_sealed_segment_is_a_typed_error() {
        let dir = tmp_dir("sealedflip");
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 200;
        {
            let mut wal = Wal::create(cfg.clone()).unwrap();
            for r in reports(10) {
                wal.append(&r).unwrap();
            }
            assert!(wal.segment_index() >= 1, "need a sealed segment");
        }
        let sealed = segment_path(&dir, 0);
        let clean = std::fs::read(&sealed).unwrap();
        for at in 0..clean.len() {
            let mut bad = clean.clone();
            bad[at] ^= 0x08;
            std::fs::write(&sealed, &bad).unwrap();
            match Wal::open(cfg.clone()) {
                Err(WalError::CorruptSealed { segment: 0, .. }) => {}
                other => panic!(
                    "flip at sealed byte {at}: want CorruptSealed, got {:?}",
                    other.map(|(_, r, rep)| (r.len(), rep))
                ),
            }
        }
        std::fs::write(&sealed, &clean).unwrap();
        assert!(Wal::open(cfg).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_length_fields_never_panic_or_allocate() {
        let dir = tmp_dir("hostilelen");
        {
            let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
            for r in reports(3) {
                wal.append(&r).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let clean = std::fs::read(&path).unwrap();
        // Inflated / wrapping / max length fields in the FIRST frame of
        // the last (only) segment: each must scan as a torn tail at
        // offset 0 and truncate the whole segment away — never a panic,
        // never an attempt to honour the length.
        for hostile in [u64::MAX, u64::MAX - 23, 1 << 32, (clean.len() as u64) + 1] {
            let mut bad = clean.clone();
            bad[8..16].copy_from_slice(&hostile.to_le_bytes());
            std::fs::write(&path, &bad).unwrap();
            let (_, recovered, rep) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert_eq!(recovered.len(), 0, "length {hostile:#x} must tear at record 0");
            assert_eq!(rep.tear, Some(Tear { segment: 0, offset: 0 }));
            // Restore the log for the next case (the tear truncated it).
            std::fs::write(&path, &clean).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_zero_length_segments_are_valid() {
        let dir = tmp_dir("empty");
        // A log that was created and never appended to: one zero-length
        // segment.
        {
            let _wal = Wal::create(WalConfig::new(&dir)).unwrap();
        }
        let (_, recovered, rep) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(rep.segments, 1);
        assert_eq!(rep.tear, None);
        // Mid-rotation kill: sealed full segment + zero-length successor.
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = WalConfig::new(&dir);
        cfg.segment_bytes = 1; // rotate after every record
        {
            let mut wal = Wal::create(cfg.clone()).unwrap();
            wal.append(&report(0)).unwrap();
            assert_eq!(wal.segment_index(), 1, "rotated");
        }
        assert_eq!(std::fs::metadata(segment_path(&dir, 1)).unwrap().len(), 0);
        let (_, recovered, rep) = Wal::open(cfg).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(rep.segments, 2);
        assert_eq!(rep.tear, None, "an empty trailing segment is not a tear");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_payload_with_valid_checksum_is_a_typed_error() {
        let dir = tmp_dir("malformed");
        std::fs::create_dir_all(&dir).unwrap();
        // An honest frame around a payload that is not a report: the
        // writer was buggy or hostile, not torn — typed error, no
        // truncation, no panic.
        let payload = vec![0xFFu8; 7];
        std::fs::write(segment_path(&dir, 0), frame(&payload)).unwrap();
        assert!(matches!(
            Wal::open(WalConfig::new(&dir)),
            Err(WalError::MalformedRecord { segment: 0, offset: 0, .. })
        ));
        // A hostile tag count that passes the checksum but promises
        // more elements than the payload could hold must be rejected
        // by the plausibility bound, not allocated.
        let mut p = Vec::new();
        put_str(&mut p, "id");
        put_u32(&mut p, 1); // created_day
        put_u32(&mut p, u32::MAX); // tag count
        std::fs::write(segment_path(&dir, 0), frame(&p)).unwrap();
        assert!(matches!(
            Wal::open(WalConfig::new(&dir)),
            Err(WalError::MalformedRecord { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_is_read_only() {
        let dir = tmp_dir("scan");
        let rs = reports(6);
        {
            let mut wal = Wal::create(WalConfig::new(&dir)).unwrap();
            for r in &rs {
                wal.append(r).unwrap();
            }
        }
        // Tear the tail by hand.
        let path = segment_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (records, rep) = scan(&dir).unwrap();
        assert_eq!(records.len(), 5);
        assert!(rep.tear.is_some());
        // The file was not touched: a second scan sees the same tear.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len - 3);
        let (_, rep2) = scan(&dir).unwrap();
        assert_eq!(rep.tear, rep2.tear);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policies_accept_appends() {
        for policy in [FsyncPolicy::Always, FsyncPolicy::EveryN(4), FsyncPolicy::OnTick] {
            let dir = tmp_dir("policy");
            let mut cfg = WalConfig::new(&dir);
            cfg.fsync = policy;
            let mut wal = Wal::create(cfg.clone()).unwrap();
            for r in reports(9) {
                wal.append(&r).unwrap();
            }
            wal.sync().unwrap();
            drop(wal);
            let (_, recovered, _) = Wal::open(cfg).unwrap();
            assert_eq!(recovered.len(), 9, "{policy:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn segment_names_parse_and_ignore_strangers() {
        assert_eq!(parse_segment_name("wal-00000000.twl"), Some(0));
        assert_eq!(parse_segment_name("wal-000000ff.twl"), Some(255));
        assert_eq!(parse_segment_name("wal-ff.twl"), None);
        assert_eq!(parse_segment_name("checkpoint.tsc"), None);
        assert_eq!(parse_segment_name("wal-00000000.twl.tmp"), None);
        let dir = tmp_dir("strangers");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bundle.tsb"), b"not a segment").unwrap();
        let (records, rep) = scan(&dir).unwrap();
        assert!(records.is_empty());
        assert_eq!(rep.segments, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
