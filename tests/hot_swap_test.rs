//! Live re-freeze + zero-downtime hot swap under concurrent load —
//! the serving half of the PR 9 acceptance gate.
//!
//! One growing [`StreamRuntime`] is frozen twice at different points
//! (`ServeBundle::refreeze`), producing two genuinely different
//! bundles. A [`ServeRuntime`] starts on the first, and two installs
//! of the second land *while worker threads are handling queries*.
//! The drill then proves the three swap invariants:
//!
//! * **pinning** — every response is stamped with exactly one
//!   generation, and its ranking is bitwise what a fresh runtime over
//!   that generation's bundle produces for the same query: the ranking
//!   is a pure function of `(generation, query)`, never a blend of
//!   old graph and new weights;
//! * **zero downtime** — a free-running thread hammers the runtime
//!   across both swap boundaries without ever seeing a failure or a
//!   generation it can't explain;
//! * **accounting** — the serve counter tree
//!   (`issued == admitted + rejected`, `admitted == completed +
//!   failed`) and the per-generation completion ledger
//!   (`Σ generation_stats == completed`) reconcile *exactly* across
//!   ≥ 2 swaps, including completions on retired generations.
//!
//! Everything lives in one `#[test]` because the serve counters are
//! process-global.

use std::sync::{Arc, Barrier, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;

use trail::attribute::GnnEvalConfig;
use trail::longitudinal::StudyConfig;
use trail::stream::{AsofPolicy, StreamConfig, StreamRuntime};
use trail::system::TrailSystem;
use trail_gnn::{FineTune, TrainConfig};
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{CircuitBreaker, OsintClient, World, WorldConfig, DAYS_PER_MONTH};
use trail_serve::{
    loadgen, LoadMix, Outcome, Query, QueryLimits, RuntimeConfig, ServeBundle, ServeRuntime,
};

const WORLD_SEED: u64 = 123;
const RNG_SEED: u64 = 7;
const WORKERS: usize = 4;
const PHASES: usize = 3;
const PER_PHASE: usize = 32;

/// Serialize against the process-global `trail_obs` registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    trail_obs::set_enabled(true);
    trail_obs::reset();
    g
}

fn study_cfg() -> StudyConfig {
    StudyConfig {
        months: 2,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 12,
            train: TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
        fine_tune: FineTune { lr: 0.01, epochs: 3 },
    }
}

/// A streaming runtime over the tiny world plus its report schedule.
fn stream_runtime() -> (StreamRuntime, Vec<trail_ioc::report::RawReport>) {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(WORLD_SEED))));
    let cutoff = client.world().config.cutoff_day;
    let horizon = client.world().config.horizon_day();
    let schedule = client.stream_reports(cutoff, horizon);
    let sys = TrailSystem::build(client, cutoff);
    let cfg = StreamConfig {
        study: study_cfg(),
        asof: AsofPolicy::WindowEnd { origin: cutoff, stride: DAYS_PER_MONTH },
        tick_every: Some(4),
        budget_us: u64::MAX,
    };
    (StreamRuntime::new(StdRng::seed_from_u64(RNG_SEED), sys, cfg), schedule)
}

fn serve_runtime(bundle: &Arc<ServeBundle>) -> ServeRuntime {
    ServeRuntime::new(
        Arc::clone(bundle),
        Arc::new(CircuitBreaker::default()),
        RuntimeConfig { replicas: 8, limits: QueryLimits::default() },
    )
}

/// The bitwise-expected outcome of every query against one bundle,
/// computed sequentially on a throwaway runtime.
fn expected_outcomes(bundle: &Arc<ServeBundle>, queries: &[Query]) -> Vec<Outcome> {
    let rt = serve_runtime(bundle);
    queries.iter().map(|q| rt.handle(q).outcome).collect()
}

#[test]
fn hot_swap_under_concurrent_load_is_pinned_deterministic_and_reconciled() {
    let _g = obs_lock();

    // Grow one stream, freezing it mid-flight and again at the end —
    // the live refreeze path, not a from-scratch retrain.
    let (mut rt, schedule) = stream_runtime();
    let half = schedule.len() / 2;
    rt.push_batch(&schedule[..half]);
    let bundle_a = Arc::new(ServeBundle::refreeze(&mut rt).expect("refreeze A"));
    rt.push_batch(&schedule[half..]);
    rt.finish();
    let bundle_b = ServeBundle::refreeze(&mut rt).expect("refreeze B");
    assert_ne!(
        bundle_a.to_bytes(),
        bundle_b.to_bytes(),
        "the stream grew between freezes; the bundles must differ"
    );
    // The refrozen bundle survives the wire format bit for bit, so the
    // install path can serve a disk-loaded copy.
    let bundle_b = Arc::new(ServeBundle::from_bytes(&bundle_b.to_bytes()).expect("round-trip"));

    // Query mix drawn from bundle A's graph: every IOC is known to A,
    // and the stream only ever grows the TKG, so known to B too. No
    // unknowns/poison — any Failed or Rejected below is a real bug.
    let runtime = serve_runtime(&bundle_a);
    let mix = LoadMix {
        queries: PHASES * PER_PHASE,
        iocs_per_query: 4,
        unknown_fraction: 0.0,
        poison_fraction: 0.0,
        seed: 0x5e12_e5,
    };
    let queries = loadgen::generate(&runtime, &mix);
    assert_eq!(queries.len(), PHASES * PER_PHASE);

    // Ground truth per bundle, before the counter snapshot so the
    // throwaway runtimes stay out of the reconciliation below.
    let expected_a = expected_outcomes(&bundle_a, &queries);
    let expected_b = expected_outcomes(&bundle_b, &queries);
    assert_ne!(expected_a, expected_b, "different bundles must rank differently somewhere");
    let expect_for = |generation: u64, idx: usize| -> &Outcome {
        if generation == 0 {
            &expected_a[idx]
        } else {
            &expected_b[idx]
        }
    };

    let before = trail_obs::snapshot();

    // Phase barriers make generation coverage deterministic: phase 0
    // runs wholly on gen 0, a swap lands, phase 1 wholly on gen 1,
    // another swap, phase 2 on gen 2. A free-running thread (no
    // barriers) additionally drives traffic *through* both swap
    // boundaries.
    let ready = Barrier::new(WORKERS + 1);
    let resume = Barrier::new(WORKERS + 1);
    let mut phased: Vec<(usize, trail_serve::Response)> = Vec::new();
    let mut free: Vec<(usize, trail_serve::Response)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let runtime = &runtime;
            let queries = &queries;
            let ready = &ready;
            let resume = &resume;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                let per_worker = PER_PHASE / WORKERS;
                for p in 0..PHASES {
                    let lo = p * PER_PHASE + w * per_worker;
                    for idx in lo..lo + per_worker {
                        out.push((idx, runtime.handle(&queries[idx])));
                    }
                    ready.wait();
                    resume.wait();
                }
                out
            }));
        }
        let free_handle = s.spawn(|| {
            let mut out = Vec::new();
            for _ in 0..2 {
                for (idx, q) in queries.iter().enumerate() {
                    out.push((idx, runtime.handle(q)));
                }
            }
            out
        });
        for p in 0..PHASES {
            ready.wait();
            if p + 1 < PHASES {
                let gen = runtime.install(Arc::clone(&bundle_b));
                assert_eq!(gen, p as u64 + 1, "installs are numbered monotonically");
            }
            resume.wait();
        }
        for h in handles {
            phased.extend(h.join().expect("worker"));
        }
        free.extend(free_handle.join().expect("free-runner"));
    });

    // Pinning + purity: each phased response ran wholly inside one
    // swap epoch, so its generation is known a priori...
    assert_eq!(phased.len(), PHASES * PER_PHASE);
    for (idx, resp) in &phased {
        let phase = idx / PER_PHASE;
        let want_gen = if phase == 0 { 0 } else { phase as u64 };
        assert_eq!(resp.generation, want_gen, "query {idx} of phase {phase}");
        assert_eq!(&resp.outcome, expect_for(resp.generation, *idx), "query {idx}");
    }
    // ...while the free-runner's epoch is whatever the race produced —
    // but the stamped generation must fully explain the ranking.
    for (idx, resp) in &free {
        assert!(resp.generation <= 2, "impossible generation {}", resp.generation);
        assert_eq!(
            &resp.outcome,
            expect_for(resp.generation, *idx),
            "free-running query {idx} on generation {}: ranking is not a pure \
             function of (generation, query)",
            resp.generation
        );
    }

    // Accounting: the counter tree reconciles exactly across both
    // swaps, with zero losses — nothing was shed or failed while the
    // bundle slot flipped under live traffic.
    let total = (phased.len() + free.len()) as u64;
    let d = trail_obs::snapshot().delta_since(&before);
    assert_eq!(d.counter("serve.issued"), total);
    assert_eq!(d.counter("serve.rejected"), 0, "swap must not shed traffic");
    assert_eq!(d.counter("serve.failed"), 0);
    assert_eq!(
        d.counter("serve.issued"),
        d.counter("serve.admitted") + d.counter("serve.rejected")
    );
    assert_eq!(
        d.counter("serve.admitted"),
        d.counter("serve.completed") + d.counter("serve.failed")
    );
    assert_eq!(d.counter("serve.swaps"), 2);
    assert_eq!(runtime.generation(), 2);

    // Per-generation ledger: retired generation 0 keeps its count, and
    // the splits sum to the global completion counter exactly.
    let stats = runtime.generation_stats();
    assert_eq!(stats.iter().map(|(g, _)| *g).collect::<Vec<_>>(), vec![0, 1, 2]);
    let per_gen: u64 = stats.iter().map(|(_, n)| *n).sum();
    assert_eq!(per_gen, d.counter("serve.completed"));
    assert!(stats[0].1 >= PER_PHASE as u64, "phase 0 completed on generation 0");
    assert!(stats[2].1 >= PER_PHASE as u64, "phase 2 completed on generation 2");

    // And the slot now serves B: a fresh pin sees the new bundle.
    assert_eq!(runtime.bundle().to_bytes(), bundle_b.to_bytes());
}
