//! Dataset reports (paper Section V): Table II statistics live on
//! [`Tkg::stats_table`]; this module adds the Fig. 4 reuse histogram,
//! the connected-component / diameter analysis, and the Fig. 3 ego-net
//! summary.

use trail_graph::algo::{connected_components, diameter_double_sweep, ego_net};
use trail_graph::{Csr, NodeId, NodeKind};

use crate::tkg::Tkg;

/// Fig. 4 data: for each IOC kind, a map from reuse count (number of
/// events an IOC appeared in) to how many IOCs had that count.
#[derive(Debug, Clone)]
pub struct ReuseHistogram {
    /// Buckets per kind, indexed by [`NodeKind::index`] (events/ASNs
    /// unused). Key = reuse count, value = #IOCs.
    pub buckets: [std::collections::BTreeMap<usize, usize>; 5],
}

impl ReuseHistogram {
    /// Compute over the first-order IOCs of a TKG.
    pub fn compute(tkg: &Tkg) -> Self {
        let mut buckets: [std::collections::BTreeMap<usize, usize>; 5] = Default::default();
        for (id, rec) in tkg.graph.iter_nodes() {
            if !rec.first_order() {
                continue;
            }
            let reuse = tkg.reuse_count(id);
            if reuse > 0 {
                *buckets[rec.kind.index()].entry(reuse).or_insert(0) += 1;
            }
        }
        Self { buckets }
    }

    /// Render as an aligned text table (reuse count rows, kind columns).
    pub fn render(&self) -> String {
        let kinds = [NodeKind::Ip, NodeKind::Url, NodeKind::Domain];
        let max_reuse = self
            .buckets
            .iter()
            .flat_map(|b| b.keys().copied())
            .max()
            .unwrap_or(0);
        let mut out = format!("{:>8} | {:>9} {:>9} {:>9}\n", "Reuse", "IPs", "URLs", "Domains");
        let mut row_keys: Vec<usize> = (1..=max_reuse.min(9)).collect();
        if max_reuse > 9 {
            row_keys.push(usize::MAX); // the "10+" bucket
        }
        for key in row_keys {
            let label = if key == usize::MAX { "10+".to_owned() } else { key.to_string() };
            out.push_str(&format!("{label:>8} |"));
            for kind in kinds {
                let count: usize = if key == usize::MAX {
                    self.buckets[kind.index()]
                        .iter()
                        .filter(|&(&k, _)| k >= 10)
                        .map(|(_, &v)| v)
                        .sum()
                } else {
                    self.buckets[kind.index()].get(&key).copied().unwrap_or(0)
                };
                out.push_str(&format!("{count:>10}"));
            }
            out.push('\n');
        }
        out
    }

    /// Mean reuse per kind (the Table II "Avg. Reuse" column).
    pub fn mean_reuse(&self, kind: NodeKind) -> f64 {
        let b = &self.buckets[kind.index()];
        let total: usize = b.values().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = b.iter().map(|(&k, &v)| k * v).sum();
        weighted as f64 / total as f64
    }
}

/// Section V graph statistics: component structure and diameter of the
/// full TKG vs the first-order-only subgraph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of connected components.
    pub components: usize,
    /// Fraction of nodes in the largest component.
    pub largest_fraction: f64,
    /// Double-sweep diameter estimate of the largest component.
    pub diameter: u32,
    /// Share of event nodes within 2 hops of another event node.
    pub events_within_2_hops: f64,
}

/// Compute Section V statistics for a graph.
pub fn graph_stats(tkg: &Tkg, csr: &Csr) -> GraphStats {
    let cc = connected_components(csr);
    let diameter = if cc.largest() > 1 {
        let seed = cc
            .assignment
            .iter()
            .position(|&c| c == 0)
            .map(NodeId::from)
            .unwrap_or(NodeId(0));
        diameter_double_sweep(csr, seed, 6)
    } else {
        0
    };
    // "85% of event nodes are two hops away from another event node".
    let mut within = 0usize;
    let mut total = 0usize;
    for info in &tkg.events {
        total += 1;
        let mut found = false;
        'outer: for &ioc in csr.neighbors(info.node) {
            for &other in csr.neighbors(ioc) {
                if other != info.node && matches!(tkg.graph.node(other).kind, NodeKind::Event) {
                    found = true;
                    break 'outer;
                }
            }
        }
        if found {
            within += 1;
        }
    }
    GraphStats {
        components: cc.count(),
        largest_fraction: cc.largest_fraction(),
        diameter,
        events_within_2_hops: if total > 0 { within as f64 / total as f64 } else { 0.0 },
    }
}

/// The first-order subgraph (events + first-order IOCs only), for the
/// paper's enrichment-value comparison.
pub fn first_order_subgraph(tkg: &Tkg) -> trail_graph::GraphStore {
    let (sub, _) = tkg
        .graph
        .subgraph(|_, rec| rec.first_order() || rec.kind == NodeKind::Event);
    sub
}

/// Fig. 3-style ego-net summary of one event: per-kind counts at the
/// given radius.
pub fn egonet_summary(tkg: &Tkg, csr: &Csr, event: NodeId, radius: u32) -> [usize; 5] {
    let net = ego_net(&tkg.graph, csr, event, radius);
    net.kind_counts(&tkg.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TrailSystem;
    use std::sync::Arc;
    use trail_osint::{OsintClient, World, WorldConfig};

    fn sys() -> TrailSystem {
        let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(91))));
        let cutoff = client.world().config.cutoff_day;
        TrailSystem::build(client, cutoff)
    }

    #[test]
    fn reuse_histogram_has_heavy_tail() {
        let s = sys();
        let hist = ReuseHistogram::compute(&s.tkg);
        // Reuse of 1 dominates, but multi-event reuse exists.
        let singles: usize = hist.buckets.iter().filter_map(|b| b.get(&1)).sum();
        let multis: usize = hist
            .buckets
            .iter()
            .flat_map(|b| b.iter().filter(|&(&k, _)| k > 1).map(|(_, &v)| v))
            .sum();
        assert!(singles > 0 && multis > 0, "singles={singles} multis={multis}");
        let rendered = hist.render();
        assert!(rendered.contains("Reuse"));
    }

    #[test]
    fn graph_stats_shape_matches_paper_claims() {
        let s = sys();
        let csr = s.tkg.csr();
        let stats = graph_stats(&s.tkg, &csr);
        // A dominant connected component exists...
        assert!(stats.largest_fraction > 0.5, "{stats:?}");
        // ...and most events are 2 hops from another event.
        assert!(stats.events_within_2_hops > 0.5, "{stats:?}");
        assert!(stats.diameter >= 2);
    }

    #[test]
    fn first_order_subgraph_has_more_components() {
        let s = sys();
        let full_csr = s.tkg.csr();
        let full = connected_components(&full_csr).count();
        let sub = first_order_subgraph(&s.tkg);
        let sub_cc = connected_components(&Csr::from_store(&sub)).count();
        // Dropping enrichment-only nodes can only fragment the graph
        // (relative to its node count).
        assert!(sub.node_count() < s.tkg.graph.node_count());
        assert!(sub_cc as f64 / sub.node_count() as f64 >= full as f64 / s.tkg.graph.node_count() as f64);
    }

    #[test]
    fn egonet_summary_counts_kinds() {
        let s = sys();
        let csr = s.tkg.csr();
        let event = s.tkg.events[0].node;
        let counts = egonet_summary(&s.tkg, &csr, event, 2);
        assert_eq!(counts[NodeKind::Event.index()] >= 1, true);
        let iocs: usize = counts[1..4].iter().sum();
        assert!(iocs > 0);
    }
}
