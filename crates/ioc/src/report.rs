//! The raw incident-report format the pipeline ingests.
//!
//! This mirrors the shape of an OTX "pulse": an id, a creation date, a
//! set of APT tags, and a list of typed indicators. The TRAIL collector
//! (Section IV-A) filters reports whose tags map to more than one APT
//! and parses the rest.

use serde::{Deserialize, Serialize};

use crate::json::{self, JsonValue};
use crate::types::{Ioc, IocKind};

/// One indicator entry in a raw report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawIndicator {
    /// Declared type: `"IPv4"`, `"IPv6"`, `"URL"`, `"domain"`,
    /// `"hostname"` (OTX vocabulary; case-insensitive).
    #[serde(rename = "type")]
    pub indicator_type: String,
    /// The indicator text, possibly defanged.
    pub indicator: String,
}

/// A raw incident report as fetched from the intelligence exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawReport {
    /// Provider-assigned report id.
    pub id: String,
    /// Day index the report was created (days since epoch of the feed).
    pub created_day: u32,
    /// Free-form APT tags attached by the reporting analyst.
    pub tags: Vec<String>,
    /// The indicators listed in the report.
    pub indicators: Vec<RawIndicator>,
}

/// A parsed report: validated IOCs plus parse failures kept for audit.
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// Report id.
    pub id: String,
    /// Creation day index.
    pub created_day: u32,
    /// APT tags (unresolved; alias mapping happens in the collector).
    pub tags: Vec<String>,
    /// Successfully parsed IOCs, deduplicated, in first-seen order.
    pub iocs: Vec<Ioc>,
    /// Indicators that failed validation (the paper's "junk URLs").
    pub rejected: Vec<(String, String)>,
}

fn required_str(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn string_array(v: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(items) => items
            .as_array()
            .ok_or_else(|| format!("field {key:?} is not an array"))?
            .iter()
            .map(|t| t.as_str().map(str::to_owned).ok_or_else(|| format!("non-string in {key:?}")))
            .collect(),
    }
}

impl RawReport {
    /// Parse from JSON text (self-contained parser — works without any
    /// external JSON crate).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("bad report JSON: {e}"))?;
        let id = required_str(&doc, "id")?;
        let created_day = doc
            .get("created_day")
            .and_then(JsonValue::as_u32)
            .ok_or("missing or non-numeric field \"created_day\"")?;
        let tags = string_array(&doc, "tags")?;
        let mut indicators = Vec::new();
        if let Some(items) = doc.get("indicators") {
            let items = items.as_array().ok_or("field \"indicators\" is not an array")?;
            for item in items {
                indicators.push(RawIndicator {
                    indicator_type: required_str(item, "type")?,
                    indicator: required_str(item, "indicator")?,
                });
            }
        }
        Ok(Self { id, created_day, tags, indicators })
    }

    /// Serialise to compact JSON text ([`Self::from_json`]'s inverse).
    pub fn to_json(&self) -> String {
        let indicators = self
            .indicators
            .iter()
            .map(|i| {
                JsonValue::Object(vec![
                    ("type".to_owned(), JsonValue::String(i.indicator_type.clone())),
                    ("indicator".to_owned(), JsonValue::String(i.indicator.clone())),
                ])
            })
            .collect();
        let tags = self.tags.iter().cloned().map(JsonValue::String).collect();
        json::to_string(&JsonValue::Object(vec![
            ("id".to_owned(), JsonValue::String(self.id.clone())),
            ("created_day".to_owned(), JsonValue::Number(self.created_day as f64)),
            ("tags".to_owned(), JsonValue::Array(tags)),
            ("indicators".to_owned(), JsonValue::Array(indicators)),
        ]))
    }

    /// Validate and deduplicate every indicator.
    pub fn parse(&self) -> ParsedReport {
        let mut iocs = Vec::with_capacity(self.indicators.len());
        let mut seen = std::collections::HashSet::new();
        let mut rejected = Vec::new();
        for ind in &self.indicators {
            let kind = match declared_kind(&ind.indicator_type) {
                Some(k) => k,
                None => {
                    rejected.push((ind.indicator.clone(), format!("unknown type {:?}", ind.indicator_type)));
                    continue;
                }
            };
            match Ioc::parse_as(kind, &ind.indicator) {
                Ok(ioc) => {
                    if seen.insert((ioc.kind(), ioc.text().to_owned())) {
                        iocs.push(ioc);
                    }
                }
                Err(e) => rejected.push((ind.indicator.clone(), e.to_string())),
            }
        }
        ParsedReport {
            id: self.id.clone(),
            created_day: self.created_day,
            tags: self.tags.clone(),
            iocs,
            rejected,
        }
    }
}

// ---------------------------------------------------------------------------
// MISP event format
// ---------------------------------------------------------------------------

/// A MISP attribute (the second feed format TRAIL understands — the
/// paper: "TRAIL could easily be extended to parse the responses from
/// other data providers", and OTX itself "aggregates many existing
/// MISP feeds").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MispAttribute {
    /// MISP attribute type, e.g. `ip-dst`, `url`, `domain`.
    #[serde(rename = "type")]
    pub attr_type: String,
    /// The attribute value.
    pub value: String,
}

/// A MISP event wrapper (`{"Event": {...}}`) reduced to the fields the
/// collector needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MispEvent {
    /// Event UUID.
    pub uuid: String,
    /// Event info line — used as a tag source alongside `Tag`.
    pub info: String,
    /// Days since the feed epoch.
    #[serde(default)]
    pub date_day: u32,
    /// Galaxy/taxonomy tags, e.g. `misp-galaxy:threat-actor="Sofacy"`.
    #[serde(default)]
    pub tags: Vec<String>,
    /// The attributes.
    #[serde(default, rename = "Attribute")]
    pub attributes: Vec<MispAttribute>,
}

impl MispEvent {
    /// Parse from JSON text (accepts both bare events and the
    /// `{"Event": ...}` wrapper MISP exports use).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text).map_err(|e| format!("bad MISP JSON: {e}"))?;
        let event = doc.get("Event").unwrap_or(&doc);
        let uuid = required_str(event, "uuid")?;
        let info = required_str(event, "info")?;
        let date_day = event.get("date_day").and_then(JsonValue::as_u32).unwrap_or(0);
        let tags = string_array(event, "tags")?;
        let mut attributes = Vec::new();
        if let Some(items) = event.get("Attribute") {
            let items = items.as_array().ok_or("field \"Attribute\" is not an array")?;
            for item in items {
                attributes.push(MispAttribute {
                    attr_type: required_str(item, "type")?,
                    value: required_str(item, "value")?,
                });
            }
        }
        Ok(Self { uuid, info, date_day, tags, attributes })
    }

    /// Convert to the canonical [`RawReport`] the pipeline ingests.
    /// Galaxy tags are reduced to their quoted value
    /// (`misp-galaxy:threat-actor="Sofacy"` → `Sofacy`).
    pub fn into_raw_report(self) -> RawReport {
        let indicators = self
            .attributes
            .into_iter()
            .filter_map(|a| {
                let t = match a.attr_type.as_str() {
                    "ip-dst" | "ip-src" | "ip" => "IPv4",
                    "url" | "uri" => "URL",
                    "domain" | "hostname" | "domain|ip" => "domain",
                    _ => return None,
                };
                // `domain|ip` composite attributes carry both values.
                let value = a.value.split('|').next().unwrap_or(&a.value).to_owned();
                Some(RawIndicator { indicator_type: t.to_owned(), indicator: value })
            })
            .collect();
        let tags = self
            .tags
            .iter()
            .map(|t| match t.split_once('=') {
                Some((_, v)) => v.trim_matches('"').to_owned(),
                None => t.clone(),
            })
            .collect();
        RawReport { id: self.uuid, created_day: self.date_day, tags, indicators }
    }
}

/// Map an OTX-style indicator type string to an IOC kind.
pub fn declared_kind(s: &str) -> Option<IocKind> {
    match s.to_ascii_lowercase().as_str() {
        "ipv4" | "ipv6" | "ip" => Some(IocKind::Ip),
        "url" | "uri" => Some(IocKind::Url),
        "domain" | "hostname" => Some(IocKind::Domain),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "id": "pulse-001",
        "created_day": 2900,
        "tags": ["APT28", "sofacy"],
        "indicators": [
            {"type": "IPv4", "indicator": "1.0.36[.]127"},
            {"type": "domain", "indicator": "v5y7s3[.]l2twn2[.]club"},
            {"type": "URL", "indicator": "hxxp://sfj54f7[.]17ti3sk[.]club/?H3%2540ba&d"},
            {"type": "URL", "indicator": "javascript:void(0)"},
            {"type": "FileHash-SHA256", "indicator": "deadbeef"},
            {"type": "IPv4", "indicator": "1.0.36.127"}
        ]
    }"#;

    #[test]
    fn parses_and_filters_sample() {
        let raw = RawReport::from_json(SAMPLE).unwrap();
        let parsed = raw.parse();
        assert_eq!(parsed.id, "pulse-001");
        // 4 valid entries but the duplicate IP collapses to 3.
        assert_eq!(parsed.iocs.len(), 3);
        // The javascript snippet and the file hash are rejected.
        assert_eq!(parsed.rejected.len(), 2);
        assert_eq!(parsed.iocs[0].text(), "1.0.36.127");
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(RawReport::from_json("{not json").is_err());
    }

    #[test]
    fn declared_kind_vocabulary() {
        assert_eq!(declared_kind("IPv4"), Some(IocKind::Ip));
        assert_eq!(declared_kind("hostname"), Some(IocKind::Domain));
        assert_eq!(declared_kind("URI"), Some(IocKind::Url));
        assert_eq!(declared_kind("FileHash-MD5"), None);
    }

    const MISP_SAMPLE: &str = r#"{
        "Event": {
            "uuid": "5f6e-misp-001",
            "info": "Sofacy spearphishing wave",
            "date_day": 2901,
            "tags": ["misp-galaxy:threat-actor=\"Sofacy\"", "tlp:white"],
            "Attribute": [
                {"type": "ip-dst", "value": "198.51.100.7"},
                {"type": "url", "value": "http://evil.example/drop.php"},
                {"type": "domain|ip", "value": "evil.example|198.51.100.7"},
                {"type": "sha256", "value": "aabbcc"}
            ]
        }
    }"#;

    #[test]
    fn misp_event_converts_to_raw_report() {
        let ev = MispEvent::from_json(MISP_SAMPLE).unwrap();
        assert_eq!(ev.uuid, "5f6e-misp-001");
        let raw = ev.into_raw_report();
        assert_eq!(raw.id, "5f6e-misp-001");
        assert_eq!(raw.created_day, 2901);
        // Galaxy tag reduced to its quoted value; tlp tag passes through.
        assert!(raw.tags.contains(&"Sofacy".to_owned()));
        // sha256 dropped; domain|ip keeps the domain half.
        assert_eq!(raw.indicators.len(), 3);
        assert!(raw
            .indicators
            .iter()
            .any(|i| i.indicator_type == "domain" && i.indicator == "evil.example"));
        // And the converted report parses cleanly end to end.
        let parsed = raw.parse();
        assert_eq!(parsed.iocs.len(), 3);
        assert!(parsed.rejected.is_empty());
    }

    #[test]
    fn misp_accepts_bare_event_json() {
        let bare = r#"{"uuid": "x", "info": "t", "Attribute": []}"#;
        let ev = MispEvent::from_json(bare).unwrap();
        assert_eq!(ev.uuid, "x");
        assert_eq!(ev.date_day, 0);
    }

    #[test]
    fn json_roundtrip() {
        let raw = RawReport::from_json(SAMPLE).unwrap();
        let encoded = raw.to_json();
        let again = RawReport::from_json(&encoded).unwrap();
        assert_eq!(raw, again);
    }
}
