//! Standard scaling fitted on the training split (paper Section VI-A:
//! "Using the training set as a basis, we find the mean and standard
//! deviation, and rescale all of the data").

use serde::{Deserialize, Serialize};
use trail_linalg::{stats, Matrix};

/// Per-column standardiser: `x' = (x - mean) / std`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    /// Fit on a training matrix. Constant columns get std 1 so they map
    /// to zero instead of exploding.
    pub fn fit(x: &Matrix) -> Self {
        let means = stats::col_means(x);
        let mut stds = stats::col_stds(x, &means);
        for s in &mut stds {
            if *s < 1e-8 {
                *s = 1.0;
            }
        }
        Self { means, stds }
    }

    /// Transform a matrix in place.
    pub fn transform_inplace(&self, x: &mut Matrix) {
        assert_eq!(x.cols(), self.means.len());
        let cols = x.cols();
        for row in x.as_mut_slice().chunks_exact_mut(cols) {
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Transform into a new matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.transform_inplace(&mut out);
        out
    }

    /// Fit and transform in one step.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let scaler = Self::fit(x);
        let out = scaler.transform(x);
        (scaler, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_columns_are_standardised() {
        let x = Matrix::from_vec(4, 2, vec![1.0, 5.0, 2.0, 5.0, 3.0, 5.0, 4.0, 5.0]).unwrap();
        let (_, t) = StandardScaler::fit_transform(&x);
        let means = stats::col_means(&t);
        let stds = stats::col_stds(&t, &means);
        assert!(means[0].abs() < 1e-6);
        assert!((stds[0] - 1.0).abs() < 1e-5);
        // Constant column maps to zero, not NaN.
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(t[(0, 1)], 0.0);
    }

    #[test]
    fn train_statistics_apply_to_test() {
        let train = Matrix::from_vec(2, 1, vec![0.0, 2.0]).unwrap();
        let scaler = StandardScaler::fit(&train);
        let test = Matrix::from_vec(1, 1, vec![4.0]).unwrap();
        let t = scaler.transform(&test);
        // mean 1, std 1 -> (4-1)/1 = 3.
        assert!((t[(0, 0)] - 3.0).abs() < 1e-6);
    }
}
