//! Offline stand-in for `rand` 0.8 covering the surface the workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool,
//! gen_ratio}`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — high
//! quality and fully deterministic, but NOT bit-compatible with
//! upstream `StdRng` (ChaCha12). Every test and experiment in this repo
//! is either RNG-free, self-consistent (compares two runs under the
//! same stub), or statistical, so stream identity with upstream is not
//! required — determinism under a fixed seed is.

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by `Rng::gen()` (upstream: `Standard: Distribution<T>`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-type uniform sampling over `[lo, hi)` / `[lo, hi]` (upstream:
/// `SampleUniform`).
pub trait SampleUniform: Sized + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with `Rng::gen_range`. Mirrors upstream's single
/// generic impl per range type so type inference unifies the range's
/// element type with `gen_range`'s return type early.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling trait, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample_standard(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        debug_assert!(denominator > 0);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding trait; only `seed_from_u64` is used in this repo.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is unreachable from splitmix64, but keep the
            // generator safe under any future direct construction.
            if s == [0; 4] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Process-global generator for `rand::thread_rng()` parity; seeded from
/// the address of a stack local so it varies between runs but needs no
/// OS entropy. Only used if workspace code calls `thread_rng()`.
pub fn thread_rng() -> rngs::StdRng {
    let marker = 0u8;
    <rngs::StdRng as SeedableRng>::seed_from_u64(&marker as *const u8 as u64)
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing (upstream `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
        /// Uniformly choose `amount` elements and move them to the front
        /// (the repo's call sites follow with `truncate(amount)`).
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching upstream's visit order semantics.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&mut self[i])
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let n = amount.min(self.len());
            for i in 0..n {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(n)
        }
    }
}

/// Upstream-compatible module path for `rand::distributions::...`.
pub mod distributions {
    /// Marker used in generic bounds like `Standard: Distribution<T>`.
    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: super::RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T: super::StandardSample> Distribution<T> for Standard {
        fn sample<R: super::RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = rngs::StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
