//! Autoencoder projection and GNN input assembly (paper Section VI-C).
//!
//! URLs, IPs and domains have different widths (1,517 / 507 / 115), so
//! one autoencoder per type projects them into a common 64-dim code
//! space (Eq. 5). The GNN's per-node input is then
//! `[code | node-kind one-hot | visible-label one-hot]`, implementing
//! the paper's protocol where train-fold event labels are visible
//! features and evaluation-fold labels are masked.

use rand::Rng;
use trail_graph::{NodeId, NodeKind};
use trail_ioc::IocKind;
use trail_linalg::Matrix;
use trail_ml::nn::autoencoder::{Autoencoder, AutoencoderConfig};
use trail_ml::nn::Adam;

use crate::sparse::densify;
use crate::tkg::Tkg;

/// Per-node code vectors for every featured IOC node.
pub struct NodeEmbeddings {
    /// Code per graph node (zero rows for nodes without features).
    pub codes: Matrix,
    /// Code width.
    pub code_dim: usize,
}

/// Per-kind feature standardisation fitted directly on the sparse
/// store (zeros included, as densification would produce). Without
/// this, wide-range lexical columns (URL length, ages) dominate the
/// autoencoder's MSE and the codes under-represent the one-hot
/// behavioural blocks.
pub struct SparseScaler {
    means: Vec<f32>,
    inv_stds: Vec<f32>,
}

impl SparseScaler {
    /// Fit over the featured rows of one kind.
    pub fn fit(featured: &[(NodeId, &crate::sparse::SparseVec)], dims: usize) -> Self {
        let n = featured.len().max(1) as f64;
        let mut sums = vec![0.0f64; dims];
        let mut sumsq = vec![0.0f64; dims];
        for (_, sv) in featured {
            for &(i, v) in &sv.entries {
                sums[i as usize] += v as f64;
                sumsq[i as usize] += (v as f64) * (v as f64);
            }
        }
        let means: Vec<f32> = sums.iter().map(|&s| (s / n) as f32).collect();
        let inv_stds: Vec<f32> = sumsq
            .iter()
            .zip(&means)
            .map(|(&sq, &m)| {
                let var = (sq / n) as f32 - m * m;
                if var > 1e-8 {
                    1.0 / var.sqrt()
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, inv_stds }
    }

    /// Standardise a densified batch in place (row-parallel over the
    /// shared pool; per-row arithmetic is unchanged).
    pub fn transform_inplace(&self, x: &mut Matrix) {
        let d = x.cols();
        assert_eq!(d, self.means.len());
        let (means, inv_stds) = (&self.means, &self.inv_stds);
        trail_linalg::pool::parallel_for_rows(x.as_mut_slice(), d, 64, |_, band| {
            for row in band.chunks_exact_mut(d) {
                for ((v, &m), &is) in row.iter_mut().zip(means).zip(inv_stds) {
                    *v = (*v - m) * is;
                }
            }
        });
    }
}

/// Train the three per-type autoencoders and produce node codes.
///
/// Minibatches are densified from the sparse store, so peak memory is
/// `batch x dims` rather than `n x dims`.
pub fn train_autoencoders<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    cfg: &AutoencoderConfig,
) -> (NodeEmbeddings, Vec<Autoencoder>) {
    let mut encoders = Vec::with_capacity(3);
    let mut scalers = Vec::with_capacity(3);
    for kind in IocKind::ALL {
        let dims = Tkg::dims_of(kind);
        let featured = tkg.featured_nodes(kind);
        let scaler = SparseScaler::fit(&featured, dims);
        let mut ae = Autoencoder::new(rng, dims, cfg);
        if !featured.is_empty() {
            train_on_sparse(rng, &mut ae, &scaler, &featured, dims, cfg);
        }
        encoders.push(ae);
        scalers.push(scaler);
    }
    let embeddings = compute_codes_scaled(tkg, &encoders, &scalers, cfg.batch_size);
    (embeddings, encoders)
}

/// [`compute_codes`] with explicit scalers (used right after training).
fn compute_codes_scaled(
    tkg: &Tkg,
    encoders: &[Autoencoder],
    scalers: &[SparseScaler],
    batch_size: usize,
) -> NodeEmbeddings {
    let code_dim = encoders.first().map_or(0, |ae| ae.code_dim());
    let n = tkg.graph.node_count();
    let mut codes = Matrix::zeros(n, code_dim);
    for ((kind, ae), scaler) in IocKind::ALL.iter().zip(encoders).zip(scalers) {
        let dims = Tkg::dims_of(*kind);
        let featured = tkg.featured_nodes(*kind);
        // Batches are independent at inference time, so the
        // densify + scale + encode pipeline fans out across the pool;
        // only the write-back into the interleaved `codes` rows stays
        // sequential.
        let chunks: Vec<&[(NodeId, &crate::sparse::SparseVec)]> =
            featured.chunks(batch_size.max(1)).collect();
        let encoded: Vec<Matrix> = trail_linalg::pool::parallel_map(chunks.len(), |ci| {
            let rows: Vec<&crate::sparse::SparseVec> =
                chunks[ci].iter().map(|&(_, sv)| sv).collect();
            let mut dense = densify(&rows, dims);
            scaler.transform_inplace(&mut dense);
            ae.encode(&dense)
        });
        for (chunk, enc) in chunks.iter().zip(&encoded) {
            for (i, &(node, _)) in chunk.iter().enumerate() {
                codes.row_mut(node.index()).copy_from_slice(enc.row(i));
            }
        }
    }
    NodeEmbeddings { codes, code_dim }
}

/// Encode every featured node with already-trained encoders. Re-run
/// after the TKG grows (monthly updates): new nodes get codes without
/// retraining the autoencoders.
pub fn compute_codes(tkg: &Tkg, encoders: &[Autoencoder], batch_size: usize) -> NodeEmbeddings {
    // Refit the scalers on the current feature store (cheap: one sparse
    // pass) so codes stay consistent as the TKG grows.
    let scalers: Vec<SparseScaler> = IocKind::ALL
        .iter()
        .map(|&kind| SparseScaler::fit(&tkg.featured_nodes(kind), Tkg::dims_of(kind)))
        .collect();
    compute_codes_scaled(tkg, encoders, &scalers, batch_size)
}

/// Minibatch SGD over the sparse store. Batches update shared weights
/// and therefore run in sequence, but the per-batch forward/backward
/// is pool-parallel throughout: `densify`, the scaler, and every
/// matmul inside `train_batch` submit row bands to the shared pool.
fn train_on_sparse<R: Rng + ?Sized>(
    rng: &mut R,
    ae: &mut Autoencoder,
    scaler: &SparseScaler,
    featured: &[(NodeId, &crate::sparse::SparseVec)],
    dims: usize,
    cfg: &AutoencoderConfig,
) {
    use rand::seq::SliceRandom;
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..featured.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let rows: Vec<&crate::sparse::SparseVec> =
                chunk.iter().map(|&i| featured[i].1).collect();
            let mut dense = densify(&rows, dims);
            scaler.transform_inplace(&mut dense);
            ae.train_batch(&dense, &mut adam);
        }
    }
}

/// Width of the assembled GNN input:
/// `code + 5 (node kind) + n_classes (visible label)`.
pub fn gnn_input_dim(code_dim: usize, n_classes: usize) -> usize {
    code_dim + 5 + n_classes
}

/// Assemble the GNN input matrix.
///
/// `visible` lists the event nodes whose labels the model may see
/// (train-fold events per the paper's protocol).
pub fn assemble_gnn_input(
    tkg: &Tkg,
    embeddings: &NodeEmbeddings,
    visible: &[(NodeId, u16)],
) -> Matrix {
    let n = tkg.graph.node_count();
    let k = tkg.n_classes();
    let code = embeddings.code_dim;
    let mut x = Matrix::zeros(n, gnn_input_dim(code, k));
    for (id, rec) in tkg.graph.iter_nodes() {
        let row = x.row_mut(id.index());
        row[..code].copy_from_slice(embeddings.codes.row(id.index()));
        row[code + rec.kind.index()] = 1.0;
    }
    for &(node, label) in visible {
        debug_assert_eq!(tkg.graph.node(node).kind, NodeKind::Event);
        x[(node.index(), code + 5 + label as usize)] = 1.0;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::AptRegistry;
    use crate::sparse::SparseVec;
    use trail_graph::EdgeKind;

    fn tkg_with_features() -> Tkg {
        let mut tkg = Tkg::new(AptRegistry::new(3));
        let e = tkg.graph.upsert_node(NodeKind::Event, "r0");
        let ip = tkg.graph.upsert_node(NodeKind::Ip, "1.1.1.1");
        tkg.graph.add_edge(e, ip, EdgeKind::InReport).unwrap();
        tkg.add_event(e, "r0", 1, 2);
        // Two IPs with *different* features: standardisation maps a
        // lone sample to the zero vector, so variety is required for a
        // non-trivial code.
        let ip2 = tkg.graph.upsert_node(NodeKind::Ip, "2.2.2.2");
        for (node, slot, v) in [(ip, 0usize, 1.0f32), (ip2, 3, 4.0)] {
            let mut dense = vec![0.0f32; Tkg::dims_of(IocKind::Ip)];
            dense[slot] = v;
            dense[506] = 2.5 + v;
            tkg.set_features(node, SparseVec::from_dense(&dense));
        }
        tkg
    }

    #[test]
    fn autoencoders_produce_codes_for_featured_nodes() {
        let tkg = tkg_with_features();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        let cfg = AutoencoderConfig { hidden: 8, code: 4, epochs: 2, batch_size: 4, lr: 1e-3 };
        let (emb, encoders) = train_autoencoders(&mut rng, &tkg, &cfg);
        assert_eq!(encoders.len(), 3);
        assert_eq!(emb.codes.shape(), (3, 4));
        // The event node (no features) stays zero; the IP node does not.
        let ip = tkg.graph.find_node(NodeKind::Ip, "1.1.1.1").unwrap();
        let e = tkg.graph.find_node(NodeKind::Event, "r0").unwrap();
        assert!(emb.codes.row(e.index()).iter().all(|&v| v == 0.0));
        assert!(emb.codes.row(ip.index()).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gnn_input_layout() {
        let tkg = tkg_with_features();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        let cfg = AutoencoderConfig { hidden: 8, code: 4, epochs: 1, batch_size: 4, lr: 1e-3 };
        let (emb, _) = train_autoencoders(&mut rng, &tkg, &cfg);
        let e = tkg.graph.find_node(NodeKind::Event, "r0").unwrap();
        let x = assemble_gnn_input(&tkg, &emb, &[(e, 2)]);
        assert_eq!(x.cols(), gnn_input_dim(4, 3));
        // Kind one-hot: event = index 0 of the kind block.
        assert_eq!(x[(e.index(), 4)], 1.0);
        // Visible label 2 set in the label block.
        assert_eq!(x[(e.index(), 4 + 5 + 2)], 1.0);
        // Masked variant: label block all zero.
        let x_masked = assemble_gnn_input(&tkg, &emb, &[]);
        for c in 0..3 {
            assert_eq!(x_masked[(e.index(), 4 + 5 + c)], 0.0);
        }
    }
}
