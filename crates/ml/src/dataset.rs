//! Feature/label containers and cross-validation splits.

use rand::seq::SliceRandom;
use rand::Rng;
use trail_linalg::Matrix;

/// A labelled dataset: one feature row per sample.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, `n_samples x n_features`.
    pub x: Matrix,
    /// Class label per sample.
    pub y: Vec<u16>,
    /// Number of classes (labels are `0..n_classes`).
    pub n_classes: usize,
}

impl Dataset {
    /// Build a dataset; panics if lengths disagree (construction bug).
    pub fn new(x: Matrix, y: Vec<u16>, n_classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "feature rows != labels");
        debug_assert!(y.iter().all(|&l| (l as usize) < n_classes));
        Self { x, y, n_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes];
        for &l in &self.y {
            counts[l as usize] += 1;
        }
        counts
    }

    /// Gather a row subset into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Self {
        Self {
            x: self.x.gather_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
        }
    }
}

/// Stratified k-fold cross-validation: every fold preserves class
/// proportions (the paper uses stratified 5-fold throughout).
#[derive(Debug, Clone)]
pub struct StratifiedKFold {
    folds: Vec<Vec<usize>>,
}

impl StratifiedKFold {
    /// Split sample indices into `k` stratified folds, shuffled by `rng`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, y: &[u16], n_classes: usize, k: usize) -> Self {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for (i, &l) in y.iter().enumerate() {
            by_class[l as usize].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class_indices in &mut by_class {
            class_indices.shuffle(rng);
            for (j, &i) in class_indices.iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        Self { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// `(train_indices, test_indices)` for fold `f`.
    pub fn split(&self, f: usize) -> (Vec<usize>, Vec<usize>) {
        let test = self.folds[f].clone();
        let train = self
            .folds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != f)
            .flat_map(|(_, fold)| fold.iter().copied())
            .collect();
        (train, test)
    }

    /// Iterate all `(train, test)` splits.
    pub fn splits(&self) -> impl Iterator<Item = (Vec<usize>, Vec<usize>)> + '_ {
        (0..self.k()).map(|f| self.split(f))
    }
}

/// Plain shuffled train/test split with the given test fraction.
pub fn train_test_split<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    test_fraction: f32,
) -> (Vec<usize>, Vec<usize>) {
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let n_test = ((n as f32) * test_fraction).round() as usize;
    let test = indices.split_off(n.saturating_sub(n_test));
    (indices, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy() -> Dataset {
        let x = Matrix::from_fn(10, 2, |r, c| (r * 2 + c) as f32);
        let y = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
        Dataset::new(x, y, 2)
    }

    #[test]
    fn class_counts_and_subset() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![6, 4]);
        let s = d.subset(&[0, 6]);
        assert_eq!(s.y, vec![0, 1]);
        assert_eq!(s.x.row(1), &[12.0, 13.0]);
    }

    #[test]
    fn stratified_folds_preserve_proportions() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let kf = StratifiedKFold::new(&mut rng, &d.y, 2, 2);
        for (train, test) in kf.splits() {
            assert_eq!(train.len() + test.len(), d.len());
            // Each fold has 3 of class 0 and 2 of class 1.
            let c0 = test.iter().filter(|&&i| d.y[i] == 0).count();
            let c1 = test.iter().filter(|&&i| d.y[i] == 1).count();
            assert_eq!((c0, c1), (3, 2));
            // Disjoint.
            let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), d.len());
        }
    }

    #[test]
    fn folds_cover_every_sample_exactly_once() {
        let mut rng = StdRng::seed_from_u64(2);
        let y: Vec<u16> = (0..100).map(|i| (i % 5) as u16).collect();
        let kf = StratifiedKFold::new(&mut rng, &y, 5, 5);
        let mut seen = vec![0; 100];
        for f in 0..kf.k() {
            for &i in &kf.split(f).1 {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn train_test_split_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = train_test_split(&mut rng, 100, 0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }
}
