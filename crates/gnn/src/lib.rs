//! Graph learning over the TRAIL knowledge graph.
//!
//! Implements the paper's Section VI-B/C analysis stack:
//!
//! * [`labelprop`] — label propagation per Eq. 1 (symmetric-normalised
//!   adjacency power iteration from one-hot event labels).
//! * [`sage`] — GraphSAGE (Eq. 3) with mean aggregation including the
//!   self node, per-layer L2 normalisation (Eq. 4), trained full-graph
//!   with cross-entropy on labelled event nodes.
//! * [`train`] — the masked-fold training protocol of Section VII-B,
//!   including the fine-tuning path the longitudinal study uses.
//! * [`sampler`] — capped k-hop neighbourhood extraction for
//!   minibatch-style inference on fresh events.
//! * [`explain`] — GNNExplainer (Ying et al. 2019): a learned edge mask
//!   over the event's k-hop subgraph identifying the most influential
//!   IOCs (Fig. 10).

pub mod explain;
pub mod labelprop;
pub mod sage;
pub mod sampler;
pub mod train;

pub use labelprop::LabelPropagation;
pub use sage::{SageConfig, SageModel};
pub use train::{
    fine_tune, fine_tune_masked, predict_events, train_sage, train_sage_masked,
    train_sage_masked_sampled, FineTune, LabelMasking, TrainConfig,
};
