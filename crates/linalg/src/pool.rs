//! Persistent worker pool shared by every parallel kernel in the
//! workspace.
//!
//! Before this module each threaded routine (`matmul`, random forest,
//! GBT) spawned a fresh scoped-thread region per call with its own
//! hard-coded thread cap. The pool here is spawned once per process,
//! lazily, and hands out chunked index ranges through an atomic work
//! counter, so a full-graph GraphSAGE epoch issues thousands of
//! parallel regions without paying thread start-up costs. Pure `std`:
//! a `Mutex<VecDeque>` + `Condvar` job queue and a per-task latch.
//!
//! Design notes:
//!
//! * **Work claiming.** Each `parallel_for` call publishes one task —
//!   a type-erased closure plus an atomic next-chunk cursor. Helpers
//!   and the calling thread race to claim `[start, end)` chunks, so
//!   load balances dynamically across irregular rows (e.g. CSR rows
//!   with wildly different degrees).
//! * **Caller participation.** The submitting thread always works the
//!   task itself. Even with zero idle workers every chunk is drained,
//!   which also makes nested `parallel_for` calls (a pooled `matmul`
//!   inside a pooled tree fit) deadlock-free: a worker that submits a
//!   sub-task drains it on its own if no peer is idle — `Task::run`
//!   never blocks.
//! * **Completion.** The task counts outstanding chunks; the thread
//!   finishing the last chunk opens a latch the caller blocks on.
//!   When the caller returns, no thread holds a reference into its
//!   stack frame, which is what makes the lifetime erasure below
//!   sound.
//! * **Thread policy.** [`num_threads`] honours a `TRAIL_THREADS`
//!   environment override and otherwise uses all available cores —
//!   the historical `.min(8)` cap silently wasted larger machines.
//!   Explicit `_limit` variants let tests pin a region to 1/2/8
//!   threads regardless of the environment.

use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Average chunks handed to each participating thread; >1 keeps
/// threads busy when per-chunk cost is irregular.
const CHUNKS_PER_THREAD: usize = 4;

/// Thread-count policy for every parallel kernel in the workspace.
///
/// `TRAIL_THREADS=n` (n ≥ 1) pins the count; otherwise all available
/// cores are used. Read once per process — the pool is persistent.
pub fn num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        match std::env::var("TRAIL_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// One-shot open/wait latch.
struct Latch {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Latch {
    fn new() -> Self {
        Self { open: Mutex::new(false), cv: Condvar::new() }
    }

    fn signal(&self) {
        *self.open.lock().expect("latch lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().expect("latch lock");
        while !*open {
            open = self.cv.wait(open).expect("latch wait");
        }
    }
}

/// One parallel region: a lifetime-erased closure plus chunk cursors.
///
/// `func` borrows from the submitting caller's stack. Soundness
/// argument: the pointer is only dereferenced by a thread that has
/// claimed a chunk, every chunk is counted in `remaining`, and the
/// caller blocks until `remaining` reaches zero — so the borrow
/// cannot outlive [`parallel_for_limit`]'s scope. A worker that
/// receives the task after all chunks are claimed never touches
/// `func`.
struct Task {
    func: *const (dyn Fn(Range<usize>) + Sync),
    next: AtomicUsize,
    chunk: usize,
    len: usize,
    /// Chunks not yet completed; last decrement opens `latch`.
    remaining: AtomicUsize,
    latch: Latch,
    /// Set by the first chunk whose closure panics. Later claimants
    /// skip the closure but still decrement `remaining`, so the latch
    /// always opens and the pool thread survives to serve the next
    /// task — a panic never poisons the pool or hangs the caller.
    panicked: AtomicBool,
    /// First panic payload, re-thrown once on the submitting thread.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `func` is only dereferenced under the chunk-claim protocol
// described above; all other fields are Send + Sync.
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    fn run(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            if !self.panicked.load(Ordering::Acquire) {
                // SAFETY: a chunk was claimed, so the caller is still
                // blocked in `parallel_for_limit` and the closure is
                // live.
                let f = unsafe { &*self.func };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(start..end))) {
                    let mut slot = self.panic_payload.lock().expect("panic slot lock");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    drop(slot);
                    self.panicked.store(true, Ordering::Release);
                }
            }
            // AcqRel chains every worker's writes into the final
            // decrement; the latch mutex publishes them to the caller.
            // Runs on the panic path too — the latch must always open.
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.latch.signal();
            }
        }
    }
}

/// The process-wide pool: a job queue plus lazily grown workers.
struct ThreadPool {
    queue: Mutex<VecDeque<Arc<Task>>>,
    ready: Condvar,
    spawned: Mutex<usize>,
}

impl ThreadPool {
    /// Grow to at least `want` workers; returns the live worker count.
    fn ensure_workers(&'static self, want: usize) -> usize {
        let mut n = self.spawned.lock().expect("pool lock");
        while *n < want {
            std::thread::Builder::new()
                .name(format!("trail-pool-{n}"))
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
            *n += 1;
        }
        *n
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().expect("pool queue lock");
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.ready.wait(q).expect("pool queue wait");
                }
            };
            task.run();
        }
    }

    fn submit(&self, task: &Arc<Task>, copies: usize) {
        let mut q = self.queue.lock().expect("pool queue lock");
        for _ in 0..copies {
            q.push_back(task.clone());
        }
        drop(q);
        for _ in 0..copies {
            self.ready.notify_one();
        }
    }
}

fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Run `f` over `0..len` split into chunks across the pool, using the
/// [`num_threads`] policy. Each index is visited exactly once; chunk
/// boundaries are an implementation detail callers must not rely on
/// beyond disjointness.
pub fn parallel_for(len: usize, min_chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    parallel_for_limit(num_threads(), len, min_chunk, f);
}

/// [`parallel_for`] capped at `max_threads` concurrent participants
/// (1 ⇒ run inline on the caller). Used by tests and benches to pin a
/// region to a known width irrespective of `TRAIL_THREADS`.
pub fn parallel_for_limit(
    max_threads: usize,
    len: usize,
    min_chunk: usize,
    f: impl Fn(Range<usize>) + Sync,
) {
    if len == 0 {
        return;
    }
    let threads = max_threads.max(1);
    if threads < 2 || len <= min_chunk.max(1) {
        f(0..len);
        return;
    }
    let chunk = min_chunk.max(len.div_ceil(threads * CHUNKS_PER_THREAD)).max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks < 2 {
        f(0..len);
        return;
    }
    let pool = global_pool();
    let workers = pool.ensure_workers(threads - 1);
    let helpers = (threads - 1).min(n_chunks - 1).min(workers);
    let f_short: *const (dyn Fn(Range<usize>) + Sync + '_) = &f;
    // SAFETY: lifetime erasure only; the chunk-claim protocol plus the
    // latch wait below guarantee no dereference outlives this frame.
    let f_erased: *const (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(f_short) };
    let task = Arc::new(Task {
        func: f_erased,
        next: AtomicUsize::new(0),
        chunk,
        len,
        remaining: AtomicUsize::new(n_chunks),
        latch: Latch::new(),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    });
    pool.submit(&task, helpers);
    task.run();
    // Block until the last chunk completes; afterwards no thread can
    // dereference `f` again (late workers see `next >= len`).
    task.latch.wait();
    if task.panicked.load(Ordering::Acquire) {
        let payload = task
            .panic_payload
            .lock()
            .expect("panic slot lock")
            .take()
            .unwrap_or_else(|| Box::new("pool task panicked"));
        resume_unwind(payload);
    }
}

/// Copyable raw-pointer wrapper so disjoint row chunks of one buffer
/// can be handed to different threads.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: each thread derives a slice over a disjoint row range.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Partition a row-major buffer (`rows * cols` elements) into disjoint
/// row bands and call `f(first_row, band)` on each band in parallel.
///
/// The per-band slice covers whole rows, so kernels that compute each
/// output row independently (matmul, CSR aggregation) stay
/// bitwise-deterministic: a row's result never depends on which thread
/// or band computed it.
pub fn parallel_for_rows<T: Send>(
    data: &mut [T],
    cols: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    parallel_for_rows_limit(num_threads(), data, cols, min_rows, f);
}

/// [`parallel_for_rows`] capped at `max_threads` participants.
pub fn parallel_for_rows_limit<T: Send>(
    max_threads: usize,
    data: &mut [T],
    cols: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0, "buffer is not whole rows");
    let rows = data.len() / cols;
    let base = SendPtr(data.as_mut_ptr());
    parallel_for_limit(max_threads, rows, min_rows, move |r: Range<usize>| {
        let ptr = base;
        // SAFETY: `parallel_for_limit` hands out disjoint ranges of
        // `0..rows`, so each band slice is exclusive.
        let band = unsafe {
            std::slice::from_raw_parts_mut(ptr.0.add(r.start * cols), (r.end - r.start) * cols)
        };
        f(r.start, band);
    });
}

/// Evaluate `f(i)` for `i in 0..len` across the pool and collect the
/// results in index order. `min_chunk = 1`: items are assumed coarse
/// (a whole decision tree, an autoencoder batch).
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(len: usize, f: F) -> Vec<T> {
    parallel_map_limit(num_threads(), len, f)
}

/// [`parallel_map`] capped at `max_threads` participants.
pub fn parallel_map_limit<T: Send, F: Fn(usize) -> T + Sync>(
    max_threads: usize,
    len: usize,
    f: F,
) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    parallel_for_rows_limit(max_threads, &mut out, 1, 1, |first, band| {
        for (j, slot) in band.iter_mut().enumerate() {
            *slot = Some(f(first + j));
        }
    });
    out.into_iter().map(|o| o.expect("parallel_map slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn visits_every_index_exactly_once() {
        for threads in [1usize, 2, 8] {
            for len in [0usize, 1, 3, 7, 100, 1000] {
                let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                parallel_for_limit(threads, len, 1, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} len={len}"
                );
            }
        }
    }

    #[test]
    fn row_bands_partition_the_buffer() {
        let cols = 7;
        let rows = 129;
        let mut data = vec![0u32; rows * cols];
        parallel_for_rows_limit(8, &mut data, cols, 2, |first, band| {
            assert_eq!(band.len() % cols, 0);
            for (j, v) in band.iter_mut().enumerate() {
                *v = (first * cols + j) as u32 + 1;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn map_preserves_order() {
        for threads in [1usize, 3, 8] {
            let out = parallel_map_limit(threads, 57, |i| i * i);
            assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_regions_do_not_deadlock() {
        let total = AtomicU64::new(0);
        parallel_for_limit(4, 16, 1, |outer| {
            for _ in outer {
                parallel_for_limit(4, 64, 1, |inner| {
                    total.fetch_add(inner.len() as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16 * 64);
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn panic_in_closure_propagates_once_and_pool_stays_usable() {
        for threads in [2usize, 8] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel_for_limit(threads, 1000, 1, |r| {
                    if r.contains(&457) {
                        panic!("chunk bomb");
                    }
                });
            }));
            let payload = caught.expect_err("panic must reach the caller");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "chunk bomb", "threads={threads}");
            // The pool must not be poisoned: the very next region on the
            // same workers completes normally and visits every index.
            let hits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_limit(threads, 300, 1, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1), "threads={threads}");
        }
    }

    #[test]
    fn panic_on_caller_thread_chunk_still_propagates() {
        // Index 0 is claimed early (often by the submitting thread
        // itself); the panic must still surface exactly once and leave
        // no queued task holding a dangling closure pointer.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_for_limit(4, 64, 1, |r| {
                if r.start == 0 {
                    panic!("first chunk bomb");
                }
            });
        }));
        assert!(caught.is_err());
        let out = parallel_map_limit(4, 33, |i| i + 1);
        assert_eq!(out, (1..=33).collect::<Vec<_>>());
    }
}
