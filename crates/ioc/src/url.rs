//! URL IOCs: a from-scratch parser and the ten lexical features.

use serde::{Deserialize, Serialize};

use crate::defang::refang;
use crate::domain::DomainIoc;
use crate::ip::IpIoc;
use crate::{shannon_entropy, IocError, Result};

/// The host part of a URL: either a domain name or a literal IP.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UrlHost {
    /// Hostname, validated as a domain.
    Domain(DomainIoc),
    /// Literal address.
    Ip(IpIoc),
}

/// A parsed URL IOC.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UrlIoc {
    /// Canonical full text (refanged, scheme lowercased).
    pub text: String,
    /// `http` or `https` (other schemes are rejected — the paper's junk
    /// filter drops javascript: snippets that leak into feeds).
    pub scheme: String,
    /// The host.
    pub host: UrlHost,
    /// Explicit port, if any.
    pub port: Option<u16>,
    /// Path component, always starting with `/`.
    pub path: String,
    /// Query string without the leading `?`, if any.
    pub query: Option<String>,
}

/// The ten lexical URL features of Section IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UrlLexical {
    /// Full URL length.
    pub length: f32,
    /// Path length.
    pub path_length: f32,
    /// Path depth (number of `/`-separated segments).
    pub path_depth: f32,
    /// Number of query parameters.
    pub query_params: f32,
    /// Fraction of characters that are digits.
    pub digit_ratio: f32,
    /// Count of special characters (`%&=?_-~`).
    pub special_chars: f32,
    /// Shannon entropy of the whole URL.
    pub entropy: f32,
    /// Shannon entropy of the path+query only.
    pub path_entropy: f32,
    /// Subdomain depth of the host (0 for IP hosts).
    pub subdomain_depth: f32,
    /// 1.0 when an explicit port is present.
    pub has_port: f32,
}

impl UrlLexical {
    /// Stable names for the ten slots, for explanation output.
    pub const NAMES: [&'static str; 10] = [
        "url_length",
        "path_length",
        "path_depth",
        "query_params",
        "digit_ratio",
        "special_chars",
        "url_entropy",
        "path_entropy",
        "subdomain_depth",
        "has_port",
    ];

    /// The features as a fixed array in [`Self::NAMES`] order.
    pub fn to_array(self) -> [f32; 10] {
        [
            self.length,
            self.path_length,
            self.path_depth,
            self.query_params,
            self.digit_ratio,
            self.special_chars,
            self.entropy,
            self.path_entropy,
            self.subdomain_depth,
            self.has_port,
        ]
    }
}

impl UrlIoc {
    /// Parse (possibly defanged) text as an HTTP(S) URL.
    pub fn parse(raw: &str) -> Result<Self> {
        let s = refang(raw);
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| IocError::invalid("url", raw, "missing scheme"))?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(IocError::invalid("url", raw, "unsupported scheme"));
        }
        if rest.is_empty() {
            return Err(IocError::invalid("url", raw, "empty authority"));
        }
        // Split authority from path/query/fragment.
        let split_at = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let (authority, tail) = rest.split_at(split_at);
        // Strip userinfo if present.
        let hostport = authority.rsplit('@').next().unwrap_or(authority);
        let (host_text, port) = match hostport.rsplit_once(':') {
            // Only treat as port when the suffix is all digits (avoids
            // mangling IPv6 literals, which we require to be bracketed).
            Some((h, p)) if p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty() => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| IocError::invalid("url", raw, "port out of range"))?;
                (h, Some(port))
            }
            _ => (hostport, None),
        };
        let host_text = host_text.trim_matches(['[', ']']);
        if host_text.is_empty() {
            return Err(IocError::invalid("url", raw, "empty host"));
        }
        let host = if let Ok(ip) = IpIoc::parse(host_text) {
            UrlHost::Ip(ip)
        } else {
            UrlHost::Domain(DomainIoc::parse(host_text)?)
        };
        // Path / query / fragment.
        let (path_query, _fragment) = match tail.split_once('#') {
            Some((pq, f)) => (pq, Some(f)),
            None => (tail, None),
        };
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p, Some(q.to_owned())),
            None => (path_query, None),
        };
        let path = if path.is_empty() { "/".to_owned() } else { path.to_owned() };
        if !path.starts_with('/') {
            return Err(IocError::invalid("url", raw, "malformed path"));
        }
        // Junk filter: the paper notes javascript snippets masquerading
        // as URLs in feeds. Reject anything with whitespace or braces.
        if s.contains(|c: char| c.is_whitespace() || c == '{' || c == '}' || c == '<' || c == '>') {
            return Err(IocError::invalid("url", raw, "junk characters (script snippet?)"));
        }
        let canonical = {
            let host_str = match &host {
                UrlHost::Domain(d) => d.text.clone(),
                UrlHost::Ip(ip) => ip.text.clone(),
            };
            let port_str = port.map(|p| format!(":{p}")).unwrap_or_default();
            let query_str = query.as_deref().map(|q| format!("?{q}")).unwrap_or_default();
            format!("{scheme}://{host_str}{port_str}{path}{query_str}")
        };
        Ok(Self { text: canonical, scheme, host, port, path, query })
    }

    /// The domain this URL is hosted on, if the host is a name — used to
    /// emit the `HostedOn` edge in the TKG.
    pub fn hosted_domain(&self) -> Option<&DomainIoc> {
        match &self.host {
            UrlHost::Domain(d) => Some(d),
            UrlHost::Ip(_) => None,
        }
    }

    /// Extract the ten lexical features.
    pub fn lexical(&self) -> UrlLexical {
        let len = self.text.len() as f32;
        let digits = self.text.bytes().filter(u8::is_ascii_digit).count() as f32;
        let specials =
            self.text.bytes().filter(|b| matches!(b, b'%' | b'&' | b'=' | b'?' | b'_' | b'-' | b'~')).count();
        let path_and_query = match &self.query {
            Some(q) => format!("{}?{q}", self.path),
            None => self.path.clone(),
        };
        UrlLexical {
            length: len,
            path_length: self.path.len() as f32,
            path_depth: self.path.split('/').filter(|s| !s.is_empty()).count() as f32,
            query_params: self
                .query
                .as_deref()
                .map_or(0.0, |q| q.split('&').filter(|s| !s.is_empty()).count() as f32),
            digit_ratio: if len > 0.0 { digits / len } else { 0.0 },
            special_chars: specials as f32,
            entropy: shannon_entropy(&self.text),
            path_entropy: shannon_entropy(&path_and_query),
            subdomain_depth: match &self.host {
                UrlHost::Domain(d) => d.subdomain_depth() as f32,
                UrlHost::Ip(_) => 0.0,
            },
            has_port: if self.port.is_some() { 1.0 } else { 0.0 },
        }
    }
}

impl std::fmt::Display for UrlIoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let u = UrlIoc::parse("hxxp://sfj54f7[.]17ti3sk[.]club/?H3%2540ba&d").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.hosted_domain().unwrap().text, "sfj54f7.17ti3sk.club");
        assert_eq!(u.path, "/");
        assert_eq!(u.query.as_deref(), Some("H3%2540ba&d"));
    }

    #[test]
    fn parses_components() {
        let u = UrlIoc::parse("https://user@a.b.Example:8443/x/y/z.php?k=v&q=1#frag").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.path, "/x/y/z.php");
        assert_eq!(u.query.as_deref(), Some("k=v&q=1"));
        assert_eq!(u.hosted_domain().unwrap().text, "a.b.example");
        assert_eq!(u.text, "https://a.b.example:8443/x/y/z.php?k=v&q=1");
    }

    #[test]
    fn parses_ip_host() {
        let u = UrlIoc::parse("http://198.51.100.7/payload.bin").unwrap();
        assert!(matches!(u.host, UrlHost::Ip(_)));
        assert!(u.hosted_domain().is_none());
    }

    #[test]
    fn rejects_junk_and_bad_schemes() {
        for bad in [
            "javascript:alert(1)",
            "ftp://a.example/x",
            "http://",
            "not a url",
            "http://a.example/{jsvar}",
            "http://a.example/x y",
            "http://:80/",
        ] {
            assert!(UrlIoc::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn lexical_features_sane() {
        let u = UrlIoc::parse("http://a.b.example:8080/one/two?x=1&y=2").unwrap();
        let l = u.lexical();
        assert_eq!(l.path_depth, 2.0);
        assert_eq!(l.query_params, 2.0);
        assert_eq!(l.subdomain_depth, 1.0);
        assert_eq!(l.has_port, 1.0);
        assert!(l.entropy > 0.0 && l.path_entropy > 0.0);
        assert_eq!(UrlLexical::NAMES.len(), l.to_array().len());
    }

    #[test]
    fn bracketed_ipv6_host_parses() {
        let u = UrlIoc::parse("http://[2001:db8::1]/x").unwrap();
        assert!(matches!(u.host, UrlHost::Ip(ref ip) if ip.v6));
        assert_eq!(u.path, "/x");
    }

    #[test]
    fn userinfo_is_stripped_from_canonical_text() {
        let u = UrlIoc::parse("http://admin:pw@a.example/x").unwrap();
        assert_eq!(u.text, "http://a.example/x");
    }

    #[test]
    fn fragment_is_dropped() {
        let u = UrlIoc::parse("http://a.example/x#section").unwrap();
        assert_eq!(u.text, "http://a.example/x");
        assert!(u.query.is_none());
    }

    #[test]
    fn default_path_is_slash() {
        let u = UrlIoc::parse("http://a.example").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.lexical().path_depth, 0.0);
    }
}
