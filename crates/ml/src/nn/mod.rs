//! Neural-network substrate: layers, losses, optimisers, the paper's
//! MLP architecture, and the autoencoders used to project IOC features
//! into a common space for the GNN (paper Eq. 5).

pub mod autoencoder;
pub mod layers;
pub mod loss;
pub mod mlp;
pub mod optim;

pub use autoencoder::Autoencoder;
pub use layers::{BatchNorm1d, Dropout, Layer, Linear, Param, Relu};
pub use loss::softmax_cross_entropy;
pub use mlp::{Mlp, MlpConfig};
pub use optim::Adam;
