//! TSB1 — the immutable serve-bundle frame, and the pure query-scoring
//! path that runs against it.
//!
//! A [`ServeBundle`] freezes everything attribution needs at serve
//! time: the historical TKG (embedded as a nested TKG2 blob), the
//! attributed-event table, the APT label space, the per-node
//! autoencoder codes and the trained GraphSAGE parameters. Once
//! constructed (or loaded) it is never mutated — every query method
//! takes `&self`, which is what makes the runtime's lock-free sharing
//! across worker threads sound.
//!
//! Frame layout (little-endian), following TKG2/TSC1:
//!
//! ```text
//! "TSB1" | u32 version | u64 payload_len | u64 fnv1a(payload) | payload
//! ```
//!
//! Loading verifies magic, version, length (in the u64 domain, before
//! any slicing) and checksum, then bounds-checks every field read and
//! cross-validates the decoded pieces against each other (code rows vs
//! node count, layer shapes vs architecture, event ids vs graph).
//! Corrupt input yields a typed [`PersistError`], never a panic.

use std::collections::HashMap;
use std::path::Path;

use trail::freeze::{self, FrozenModel};
use trail::Tkg;
use trail_gnn::{SageConfig, SageModel};
use trail_graph::algo::bfs::k_hop;
use trail_graph::persist::{fnv1a_bytes, write_atomic};
use trail_graph::{persist, Csr, EdgeKind, GraphStore, NodeId, NodeKind, PersistError};
use trail_ioc::IocKey;
use trail_linalg::Matrix;

/// Magic bytes: Trail Serve Bundle.
const MAGIC: [u8; 4] = *b"TSB1";
/// Format version.
const VERSION: u32 = 1;
/// Frame header length: magic + version + payload len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// Bundle result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

fn malformed(offset: usize, what: &'static str) -> PersistError {
    PersistError::Malformed { offset, what }
}

/// One attributed historical event, as frozen into the bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleEvent {
    /// The event's node in the embedded graph.
    pub node: NodeId,
    /// Resolved APT label.
    pub apt: u16,
    /// Source report id (diagnostics only).
    pub report_id: String,
}

/// Per-query traversal limits.
#[derive(Debug, Clone, Copy)]
pub struct QueryLimits {
    /// Ego-subgraph radius around the queried IOCs (hops).
    pub radius: u32,
    /// Hard cap on subgraph size; BFS order is truncated
    /// deterministically, so a hub IOC cannot stall the runtime.
    pub max_members: usize,
}

impl Default for QueryLimits {
    fn default() -> Self {
        Self { radius: 2, max_members: 2048 }
    }
}

/// Result of scoring one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// `(class, score)` over the full label space, best first; scores
    /// are mean softmax probabilities over the matched IOC nodes and
    /// sum to 1. Empty when no queried IOC exists in the graph.
    pub ranked: Vec<(u16, f32)>,
    /// Queried IOCs found in the graph.
    pub matched: usize,
    /// Ego-subgraph size the forward pass ran over.
    pub members: usize,
    /// Historical attributed events inside the subgraph.
    pub events: usize,
}

/// The frozen, immutable serving artefact.
pub struct ServeBundle {
    graph: GraphStore,
    csr: Csr,
    class_names: Vec<String>,
    events: Vec<BundleEvent>,
    /// Label by node index (`None` for non-event nodes) — the serving
    /// analogue of the "visible labels" block: all history is visible.
    event_apt: Vec<Option<u16>>,
    code_dim: usize,
    codes: Matrix,
    sage_cfg: SageConfig,
    layers: Vec<(Matrix, Matrix, Matrix)>,
}

// --- encoding helpers (TSC1 idiom) -----------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u64(out, m.rows() as u64);
    put_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        put_u32(out, v.to_bits());
    }
}

/// Bounds-checked little-endian reader over the verified payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| malformed(self.pos, what))?;
        if end > self.data.len() {
            return Err(malformed(self.pos, what));
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Length prefix that must plausibly fit in the remaining payload
    /// (each element needs >= `min_elem_bytes`) — rejects absurd
    /// counts from corrupt fields before any allocation.
    fn len(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize> {
        let n = self.u64(what)?;
        let remaining = (self.data.len() - self.pos) as u64;
        if n > remaining / min_elem_bytes.max(1) as u64 {
            return Err(malformed(self.pos, what));
        }
        Ok(n as usize)
    }

    fn str(&mut self, what: &'static str) -> Result<String> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed(self.pos, what))
    }

    fn matrix(&mut self, what: &'static str) -> Result<Matrix> {
        let rows = self.u64(what)? as usize;
        let cols = self.u64(what)? as usize;
        let n = rows.checked_mul(cols).ok_or_else(|| malformed(self.pos, what))?;
        if n > (self.data.len() - self.pos) / 4 {
            return Err(malformed(self.pos, what));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(f32::from_bits(self.u32(what)?));
        }
        Matrix::from_vec(rows, cols, data).map_err(|_| malformed(self.pos, what))
    }
}

impl ServeBundle {
    /// Freeze a trained system into an immutable bundle.
    ///
    /// The graph is round-tripped through its TKG2 encoding rather than
    /// cloned, so a freshly frozen bundle and one reloaded from disk
    /// are built from byte-identical graph state.
    pub fn freeze(tkg: &Tkg, frozen: &FrozenModel) -> Result<Self> {
        let _span = trail_obs::span("serve.freeze");
        let graph = persist::from_bytes(&persist::to_bytes(&tkg.graph))
            .map_err(graph_err)?;
        let events = tkg
            .events
            .iter()
            .map(|e| BundleEvent { node: e.node, apt: e.apt, report_id: e.report_id.clone() })
            .collect();
        Self::assemble(
            graph,
            tkg.registry.names().to_vec(),
            events,
            frozen.code_dim,
            frozen.codes.clone(),
            frozen.sage_cfg,
            frozen.layers.clone(),
        )
    }

    /// Re-freeze a live stream's current state into a bundle — the
    /// packaging half of zero-downtime hot swap (the producer half is
    /// [`trail::freeze::refreeze`]). The result passes the same
    /// cross-validation as any other bundle and is ready for
    /// [`crate::ServeRuntime::install`]; the stream keeps running.
    pub fn refreeze(rt: &mut trail::stream::StreamRuntime) -> Result<Self> {
        let frozen = freeze::refreeze(rt);
        Self::freeze(&rt.system().tkg, &frozen)
    }

    /// Construct from decoded parts, cross-validating everything.
    fn assemble(
        graph: GraphStore,
        class_names: Vec<String>,
        events: Vec<BundleEvent>,
        code_dim: usize,
        codes: Matrix,
        sage_cfg: SageConfig,
        layers: Vec<(Matrix, Matrix, Matrix)>,
    ) -> Result<Self> {
        let n = graph.node_count();
        let k = class_names.len();
        if codes.shape() != (n, code_dim) {
            return Err(malformed(0, "codes shape vs graph"));
        }
        if sage_cfg.n_classes != k {
            return Err(malformed(0, "n_classes vs class names"));
        }
        if sage_cfg.input_dim != code_dim + 5 + k {
            return Err(malformed(0, "input_dim vs code layout"));
        }
        if sage_cfg.layers == 0 || sage_cfg.layers != layers.len() {
            return Err(malformed(0, "layer count vs architecture"));
        }
        let mut d_in = sage_cfg.input_dim;
        for (l, (w_root, w_nbr, b)) in layers.iter().enumerate() {
            let d_out = if l == sage_cfg.layers - 1 { sage_cfg.n_classes } else { sage_cfg.hidden };
            if w_root.shape() != (d_in, d_out)
                || w_nbr.shape() != (d_in, d_out)
                || b.shape() != (1, d_out)
            {
                return Err(malformed(l, "layer weight shape"));
            }
            d_in = d_out;
        }
        let mut event_apt = vec![None; n];
        for e in &events {
            if e.node.index() >= n {
                return Err(malformed(e.node.index(), "event node out of range"));
            }
            if graph.node(e.node).kind != NodeKind::Event {
                return Err(malformed(e.node.index(), "event node kind"));
            }
            if e.apt as usize >= k {
                return Err(malformed(e.apt as usize, "event label out of range"));
            }
            event_apt[e.node.index()] = Some(e.apt);
        }
        let csr = Csr::from_store(&graph);
        Ok(Self { graph, csr, class_names, events, event_apt, code_dim, codes, sage_cfg, layers })
    }

    // --- frame -------------------------------------------------------------

    /// Serialise to the framed, checksummed binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(1 << 16);
        let graph_blob = persist::to_bytes(&self.graph);
        put_u64(&mut p, graph_blob.len() as u64);
        p.extend_from_slice(&graph_blob);

        put_u16(&mut p, self.class_names.len() as u16);
        for name in &self.class_names {
            put_str(&mut p, name);
        }

        put_u64(&mut p, self.events.len() as u64);
        for e in &self.events {
            put_u32(&mut p, e.node.index() as u32);
            put_u16(&mut p, e.apt);
            put_str(&mut p, &e.report_id);
        }

        put_u64(&mut p, self.code_dim as u64);
        put_matrix(&mut p, &self.codes);

        put_u64(&mut p, self.sage_cfg.input_dim as u64);
        put_u64(&mut p, self.sage_cfg.hidden as u64);
        put_u64(&mut p, self.sage_cfg.layers as u64);
        put_u64(&mut p, self.sage_cfg.n_classes as u64);
        p.push(self.sage_cfg.l2_normalize as u8);

        put_u64(&mut p, self.layers.len() as u64);
        for (w_root, w_nbr, b) in &self.layers {
            put_matrix(&mut p, w_root);
            put_matrix(&mut p, w_nbr);
            put_matrix(&mut p, b);
        }

        let mut out = Vec::with_capacity(HEADER_LEN + p.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_bytes(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Decode and fully validate a bundle frame.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let _span = trail_obs::span("serve.bundle_load");
        if data.len() < HEADER_LEN {
            return Err(PersistError::TooShort { have: data.len() });
        }
        if data[0..4] != MAGIC {
            return Err(PersistError::BadMagic { found: data[0..4].try_into().unwrap() });
        }
        let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(PersistError::UnsupportedVersion { found: version });
        }
        // The length field is untrusted on-disk input: compare in the
        // u64 domain so a value above usize::MAX can never wrap through
        // an `as usize` conversion (same discipline as TKG2/TSC1).
        let want = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let checksum = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let payload = &data[HEADER_LEN..];
        if payload.len() as u64 != want {
            return Err(PersistError::Truncated { want, have: payload.len() });
        }
        let actual = fnv1a_bytes(payload);
        if actual != checksum {
            return Err(PersistError::ChecksumMismatch { expected: checksum, actual });
        }

        let mut c = Cursor { data: payload, pos: 0 };
        let graph_len = c.len(1, "graph blob")?;
        let graph_blob = c.take(graph_len, "graph blob")?;
        let graph = persist::from_bytes(graph_blob).map_err(graph_err)?;

        let n_classes = c.u16("class count")? as usize;
        let mut class_names = Vec::with_capacity(n_classes.min(1 << 16));
        for _ in 0..n_classes {
            class_names.push(c.str("class name")?);
        }

        let n_events = c.len(10, "event count")?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let node = NodeId::from(c.u32("event node")? as usize);
            let apt = c.u16("event label")?;
            let report_id = c.str("event report id")?;
            events.push(BundleEvent { node, apt, report_id });
        }

        let code_dim = c.u64("code dim")? as usize;
        let codes = c.matrix("codes")?;

        let sage_cfg = SageConfig {
            input_dim: c.u64("input_dim")? as usize,
            hidden: c.u64("hidden")? as usize,
            layers: c.u64("layers")? as usize,
            n_classes: c.u64("n_classes")? as usize,
            l2_normalize: c.u8("l2_normalize")? != 0,
        };

        let n_layers = c.len(48, "layer count")?;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            layers.push((c.matrix("W_root")?, c.matrix("W_nbr")?, c.matrix("b")?));
        }
        if c.pos != payload.len() {
            return Err(malformed(c.pos, "trailing bytes"));
        }

        Self::assemble(graph, class_names, events, code_dim, codes, sage_cfg, layers)
    }

    /// Write atomically (temp file + fsync + rename), like TKG2/TSC1.
    pub fn save(&self, path: &Path) -> Result<()> {
        write_atomic(path, &self.to_bytes())
    }

    /// Load and validate a bundle from disk.
    pub fn load(path: &Path) -> Result<Self> {
        let data = std::fs::read(path).map_err(PersistError::Io)?;
        Self::from_bytes(&data)
    }

    // --- accessors ---------------------------------------------------------

    /// The embedded historical graph (read-only).
    pub fn graph(&self) -> &GraphStore {
        &self.graph
    }

    /// APT label names, indexed by class.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The frozen attributed events.
    pub fn events(&self) -> &[BundleEvent] {
        &self.events
    }

    /// Number of APT classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// The frozen SAGE architecture.
    pub fn sage_config(&self) -> SageConfig {
        self.sage_cfg
    }

    /// Build a runnable model replica carrying the frozen weights.
    /// Every call yields a bitwise-identical model (see
    /// [`trail::freeze::instantiate`]), so rankings never depend on
    /// *which* replica served a request.
    pub fn instantiate_model(&self) -> SageModel {
        freeze::instantiate(self.sage_cfg, &self.layers)
    }

    // --- query path (pure, read-only) --------------------------------------

    /// Resolve a canonical IOC identity to its node, if present.
    pub fn find_ioc(&self, key: &IocKey) -> Option<NodeId> {
        self.graph.find_node(Tkg::node_kind(key.kind()), key.text())
    }

    /// Score one query: the queried IOCs' ego-subgraph is extracted,
    /// re-indexed locally, and pushed through the quantized forward
    /// pass; the ranking aggregates the softmax distributions of the
    /// matched IOC nodes themselves (historical event labels are
    /// visible input features, exactly as in training).
    ///
    /// Strictly read-only against the bundle; the only mutable state is
    /// the caller-provided model replica's scratch buffers.
    pub fn attribute(
        &self,
        model: &mut SageModel,
        iocs: &[IocKey],
        limits: &QueryLimits,
    ) -> Attribution {
        let _span = trail_obs::span("serve.attribute");
        let roots: Vec<NodeId> = iocs.iter().filter_map(|k| self.find_ioc(k)).collect();
        let matched = roots.len();
        if roots.is_empty() {
            return Attribution { ranked: Vec::new(), matched: 0, members: 0, events: 0 };
        }

        let mut members = k_hop(&self.csr, &roots, limits.radius);
        members.truncate(limits.max_members.max(1));

        let mut local: HashMap<NodeId, usize> = HashMap::with_capacity(members.len());
        for (i, &(id, _)) in members.iter().enumerate() {
            local.insert(id, i);
        }
        // Induced edges, one per undirected (possibly parallel) edge:
        // the symmetrised CSR lists each edge from both endpoints, so
        // emitting only from the lower local index keeps exactly one.
        let mut edges: Vec<(NodeId, NodeId, EdgeKind)> = Vec::new();
        for (i, &(id, _)) in members.iter().enumerate() {
            for (nbr, kind) in self.csr.neighbors_with_kinds(id) {
                if let Some(&j) = local.get(&nbr) {
                    if i < j {
                        edges.push((NodeId::from(i), NodeId::from(j), kind));
                    }
                }
            }
        }
        let sub = Csr::from_edge_list(members.len(), &edges);

        let mut x = Matrix::zeros(members.len(), self.sage_cfg.input_dim);
        let mut n_events = 0usize;
        for (i, &(id, _)) in members.iter().enumerate() {
            let row = x.row_mut(i);
            row[..self.code_dim].copy_from_slice(self.codes.row(id.index()));
            row[self.code_dim + self.graph.node(id).kind.index()] = 1.0;
            if let Some(apt) = self.event_apt[id.index()] {
                row[self.code_dim + 5 + apt as usize] = 1.0;
                n_events += 1;
            }
        }

        let logits = model.forward_quantized(&sub, &x);
        let k = self.n_classes();
        let mut scores = vec![0.0f32; k];
        for (i, &(_, hop)) in members.iter().enumerate() {
            if hop != 0 {
                continue;
            }
            let mut proba = logits.row(i).to_vec();
            trail_linalg::vector::softmax_inplace(&mut proba);
            for (s, p) in scores.iter_mut().zip(&proba) {
                *s += p;
            }
        }
        let norm = matched as f32;
        let mut ranked: Vec<(u16, f32)> =
            scores.iter().enumerate().map(|(c, &s)| (c as u16, s / norm)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        Attribution { ranked, matched, members: members.len(), events: n_events }
    }
}

fn graph_err(e: trail_graph::GraphError) -> PersistError {
    match e {
        trail_graph::GraphError::Persist(p) => p,
        _ => PersistError::Malformed { offset: 0, what: "embedded graph" },
    }
}
