//! Symmetric i8 quantization for inference-time matmuls.
//!
//! The f32 training path is bitwise-deterministic and stays untouched;
//! this module exists for *inference only*, where a bounded, documented
//! error is an acceptable trade for integer throughput.
//!
//! Scheme (per row of the stored matrix):
//!
//! * scale `s = max_abs / 127` (`0` for an all-zero row);
//! * codes `q = round(x / s)` clamped to `[-127, 127]`, so every
//!   element satisfies the **epsilon contract** `|x − s·q| ≤ s/2`;
//! * products accumulate in `i32`, which is *exact*: the largest
//!   possible magnitude is `K · 127 · 127` ≈ 24.5 M for the workspace's
//!   widest reduction (K = 1517 input features), far below `i32::MAX`,
//!   so the integer sum is order-free and overflow-free.
//!
//! Activations quantize **per row** (one scale per sample). Weights
//! quantize **per output column** via [`QuantizedMatrix::from_cols`],
//! which stores the transpose so the kernel reduces row·row over
//! contiguous memory. The end-to-end elementwise error of
//! `C = A @ B` against f32 is then bounded by
//! `K · s_a[i] · s_b[j] · (127 + 1/4)` (write `x = s_a q_a + e_a`,
//! `y = s_b q_b + e_b` with `|e| ≤ s/2` and expand), which the
//! kernel-equivalence property tests assert case by case.
//!
//! The matmul dispatches per call between a portable lane-split loop
//! and hand-vectorized x86-64 row kernels (`vpmaddwd`, and `vpdpbusd`
//! on AVX-512 VNNI). Because the i32 reduction is exact in any order,
//! all paths produce **bit-identical** results — hardware dispatch
//! never changes an attribution, only its latency.

use crate::{Matrix, Result, ShapeError};

/// A row-major i8 matrix with one dequantization scale per row.
#[derive(Debug, Clone, Default)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
    /// Per-row Σq, maintained by the quantizers. The VNNI kernel's
    /// `vpdpbusd` wants one operand unsigned, so it computes
    /// `Σ (q_a + 128) · q_b` and subtracts `128 · Σ q_b` — this is that
    /// correction term, free at quantization time.
    rowsums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Empty placeholder; fill it with [`Self::quantize_rows_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of stored columns (the reduction dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row dequantization scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Per-row sums of the stored codes (see the field docs; used by
    /// the VNNI kernel's unsigned-operand bias correction).
    pub fn rowsums(&self) -> &[i32] {
        &self.rowsums
    }

    /// One stored row of codes.
    pub fn row(&self, r: usize) -> &[i8] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Quantize `m` row by row (one scale per row). Allocating form of
    /// [`Self::quantize_rows_into`].
    pub fn quantize_rows(m: &Matrix) -> Self {
        let mut out = Self::new();
        out.quantize_rows_into(m);
        out
    }

    /// Quantize `m` row by row into `self`, reusing the existing code
    /// and scale buffers (allocation-free once shapes stabilise).
    pub fn quantize_rows_into(&mut self, m: &Matrix) {
        let (rows, cols) = m.shape();
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0);
        self.scales.clear();
        self.scales.resize(rows, 0.0);
        self.rowsums.clear();
        self.rowsums.resize(rows, 0);
        let simd = simd_quantize_available();
        for (r, row) in m.as_slice().chunks_exact(cols.max(1)).enumerate() {
            let q = &mut self.data[r * cols..(r + 1) * cols];
            let (scale, rowsum) = quantize_row_dispatch(row, q, simd);
            self.scales[r] = scale;
            self.rowsums[r] = rowsum;
        }
    }

    /// Quantize `m` **per column**, storing the transpose: the result
    /// has `m.cols()` rows of length `m.rows()`, each with its own
    /// scale. This is the weight-side layout — per-output-channel
    /// scales, contiguous reduction — for [`matmul_quant_into`].
    pub fn from_cols(m: &Matrix) -> Self {
        let (m_rows, m_cols) = m.shape();
        let mut col = vec![0.0f32; m_rows];
        let mut out = Self {
            rows: m_cols,
            cols: m_rows,
            data: vec![0; m_rows * m_cols],
            scales: vec![0.0; m_cols],
            rowsums: vec![0; m_cols],
        };
        let simd = simd_quantize_available();
        for c in 0..m_cols {
            for r in 0..m_rows {
                col[r] = m[(r, c)];
            }
            let q = &mut out.data[c * m_rows..(c + 1) * m_rows];
            let (scale, rowsum) = quantize_row_dispatch(&col, q, simd);
            out.scales[c] = scale;
            out.rowsums[c] = rowsum;
        }
        out
    }
}

/// f32 lanes per partial maximum in [`quantize_row`]'s max-abs scan.
/// `max` is exact in any order, so the lane split changes no result.
const ML: usize = 16;

/// Quantize one row into `q`, returning its scale.
///
/// The rounding step deliberately avoids a float→int `as` cast: Rust's
/// cast saturates (`llvm.fptosi.sat`), which LLVM only lowers as scalar
/// `vcvttss2si` — it kept every earlier version of this loop at well
/// under 1 element/ns. Adding `1.5·2²³` instead forces the value into
/// a mantissa window where the low bits *are* the round-to-nearest-even
/// integer, so one add + bit reinterpretation rounds and converts in
/// plain vectorizable integer ops. `|v · 127/max_abs| ≤ 127` by
/// construction, so the biased sum stays in-window and the final `as
/// i8` truncation is exact; ties round to even rather than away from
/// zero, which the `|x − s·q| ≤ s/2` contract permits. Non-finite
/// inputs produce meaningless (but defined) codes; the quantized path
/// is inference-only and documented to expect finite activations.
fn quantize_row(row: &[f32], q: &mut [i8]) -> f32 {
    let mut maxes = [0.0f32; ML];
    let mut chunks = row.chunks_exact(ML);
    for xs in &mut chunks {
        let xs: &[f32; ML] = xs.try_into().unwrap();
        for l in 0..ML {
            maxes[l] = maxes[l].max(xs[l].abs());
        }
    }
    let mut max_abs = chunks.remainder().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    for &m in &maxes {
        max_abs = max_abs.max(m);
    }
    if max_abs == 0.0 {
        q.fill(0);
        return 0.0;
    }
    let inv = 127.0 / max_abs;
    const MAGIC: f32 = 12582912.0; // 1.5 · 2²³
    const BIAS: i32 = 0x4B40_0000; // MAGIC.to_bits() as i32
    for (qi, &v) in q.iter_mut().zip(row) {
        *qi = ((v * inv + MAGIC).to_bits() as i32).wrapping_sub(BIAS) as i8;
    }
    max_abs / 127.0
}

/// True when the hand-vectorized quantizer can run. Resolved once per
/// matrix (the detection macro caches, but hoisting keeps it out of
/// the per-row path entirely).
fn simd_quantize_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512bw")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Quantize one row and return `(scale, Σq)`. The SIMD and portable
/// paths produce identical codes on finite input: both round with
/// ties-to-even (`vcvtps2dq` vs the magic-number add) from the same
/// `v · 127/max_abs` f32 product, and the max/sum reductions are exact
/// in any order. `quantize_paths_agree_bitwise` asserts this.
fn quantize_row_dispatch(row: &[f32], q: &mut [i8], simd: bool) -> (f32, i32) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd {
            // SAFETY: `simd` is only true when AVX-512BW (which
            // implies AVX-512F) was detected at runtime.
            return unsafe { x86::quantize_row_avx512(row, q) };
        }
    }
    let _ = simd;
    let scale = quantize_row(row, q);
    (scale, q.iter().map(|&v| v as i32).sum())
}

/// i8 lanes per accumulator block in [`dot_i8`]. Unlike the f32
/// kernels, integer addition is associative, so the reduction may be
/// lane-split freely — the sum is exact in any order. This also means
/// every kernel below (portable, `vpmaddwd`, VNNI) returns the *same*
/// i32 for the same inputs: there is no cross-platform drift to gate.
const KL: usize = 16;

/// Lane-parallel exact i8·i8 → i32 dot product; the portable fallback
/// and the reference the SIMD kernels are tested against. The
/// fixed-size `[i32; KL]` partial sums are what lets LLVM widen the
/// products and keep the whole reduction in vector registers.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    let mut acc = [0i32; KL];
    let mut ca = a.chunks_exact(KL);
    let mut cb = b.chunks_exact(KL);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        let xa: &[i8; KL] = xa.try_into().unwrap();
        let xb: &[i8; KL] = xb.try_into().unwrap();
        for l in 0..KL {
            acc[l] += xa[l] as i32 * xb[l] as i32;
        }
    }
    let mut s: i32 = acc.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x as i32 * y as i32;
    }
    s
}

/// One output row of the quantized product, portable path:
/// `out[j] (=|+=) sa · sb[j] · (a_row · bt[j])`.
fn quant_row_safe(
    a_row: &[i8],
    sa: f32,
    bt: &QuantizedMatrix,
    out_row: &mut [f32],
    accumulate: bool,
) {
    let k = bt.cols;
    for (j, o) in out_row.iter_mut().enumerate() {
        let v = sa * bt.scales[j] * dot_i8(a_row, &bt.data[j * k..(j + 1) * k]) as f32;
        if accumulate {
            *o += v;
        } else {
            *o = v;
        }
    }
}

/// Which row kernel [`quant_mm`] runs; resolved once per matmul call.
/// All variants produce bit-identical output (exact i32 reduction, and
/// the final `sa · sb[j] · dot as f32` expression is the same in each).
#[derive(Clone, Copy)]
enum RowKernel {
    Safe,
    #[cfg(target_arch = "x86_64")]
    Madd512,
    #[cfg(target_arch = "x86_64")]
    Vnni,
}

fn select_row_kernel() -> RowKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512vnni")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            return RowKernel::Vnni;
        }
        if std::arch::is_x86_feature_detected!("avx512bw") {
            return RowKernel::Madd512;
        }
    }
    RowKernel::Safe
}

/// Hand-vectorized row kernels. Autovectorization tops out around
/// 16 MACs per ~2.5 cycles here because LLVM lowers the sign-extending
/// i8 multiply as `vpmovsxbd` + `vpmulld`; `vpmaddwd` (32 i16 MACs per
/// instruction) and `vpdpbusd` (64 i8 MACs) need explicit intrinsics.
/// Both reduce in i32, which is exact, so outputs are bit-identical to
/// [`dot_i8`] — the `simd_paths_match_safe_kernel` test checks each
/// available path against it, tails included.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::QuantizedMatrix;
    use std::arch::x86_64::*;

    /// One-row quantizer: masked-load max-abs scan, then
    /// multiply + `vcvtps2dq` + truncating `vpmovdb` store, with the
    /// `Σq` row sum fused into the same pass. `vcvtps2dq` rounds
    /// ties-to-even — exactly what the portable magic-number path
    /// computes — and `|v · 127/max_abs| ≤ 127` makes the i32→i8
    /// truncation lossless, so codes, scale and row sum are identical
    /// to [`super::quantize_row`] on finite input.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F + AVX-512BW are available.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn quantize_row_avx512(row: &[f32], q: &mut [i8]) -> (f32, i32) {
        let k = row.len();
        let rp = row.as_ptr();
        let mut vmax = _mm512_setzero_ps();
        let mut p = 0;
        while p + 16 <= k {
            vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(rp.add(p))));
            p += 16;
        }
        if p < k {
            let mask = (1u16 << (k - p)) - 1;
            vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_maskz_loadu_ps(mask, rp.add(p))));
        }
        let max_abs = _mm512_reduce_max_ps(vmax);
        if max_abs == 0.0 {
            q.fill(0);
            return (0.0, 0);
        }
        let inv = _mm512_set1_ps(127.0 / max_abs);
        let qp = q.as_mut_ptr();
        let mut vsum = _mm512_setzero_si512();
        p = 0;
        while p + 16 <= k {
            let qi = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_loadu_ps(rp.add(p)), inv));
            vsum = _mm512_add_epi32(vsum, qi);
            _mm512_mask_cvtepi32_storeu_epi8(qp.add(p), 0xffff, qi);
            p += 16;
        }
        if p < k {
            // Masked-off lanes load as +0.0 → code 0 → no effect on Σq.
            let mask = (1u16 << (k - p)) - 1;
            let qi = _mm512_cvtps_epi32(_mm512_mul_ps(_mm512_maskz_loadu_ps(mask, rp.add(p)), inv));
            vsum = _mm512_add_epi32(vsum, qi);
            _mm512_mask_cvtepi32_storeu_epi8(qp.add(p), mask, qi);
        }
        (max_abs / 127.0, _mm512_reduce_add_epi32(vsum))
    }

    /// `vpmaddwd` path (AVX-512BW): sign-extend 32 i8 to i16, multiply
    /// pairwise into i32, accumulate. A single i16 product is at most
    /// 127² = 16 129 and `vpmaddwd` adds two, staying well inside i16
    /// pair → i32 range; the i32 accumulator then absorbs at most
    /// `K/2` terms of |…| ≤ 32 258, far from overflow for any K the
    /// workspace uses (≤ 1 517).
    ///
    /// # Safety
    /// Caller must ensure AVX-512BW is available. Slice bounds are
    /// respected by construction (`p + 32 ≤ k` guards every load).
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn quant_row_madd(
        a_row: &[i8],
        sa: f32,
        bt: &QuantizedMatrix,
        out_row: &mut [f32],
        accumulate: bool,
    ) {
        let k = bt.cols();
        let a = a_row.as_ptr();
        for (j, o) in out_row.iter_mut().enumerate() {
            let b = bt.row(j).as_ptr();
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut p = 0;
            while p + 64 <= k {
                let va0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.add(p) as *const __m256i));
                let vb0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.add(p) as *const __m256i));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va0, vb0));
                let va1 =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.add(p + 32) as *const __m256i));
                let vb1 =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.add(p + 32) as *const __m256i));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va1, vb1));
                p += 64;
            }
            if p + 32 <= k {
                let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.add(p) as *const __m256i));
                let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.add(p) as *const __m256i));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, vb));
                p += 32;
            }
            if p < k {
                // Masked tail (< 32 lanes): AVX-512 masked loads
                // suppress faults on masked-off lanes, and zeroed
                // lanes contribute zero products.
                let mask = (1u64 << (k - p)) - 1;
                let va = _mm512_castsi512_si256(_mm512_maskz_loadu_epi8(mask, a.add(p)));
                let vb = _mm512_castsi512_si256(_mm512_maskz_loadu_epi8(mask, b.add(p)));
                acc0 = _mm512_add_epi32(
                    acc0,
                    _mm512_madd_epi16(_mm512_cvtepi8_epi16(va), _mm512_cvtepi8_epi16(vb)),
                );
            }
            let s = _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1));
            let v = sa * bt.scales()[j] * s as f32;
            if accumulate {
                *o += v;
            } else {
                *o = v;
            }
        }
    }

    /// VNNI path: `vpdpbusd` contracts 64 u8·i8 MACs per instruction.
    /// One operand must be unsigned, so the activation codes are biased
    /// by +128 (a sign-bit XOR) and the kernel subtracts
    /// `128 · Σ q_b` afterwards — that row sum is precomputed by the
    /// quantizers ([`QuantizedMatrix::rowsums`]). The `vpdpbusd`
    /// intermediate (4 products ≤ 255·127 each) and the i32 accumulator
    /// stay far from overflow for K ≤ 1 517.
    ///
    /// # Safety
    /// Caller must ensure AVX-512VNNI and AVX-512BW are available.
    #[target_feature(enable = "avx512vnni,avx512bw")]
    pub unsafe fn quant_row_vnni(
        a_row: &[i8],
        sa: f32,
        bt: &QuantizedMatrix,
        out_row: &mut [f32],
        accumulate: bool,
    ) {
        let k = bt.cols();
        let a = a_row.as_ptr();
        let off = _mm512_set1_epi8(-128i8); // XOR flips the sign bit: q + 128 as u8
        for (j, o) in out_row.iter_mut().enumerate() {
            let b = bt.row(j).as_ptr();
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut p = 0;
            while p + 128 <= k {
                let va0 = _mm512_xor_si512(_mm512_loadu_si512(a.add(p) as *const __m512i), off);
                let vb0 = _mm512_loadu_si512(b.add(p) as *const __m512i);
                acc0 = _mm512_dpbusd_epi32(acc0, va0, vb0);
                let va1 =
                    _mm512_xor_si512(_mm512_loadu_si512(a.add(p + 64) as *const __m512i), off);
                let vb1 = _mm512_loadu_si512(b.add(p + 64) as *const __m512i);
                acc1 = _mm512_dpbusd_epi32(acc1, va1, vb1);
                p += 128;
            }
            if p + 64 <= k {
                let va = _mm512_xor_si512(_mm512_loadu_si512(a.add(p) as *const __m512i), off);
                let vb = _mm512_loadu_si512(b.add(p) as *const __m512i);
                acc0 = _mm512_dpbusd_epi32(acc0, va, vb);
                p += 64;
            }
            if p < k {
                // Masked tail (< 64 lanes), fault-suppressed. Masked-off
                // b lanes load as zero, so their products vanish; the
                // XOR turns masked-off a lanes into +128 which those
                // zero b lanes ignore. The biased sum therefore covers
                // the entire row and the correction below is exactly
                // `128 · Σ q_b`.
                let mask = (1u64 << (k - p)) - 1;
                let va = _mm512_xor_si512(_mm512_maskz_loadu_epi8(mask, a.add(p)), off);
                let vb = _mm512_maskz_loadu_epi8(mask, b.add(p));
                acc0 = _mm512_dpbusd_epi32(acc0, va, vb);
            }
            let biased = _mm512_reduce_add_epi32(_mm512_add_epi32(acc0, acc1));
            let s = biased - 128 * bt.rowsums()[j];
            let v = sa * bt.scales()[j] * s as f32;
            if accumulate {
                *o += v;
            } else {
                *o = v;
            }
        }
    }
}

/// `out[i][j] = a.scale[i] · bt.scale[j] · Σ_k a[i][k] · bt[j][k]`.
///
/// `a` is row-quantized activations `(n × K)`, `bt` a column-quantized
/// weight matrix from [`QuantizedMatrix::from_cols`] `(m × K)`; `out`
/// has shape `(n, m)` and is fully overwritten. The i32 accumulation
/// is exact (see module docs), so all rounding error comes from the
/// two quantizations.
pub fn matmul_quant_into(a: &QuantizedMatrix, bt: &QuantizedMatrix, out: &mut Matrix) -> Result<()> {
    quant_mm(a, bt, out, false)
}

/// Accumulating form of [`matmul_quant_into`]: `out[i][j] += …`. Used
/// to fuse the root- and neighbour-weight products of a SAGE layer
/// without a second output buffer.
pub fn matmul_quant_acc(a: &QuantizedMatrix, bt: &QuantizedMatrix, out: &mut Matrix) -> Result<()> {
    quant_mm(a, bt, out, true)
}

fn quant_mm(
    a: &QuantizedMatrix,
    bt: &QuantizedMatrix,
    out: &mut Matrix,
    accumulate: bool,
) -> Result<()> {
    if a.cols != bt.cols || out.shape() != (a.rows, bt.rows) {
        return Err(ShapeError::new(format!(
            "quant matmul ({}x{}) x ({}x{})t into {:?}",
            a.rows,
            a.cols,
            bt.rows,
            bt.cols,
            out.shape()
        )));
    }
    let k = a.cols;
    let m = bt.rows;
    if k == 0 {
        // Empty reduction: the product is all zeros.
        if !accumulate {
            out.as_mut_slice().fill(0.0);
        }
        return Ok(());
    }
    let kernel = select_row_kernel();
    let out_slice = out.as_mut_slice();
    for (i, a_row) in a.data.chunks_exact(k.max(1)).enumerate().take(a.rows) {
        // `a_row` (K bytes) stays hot in L1 across the whole j sweep.
        let sa = a.scales[i];
        let o_row = &mut out_slice[i * m..(i + 1) * m];
        match kernel {
            RowKernel::Safe => quant_row_safe(a_row, sa, bt, o_row, accumulate),
            // SAFETY: select_row_kernel verified the required CPU
            // features at runtime.
            #[cfg(target_arch = "x86_64")]
            RowKernel::Madd512 => unsafe {
                x86::quant_row_madd(a_row, sa, bt, o_row, accumulate)
            },
            #[cfg(target_arch = "x86_64")]
            RowKernel::Vnni => unsafe {
                x86::quant_row_vnni(a_row, sa, bt, o_row, accumulate)
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_within_half_scale() {
        let m = Matrix::from_vec(2, 4, vec![1.0, -0.5, 0.25, 0.0, 100.0, -3.0, 7.5, 0.1]).unwrap();
        let q = QuantizedMatrix::quantize_rows(&m);
        for r in 0..2 {
            let s = q.scales()[r];
            for (c, &qc) in q.row(r).iter().enumerate() {
                let err = (m[(r, c)] - s * qc as f32).abs();
                assert!(err <= s / 2.0 + 1e-12, "row {r} col {c}: err {err} > s/2 {}", s / 2.0);
            }
        }
    }

    #[test]
    fn zero_row_gets_zero_scale_and_codes() {
        let m = Matrix::zeros(1, 5);
        let q = QuantizedMatrix::quantize_rows(&m);
        assert_eq!(q.scales(), &[0.0]);
        assert!(q.row(0).iter().all(|&v| v == 0));
    }

    #[test]
    fn quant_matmul_tracks_f32_within_bound() {
        let a = Matrix::from_fn(5, 33, |r, c| ((r * 31 + c * 7) % 17) as f32 * 0.21 - 1.6);
        let b = Matrix::from_fn(33, 6, |r, c| ((r * 13 + c * 5) % 23) as f32 * 0.09 - 1.0);
        let exact = a.matmul(&b).unwrap();
        let qa = QuantizedMatrix::quantize_rows(&a);
        let qbt = QuantizedMatrix::from_cols(&b);
        let mut got = Matrix::zeros(5, 6);
        matmul_quant_into(&qa, &qbt, &mut got).unwrap();
        for i in 0..5 {
            for j in 0..6 {
                let bound = 33.0 * qa.scales()[i] * qbt.scales()[j] * 127.25 + 1e-4;
                let err = (exact[(i, j)] - got[(i, j)]).abs();
                assert!(err <= bound, "({i},{j}): err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn acc_form_adds_onto_existing_values() {
        let a = Matrix::from_fn(3, 8, |r, c| (r + c) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(8, 3, |r, c| (r * c) as f32 * 0.1 - 0.4);
        let qa = QuantizedMatrix::quantize_rows(&a);
        let qbt = QuantizedMatrix::from_cols(&b);
        let mut once = Matrix::zeros(3, 3);
        matmul_quant_into(&qa, &qbt, &mut once).unwrap();
        let mut twice = once.clone();
        matmul_quant_acc(&qa, &qbt, &mut twice).unwrap();
        for (o, t) in once.as_slice().iter().zip(twice.as_slice()) {
            assert!((t - 2.0 * o).abs() <= 1e-5, "{t} vs 2*{o}");
        }
    }

    /// The SIMD quantizer must emit the same codes, scale and row sum
    /// as the portable magic-number path — both round ties-to-even
    /// from the same f32 product. Sweeps k across lane-width tails.
    #[test]
    fn quantize_paths_agree_bitwise() {
        for &k in &[1usize, 7, 15, 16, 17, 31, 32, 33, 59, 64, 100, 129] {
            let row: Vec<f32> = (0..k)
                .map(|i| {
                    if i % 5 == 3 { 0.0 } else { ((i * 37 + 11) % 83) as f32 * 0.047 - 1.9 }
                })
                .collect();
            let mut q_ref = vec![0i8; k];
            let scale_ref = quantize_row(&row, &mut q_ref);
            let sum_ref: i32 = q_ref.iter().map(|&v| v as i32).sum();
            let (scale, sum) = {
                let mut q = vec![0i8; k];
                let got = quantize_row_dispatch(&row, &mut q, simd_quantize_available());
                assert_eq!(q, q_ref, "codes diverged at k={k}");
                got
            };
            assert_eq!(scale.to_bits(), scale_ref.to_bits(), "scale diverged at k={k}");
            assert_eq!(sum, sum_ref, "rowsum diverged at k={k}");
            // All-zero rows keep the zero-scale contract on both paths.
            let zeros = vec![0.0f32; k];
            let mut qz = vec![1i8; k];
            let (sz, rz) = quantize_row_dispatch(&zeros, &mut qz, simd_quantize_available());
            assert_eq!((sz, rz), (0.0, 0));
            assert!(qz.iter().all(|&v| v == 0));
        }
    }

    /// Every SIMD row kernel must return *bit-identical* output to the
    /// portable one — the i32 reduction is exact, so any mismatch is a
    /// kernel bug, not rounding. Sweeps k across vector-width
    /// boundaries (tails of 0, 1, 15, 31, 63 … lanes).
    #[test]
    fn simd_paths_match_safe_kernel() {
        for &k in &[1usize, 7, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200] {
            let a = Matrix::from_fn(3, k, |r, c| ((r * 37 + c * 11) % 29) as f32 * 0.17 - 2.1);
            let b = Matrix::from_fn(k, 5, |r, c| ((r * 13 + c * 3) % 31) as f32 * 0.11 - 1.5);
            let qa = QuantizedMatrix::quantize_rows(&a);
            let qbt = QuantizedMatrix::from_cols(&b);
            let mut want = Matrix::from_fn(3, 5, |r, c| (r + 2 * c) as f32 * 0.5);
            let mut got = want.clone();
            for i in 0..3 {
                let (ar, sa) = (qa.row(i).to_vec(), qa.scales()[i]);
                quant_row_safe(&ar, sa, &qbt, &mut want.as_mut_slice()[i * 5..(i + 1) * 5], true);
            }
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512bw") {
                    let mut m = got.clone();
                    for i in 0..3 {
                        let row = &mut m.as_mut_slice()[i * 5..(i + 1) * 5];
                        unsafe { x86::quant_row_madd(qa.row(i), qa.scales()[i], &qbt, row, true) };
                    }
                    for (w, g) in want.as_slice().iter().zip(m.as_slice()) {
                        assert_eq!(w.to_bits(), g.to_bits(), "madd diverged at k={k}");
                    }
                }
                if std::arch::is_x86_feature_detected!("avx512vnni")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                {
                    let mut m = got.clone();
                    for i in 0..3 {
                        let row = &mut m.as_mut_slice()[i * 5..(i + 1) * 5];
                        unsafe { x86::quant_row_vnni(qa.row(i), qa.scales()[i], &qbt, row, true) };
                    }
                    for (w, g) in want.as_slice().iter().zip(m.as_slice()) {
                        assert_eq!(w.to_bits(), g.to_bits(), "vnni diverged at k={k}");
                    }
                }
            }
            // The dispatched entry point agrees with the safe path too.
            matmul_quant_acc(&qa, &qbt, &mut got).unwrap();
            for (w, g) in want.as_slice().iter().zip(got.as_slice()) {
                assert_eq!(w.to_bits(), g.to_bits(), "dispatch diverged at k={k}");
            }
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let qa = QuantizedMatrix::quantize_rows(&Matrix::zeros(2, 3));
        let qbt = QuantizedMatrix::from_cols(&Matrix::zeros(4, 2));
        let mut out = Matrix::zeros(2, 2);
        assert!(matmul_quant_into(&qa, &qbt, &mut out).is_err());
    }
}
