//! End-to-end equivalence gate for the incremental longitudinal
//! pipeline (`repro fig7|fig8 --incremental`).
//!
//! Two guarantees, pinned at the integration level:
//!
//! 1. The graph-construction path the study depends on still matches
//!    the committed golden TKG fingerprint of
//!    `tests/golden_fingerprint_test.rs` (node count, edge count,
//!    fnv1a of the sorted degree sequence over the RNG-free fixture
//!    world — generated worlds are RNG-dependent and must never be
//!    pinned as constants) — so when the equivalence assertion below
//!    fires, a drifted *input graph* and a broken *incremental path*
//!    are distinguishable at a glance.
//! 2. The incremental study (delta-merged CSR, per-node code cache,
//!    frozen base scalers, in-place label flips, fine-tune on the
//!    cached input matrix) produces a byte-identical [`StudyOutput`]
//!    to the full per-window rebuild, same seed.
//!
//! If a change intentionally reshapes the fixture graph, re-derive
//! the constants from the assertion message and say why in the
//! commit (update `tests/golden_fingerprint_test.rs` in lockstep).

use std::sync::Arc;

use rand::{rngs::StdRng, SeedableRng};
use trail::attribute::GnnEvalConfig;
use trail::longitudinal::{run_monthly_study, run_monthly_study_incremental, StudyConfig};
use trail::system::TrailSystem;
use trail_ioc::vocab::fnv1a;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{OsintClient, World, WorldConfig};

// Same constants as tests/golden_fingerprint_test.rs — the RNG-free
// fixture world.
const GOLDEN_NODES: usize = 22;
const GOLDEN_EDGES: usize = 43;
const GOLDEN_DEGREE_HASH: u64 = 0x1dd0_c32f_a8d2_9157;

fn study_system() -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(123))));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

fn study_cfg() -> StudyConfig {
    StudyConfig {
        months: 2,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 12,
            train: trail_gnn::TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
        fine_tune: trail_gnn::FineTune { lr: 0.01, epochs: 3 },
    }
}

fn fingerprint(sys: &TrailSystem) -> (usize, usize, u64) {
    let mut degrees: Vec<usize> =
        sys.tkg.graph.iter_nodes().map(|(id, _)| sys.tkg.graph.degree(id)).collect();
    degrees.sort_unstable();
    let joined = degrees.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
    (sys.tkg.graph.node_count(), sys.tkg.graph.edge_count(), fnv1a(&joined))
}

#[test]
fn base_tkg_construction_matches_committed_fingerprint() {
    // Fingerprint the RNG-free fixture world (generated worlds differ
    // between the real StdRng and the verification harness's stub RNG,
    // so their shapes must never be committed as constants).
    let client = OsintClient::new(Arc::new(World::fixture()));
    let cutoff = client.world().config.cutoff_day;
    let sys = TrailSystem::build(client, cutoff);
    let (nodes, edges, degree_hash) = fingerprint(&sys);
    assert_eq!(
        (nodes, edges, degree_hash),
        (GOLDEN_NODES, GOLDEN_EDGES, GOLDEN_DEGREE_HASH),
        "TKG construction drifted: nodes={nodes} edges={edges} degree_hash={degree_hash:#018x}"
    );
}

#[test]
fn incremental_equals_full_rebuild_byte_for_byte() {
    let cfg = study_cfg();
    let full = run_monthly_study(&mut StdRng::seed_from_u64(9), study_system(), &cfg);
    let (inc, timings) =
        run_monthly_study_incremental(&mut StdRng::seed_from_u64(9), study_system(), &cfg);
    assert_eq!(inc, full, "incremental study diverged from the full rebuild");
    // Belt and braces: the Debug rendering prints every float; equal
    // bytes here means equal bits everywhere it matters.
    assert_eq!(format!("{inc:?}"), format!("{full:?}"));
    assert_eq!(timings.len(), full.months.len(), "one timing record per window");
    for t in &timings {
        assert!(t.total_seconds >= t.prep_seconds, "prep is a subset of the window");
    }
}
