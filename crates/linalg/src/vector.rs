//! Slice-level numeric primitives shared by the ML and GNN crates.
//!
//! These keep the strictly sequential accumulation order the repo's
//! bitwise gates pin (a lane-split `dot` would reassociate the sum),
//! so they are deliberately *not* manually unrolled. Hot
//! matrix-shaped products no longer run through `dot` at all — they
//! go through the cache-blocked kernels in [`crate::kernels`], which
//! reach SIMD throughput without reordering any element's sum (see
//! DESIGN.md §11).

/// Dot product of two equal-length slices, accumulated left to right.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += k * x` for equal-length slices. Elementwise (no reduction),
/// so LLVM autovectorizes it as-is without changing any result bit.
#[inline]
pub fn axpy(k: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += k * xv;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Normalise to unit L2 norm in place; zero vectors are left untouched.
/// This is the stabilisation step of GraphSAGE (paper Eq. 4).
pub fn l2_normalize(a: &mut [f32]) {
    let n = norm2(a);
    if n > 1e-12 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Numerically stable softmax in place.
pub fn softmax_inplace(a: &mut [f32]) {
    if a.is_empty() {
        return;
    }
    let max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in a.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in a.iter_mut() {
            *x /= sum;
        }
    }
}

/// Index of the maximum element (first on ties); `None` when empty.
pub fn argmax(a: &[f32]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate().skip(1) {
        if x > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Mean of a slice; 0 when empty.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Shannon entropy (bits) of a probability distribution. Ignores zeros.
pub fn entropy(p: &[f32]) -> f32 {
    -p.iter().filter(|&&x| x > 0.0).map(|&x| x * x.log2()).sum::<f32>()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        assert_eq!(dot(&a, &a), 14.0);
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut a = [1000.0, 1001.0, 999.0];
        softmax_inplace(&mut a);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(a[1] > a[0] && a[0] > a[2]);
    }

    #[test]
    fn softmax_handles_empty_and_uniform() {
        let mut e: [f32; 0] = [];
        softmax_inplace(&mut e);
        let mut u = [0.0, 0.0];
        softmax_inplace(&mut u);
        assert_eq!(u, [0.5, 0.5]);
    }

    #[test]
    fn argmax_prefers_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax::<>(&[]), None);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let mut v = [3.0, 4.0];
        l2_normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-6);
        let mut z = [0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn entropy_of_uniform_is_log2_n() {
        let p = [0.25; 4];
        assert!((entropy(&p) - 2.0).abs() < 1e-6);
        assert_eq!(entropy(&[1.0]), 0.0);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
