#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== tests (ignored tier: overhead budget + large-scale reconciliation) =="
cargo test -q --workspace -- --include-ignored

echo "== quickstart smoke =="
cargo run --release --example quickstart >/dev/null

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --all -- --check

echo "tier-1 gate: OK"
