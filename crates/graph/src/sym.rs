//! String interning for node keys.
//!
//! The store used to key its dedup index on `(NodeKind, String)`,
//! which forced a `String` allocation on *every* lookup probe — the
//! enrichment hot loop probes far more often than it inserts. The
//! [`Interner`] assigns each distinct key text a dense [`Sym`] handle
//! (a `u32`), stores the text exactly once, and answers borrow-based
//! `&str` lookups without allocating: the probe hashes the borrowed
//! text with FNV-1a and compares it against the interned strings in an
//! open-addressed bucket table.
//!
//! Interning rules (see DESIGN.md §10): symbols are handed out in
//! first-appearance order and are never freed, so a `Sym` is a stable,
//! `Copy`, `Eq`/`Hash`-cheap identity for the lifetime of its interner.
//! Symbols are text-scoped, not kind-scoped — `"198.51.100.7"` as an
//! IP node and as a (pathological) domain node shares one symbol; the
//! `(NodeKind, Sym)` pair remains the node identity.

use serde::{Deserialize, Serialize};

use crate::persist::fnv1a_bytes;

/// An interned string handle: dense index into its [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym(u32);

impl Sym {
    /// Dense index of this symbol (0-based, first-appearance order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Sym {
    /// Symbols print as `sym#<index>`; resolving the text requires the
    /// owning [`Interner`] (see [`Interner::resolve`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// Bucket sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;

/// Grow when `len * 4 >= capacity * 3` (load factor 3/4).
#[inline]
fn needs_grow(len: usize, capacity: usize) -> bool {
    len * 4 >= capacity * 3
}

/// A deduplicating string table with allocation-free `&str` probes.
///
/// Only the string storage is serialized; the probe table is rebuilt
/// on demand (snapshots already rebuild all lookup indices on load —
/// see [`crate::GraphStore::rebuild_indices`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    buckets: Vec<u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `n` strings before rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let mut cap = 8usize;
        while needs_grow(n, cap) {
            cap *= 2;
        }
        Self { strings: Vec::with_capacity(n), buckets: vec![EMPTY; cap] }
    }

    /// Number of distinct strings interned.
    #[inline]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The text of a symbol.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Find the symbol of `text` if it was ever interned. Never
    /// allocates: the probe hashes the borrowed bytes and compares
    /// `&str` against the stored strings directly.
    pub fn lookup(&self, text: &str) -> Option<Sym> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut i = fnv1a_bytes(text.as_bytes()) as usize & mask;
        loop {
            match self.buckets[i] {
                EMPTY => return None,
                id if self.strings[id as usize] == text => return Some(Sym(id)),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Intern `text`, allocating its owned copy only on first sight.
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(sym) = self.lookup(text) {
            return sym;
        }
        let id = self.strings.len() as u32;
        assert!(id != EMPTY, "interner full");
        self.strings.push(text.to_owned());
        if needs_grow(self.strings.len(), self.buckets.len().max(1)) || self.buckets.is_empty() {
            self.rehash();
        } else {
            self.place(id);
        }
        Sym(id)
    }

    /// Rebuild the probe table from the string storage (after
    /// deserialisation, which skips the buckets).
    pub fn rebuild(&mut self) {
        self.rehash();
    }

    /// Drop a bucket id into its probe chain (slot must be free).
    fn place(&mut self, id: u32) {
        let mask = self.buckets.len() - 1;
        let mut i = fnv1a_bytes(self.strings[id as usize].as_bytes()) as usize & mask;
        while self.buckets[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.buckets[i] = id;
    }

    fn rehash(&mut self) {
        let mut cap = 8usize;
        while needs_grow(self.strings.len(), cap) {
            cap *= 2;
        }
        self.buckets.clear();
        self.buckets.resize(cap, EMPTY);
        for id in 0..self.strings.len() as u32 {
            self.place(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_roundtrips_and_dedups() {
        let mut it = Interner::new();
        let a = it.intern("evil.example");
        let b = it.intern("198.51.100.7");
        assert_ne!(a, b);
        assert_eq!(it.intern("evil.example"), a);
        assert_eq!(it.resolve(a), "evil.example");
        assert_eq!(it.resolve(b), "198.51.100.7");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn lookup_finds_only_interned_text() {
        let mut it = Interner::new();
        assert_eq!(it.lookup("anything"), None, "empty interner finds nothing");
        let a = it.intern("a.example");
        assert_eq!(it.lookup("a.example"), Some(a));
        assert_eq!(it.lookup("b.example"), None);
        assert_eq!(it.lookup(""), None);
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let mut it = Interner::new();
        let e = it.intern("");
        assert_eq!(it.resolve(e), "");
        assert_eq!(it.lookup(""), Some(e));
    }

    #[test]
    fn symbols_are_dense_and_stable_across_growth() {
        let mut it = Interner::new();
        let syms: Vec<Sym> = (0..1000).map(|i| it.intern(&format!("key-{i}"))).collect();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(s.index(), i, "symbols assigned in first-appearance order");
            assert_eq!(it.resolve(s), format!("key-{i}"));
            assert_eq!(it.lookup(&format!("key-{i}")), Some(s));
        }
        assert_eq!(it.len(), 1000);
    }

    #[test]
    fn rebuild_restores_probes() {
        let mut it = Interner::new();
        let a = it.intern("x.example");
        let b = it.intern("y.example");
        // Simulate deserialisation: storage intact, buckets gone.
        it.buckets.clear();
        assert_eq!(it.lookup("x.example"), None);
        it.rebuild();
        assert_eq!(it.lookup("x.example"), Some(a));
        assert_eq!(it.lookup("y.example"), Some(b));
        assert_eq!(it.intern("x.example"), a, "no duplicate after rebuild");
    }
}
