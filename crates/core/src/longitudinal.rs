//! The months-long study (paper Section VII-C, Figs. 7–8) and the
//! APT38 case study.
//!
//! Every month after the TKG build cutoff, new attributed reports
//! arrive. We evaluate two GNNs on each month's events: a *stale* model
//! frozen at the cutoff whose label view never grows, and a *fresh*
//! model that sees previous months' labels and is fine-tuned on them.
//! The paper observes the gap between the two growing ≈3.5 % per month.

use std::path::Path;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trail_gnn::train::predict_events;
use trail_gnn::{FineTune, SageConfig, SageModel};
use trail_graph::persist::fnv1a_bytes;
use trail_graph::{Csr, NodeId};
use trail_ioc::IocKind;
use trail_linalg::Matrix;
use trail_ml::metrics::{accuracy, balanced_accuracy, ConfusionMatrix};
use trail_ml::nn::autoencoder::{Autoencoder, AutoencoderConfig};
use trail_osint::{OsintClient, DAYS_PER_MONTH};

use crate::attribute::GnnEvalConfig;
use crate::checkpoint::{self, CheckpointError, StudyCheckpoint};
use crate::embed::{
    assemble_gnn_input, assemble_gnn_input_from, compute_codes, compute_codes_with,
    train_autoencoders, train_autoencoders_with_scalers, CodeCache, NodeEmbeddings, SparseScaler,
};
use crate::enrich::IngestStats;
use crate::system::TrailSystem;
use crate::tkg::Tkg;

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Months to run.
    pub months: u32,
    /// GNN depth.
    pub gnn_layers: usize,
    /// GNN width/training parameters.
    pub gnn: GnnEvalConfig,
    /// Autoencoder parameters for the base embedding.
    pub ae: AutoencoderConfig,
    /// Fine-tuning parameters for the fresh model.
    pub fine_tune: FineTune,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            months: 6,
            gnn_layers: 3,
            gnn: GnnEvalConfig::default(),
            ae: AutoencoderConfig { epochs: 6, ..Default::default() },
            fine_tune: FineTune::default(),
        }
    }
}

/// One month's evaluation (a point on each Fig. 8 series).
#[derive(Debug, Clone, PartialEq)]
pub struct MonthResult {
    /// Month index (0 = first month after cutoff).
    pub month: u32,
    /// Events evaluated.
    pub n_events: usize,
    /// Stale-model accuracy.
    pub stale_acc: f64,
    /// Stale-model balanced accuracy.
    pub stale_bacc: f64,
    /// Fresh (updated + fine-tuned) model accuracy.
    pub fresh_acc: f64,
    /// Fresh-model balanced accuracy.
    pub fresh_bacc: f64,
}

/// Full study output.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyOutput {
    /// Per-month series.
    pub months: Vec<MonthResult>,
    /// Fig. 7: confusion matrix of the stale model on the first month.
    pub first_month_confusion: ConfusionMatrix,
    /// Class names for rendering the confusion matrix.
    pub class_names: Vec<String>,
    /// Aggregate enrichment taxonomy over the study's window ingests
    /// (the monthly updates, not the base build).
    pub ingest: IngestStats,
}

/// Per-window wall clock of one study run. Reported alongside the
/// output (never inside [`StudyOutput`], which is compared bit for bit
/// across modes) so the benchmark can contrast full rebuilds with the
/// cached path.
#[derive(Debug, Clone)]
pub struct WindowTiming {
    /// Month index.
    pub month: u32,
    /// Seconds spent preparing GNN inputs: CSR freeze or delta-merge,
    /// code computation, input-matrix assembly or maintenance.
    pub prep_seconds: f64,
    /// Seconds for the whole window including predictions and the
    /// fine-tune epochs.
    pub total_seconds: f64,
}

/// Run the monthly study. Consumes the system (the TKG grows month by
/// month).
pub fn run_monthly_study<R: Rng + ?Sized>(
    rng: &mut R,
    sys: TrailSystem,
    cfg: &StudyConfig,
) -> StudyOutput {
    run_monthly_study_mode(rng, sys, cfg, false).0
}

/// [`run_monthly_study`] on the incremental path: per window, the CSR
/// is delta-merged instead of refrozen, node codes come from a
/// fingerprint-keyed row cache instead of a full re-encode, and one
/// reusable GNN input matrix is grown and label-flipped instead of
/// being assembled three times. The [`StudyOutput`] is bitwise
/// identical to the full-rebuild path.
pub fn run_monthly_study_incremental<R: Rng + ?Sized>(
    rng: &mut R,
    sys: TrailSystem,
    cfg: &StudyConfig,
) -> (StudyOutput, Vec<WindowTiming>) {
    run_monthly_study_mode(rng, sys, cfg, true)
}

/// Shared study driver; `incremental` switches the per-window input
/// preparation between full rebuilds and the cached path.
///
/// Both modes freeze the scalers fitted on the base TKG for the whole
/// study, so an existing node's code never changes as the graph grows
/// (features are first-write-wins). That stability is what the
/// incremental mode's row cache and reusable input matrix rely on; the
/// full mode uses the same frozen scalers so the two paths stay
/// comparable bit for bit.
pub fn run_monthly_study_mode<R: Rng + ?Sized>(
    rng: &mut R,
    mut sys: TrailSystem,
    cfg: &StudyConfig,
    incremental: bool,
) -> (StudyOutput, Vec<WindowTiming>) {
    let cutoff = sys.asof_day;
    // Base embeddings + base model trained on everything before cutoff.
    let (_, encoders, scalers) = train_autoencoders_with_scalers(rng, &sys.tkg, &cfg.ae);
    let code_dim = encoders.first().map_or(0, |ae| ae.code_dim());
    let base_pairs: Vec<(NodeId, u16)> =
        sys.tkg.events.iter().map(|e| (e.node, e.apt)).collect();
    let masking = trail_gnn::LabelMasking { offset: code_dim + 5, visible_fraction: 0.5 };

    let train_model = |rng: &mut R, sys: &TrailSystem| -> SageModel {
        let emb = compute_codes_with(&sys.tkg, &encoders, &scalers, cfg.ae.batch_size);
        let mut x = assemble_gnn_input(&sys.tkg, &emb, &base_pairs);
        let csr = sys.tkg.csr();
        let sage_cfg = SageConfig {
            input_dim: x.cols(),
            hidden: cfg.gnn.hidden,
            layers: cfg.gnn_layers,
            n_classes: sys.tkg.n_classes(),
            l2_normalize: cfg.gnn.l2_normalize,
        };
        let (model, _) = trail_gnn::train_sage_masked(
            rng, &csr, &mut x, sage_cfg, &base_pairs, &[], &cfg.gnn.train, masking,
        );
        model
    };
    let mut stale_model = train_model(rng, &sys);
    // The fresh model starts as a copy of the same training procedure;
    // cloning weights via retraining with the same seed stream is
    // unnecessary — fine-tuning evolves it from the same starting point.
    let mut fresh_model = train_model(rng, &sys);

    let mut months = Vec::new();
    let mut timings = Vec::new();
    let mut window_ingest = IngestStats::default();
    let mut confusion: Option<ConfusionMatrix> = None;
    // Labels visible to the fresh model: base events + past study months.
    let mut fresh_visible = base_pairs.clone();

    // Incremental state: the frozen CSR the next window delta-merges
    // from, the code row cache, and the one reusable input matrix whose
    // label block always equals `fresh_visible` between windows.
    let mut inc_csr = if incremental { Some(sys.tkg.csr()) } else { None };
    let mut code_cache = CodeCache::new();
    let mut inc_x: Option<Matrix> = None;
    if incremental {
        code_cache.refresh(&sys.tkg, &encoders, &scalers, cfg.ae.batch_size);
        inc_x =
            Some(assemble_gnn_input_from(&sys.tkg, code_cache.codes(), code_dim, &fresh_visible));
    }
    let label_col = |label: u16| code_dim + 5 + label as usize;

    for month in 0..cfg.months {
        let t_window = Instant::now();
        let lo = cutoff + month * DAYS_PER_MONTH;
        let hi = lo + DAYS_PER_MONTH;
        let ingested = sys.ingest_window(lo, hi);
        if ingested.is_empty() {
            continue;
        }
        for (_, s) in &ingested {
            window_ingest.absorb(s);
        }
        let month_events: Vec<(NodeId, u16)> = ingested
            .iter()
            .map(|(e, _)| {
                let info = sys.tkg.event_by_report(&e.report.id).expect("just ingested");
                (info.node, info.apt)
            })
            .collect();
        let truth: Vec<u16> = month_events.iter().map(|&(_, c)| c).collect();
        let targets: Vec<NodeId> = month_events.iter().map(|&(n, _)| n).collect();

        let mut prep = 0.0f64;
        let csr: Csr;
        let mut full_emb: Option<NodeEmbeddings> = None;
        let stale_hard: Vec<u16>;
        let fresh_hard: Vec<u16>;
        if incremental {
            let t = Instant::now();
            csr = inc_csr.take().expect("seeded before the loop").merge_appended(&sys.tkg.graph);
            let recomputed = code_cache.refresh(&sys.tkg, &encoders, &scalers, cfg.ae.batch_size);
            let x = inc_x.as_mut().expect("seeded before the loop");
            // Grow the input matrix: new rows get their code + kind
            // blocks, and any recomputed cache row is resynced (with
            // frozen scalers that only ever means brand-new nodes).
            let old_rows = x.rows();
            let n = sys.tkg.graph.node_count();
            if n > old_rows {
                let mut grown = Matrix::zeros(n, x.cols());
                for i in 0..old_rows {
                    grown.row_mut(i).copy_from_slice(x.row(i));
                }
                *x = grown;
            }
            for i in old_rows..n {
                let row = x.row_mut(i);
                row[..code_dim].copy_from_slice(code_cache.codes().row(i));
                row[code_dim + sys.tkg.graph.node(NodeId::from(i)).kind.index()] = 1.0;
            }
            for i in recomputed {
                if i < old_rows {
                    x.row_mut(i)[..code_dim].copy_from_slice(code_cache.codes().row(i));
                }
            }
            prep += t.elapsed().as_secs_f64();

            // Fresh model first: the label block already equals
            // `fresh_visible`. (Both predictions are rng-free, so the
            // order swap relative to the full path changes nothing.)
            let fresh_preds = predict_events(&mut fresh_model, &csr, x, &targets);
            fresh_hard = fresh_preds.iter().map(|&(c, _)| c).collect();

            // Stale view: hide the post-base labels, predict, restore.
            let t = Instant::now();
            for &(node, label) in &fresh_visible[base_pairs.len()..] {
                x[(node.index(), label_col(label))] = 0.0;
            }
            prep += t.elapsed().as_secs_f64();
            let stale_preds = predict_events(&mut stale_model, &csr, x, &targets);
            stale_hard = stale_preds.iter().map(|&(c, _)| c).collect();
            let t = Instant::now();
            for &(node, label) in &fresh_visible[base_pairs.len()..] {
                x[(node.index(), label_col(label))] = 1.0;
            }
            prep += t.elapsed().as_secs_f64();
        } else {
            let t = Instant::now();
            csr = sys.tkg.csr();
            let emb = compute_codes_with(&sys.tkg, &encoders, &scalers, cfg.ae.batch_size);

            // Stale model: only the base labels are visible.
            let x_stale = assemble_gnn_input(&sys.tkg, &emb, &base_pairs);
            prep += t.elapsed().as_secs_f64();
            let stale_preds = predict_events(&mut stale_model, &csr, &x_stale, &targets);
            stale_hard = stale_preds.iter().map(|&(c, _)| c).collect();

            // Fresh model: past months' labels visible.
            let t = Instant::now();
            let x_fresh = assemble_gnn_input(&sys.tkg, &emb, &fresh_visible);
            prep += t.elapsed().as_secs_f64();
            let fresh_preds = predict_events(&mut fresh_model, &csr, &x_fresh, &targets);
            fresh_hard = fresh_preds.iter().map(|&(c, _)| c).collect();
            full_emb = Some(emb);
        }

        let k = sys.tkg.n_classes();
        months.push(MonthResult {
            month,
            n_events: truth.len(),
            stale_acc: accuracy(&truth, &stale_hard),
            stale_bacc: balanced_accuracy(&truth, &stale_hard, k),
            fresh_acc: accuracy(&truth, &fresh_hard),
            fresh_bacc: balanced_accuracy(&truth, &fresh_hard, k),
        });
        if confusion.is_none() {
            confusion = Some(ConfusionMatrix::from_predictions(&truth, &stale_hard, k));
        }

        // Month end: the fresh model learns this month's labels.
        fresh_visible.extend(month_events.iter().copied());
        if incremental {
            let x = inc_x.as_mut().expect("seeded before the loop");
            let t = Instant::now();
            for &(node, label) in &month_events {
                x[(node.index(), label_col(label))] = 1.0;
            }
            prep += t.elapsed().as_secs_f64();
            // `fine_tune_masked` hides and restores target labels per
            // epoch, so the matrix leaves the window with its label
            // block equal to the extended `fresh_visible` — the loop
            // invariant the next window's flips depend on.
            trail_gnn::train::fine_tune_masked(
                rng, &mut fresh_model, &csr, x, &month_events, &cfg.fine_tune, masking,
            );
            inc_csr = Some(csr);
        } else {
            let emb = full_emb.take().expect("set in the full branch");
            let t = Instant::now();
            let mut x_ft = assemble_gnn_input(&sys.tkg, &emb, &fresh_visible);
            prep += t.elapsed().as_secs_f64();
            trail_gnn::train::fine_tune_masked(
                rng, &mut fresh_model, &csr, &mut x_ft, &month_events, &cfg.fine_tune, masking,
            );
        }
        timings.push(WindowTiming {
            month,
            prep_seconds: prep,
            total_seconds: t_window.elapsed().as_secs_f64(),
        });
    }

    let output = StudyOutput {
        months,
        first_month_confusion: confusion
            .unwrap_or_else(|| ConfusionMatrix::from_predictions(&[], &[], sys.tkg.n_classes())),
        class_names: sys.tkg.registry.names().to_vec(),
        ingest: window_ingest,
    };
    (output, timings)
}

// ---------------------------------------------------------------------------
// Crash-safe resumable study
// ---------------------------------------------------------------------------

/// Stage indices for [`stage_rng`]: every training stage of the
/// resumable study derives its own generator from `(study seed, stage)`
/// so a resumed run reconstructs exactly the stream an uninterrupted
/// run would use at that point — no generator state on disk.
const STAGE_AE: u64 = 0;
const STAGE_STALE: u64 = 1;
const STAGE_FRESH: u64 = 2;
/// Month `m`'s fine-tune uses stage `STAGE_MONTH_BASE + m`.
const STAGE_MONTH_BASE: u64 = 16;

/// splitmix64 finalizer: decorrelates the per-stage seeds so stage 0
/// of seed 1 and stage 1 of seed 0 don't collide.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The generator for one training stage of a resumable study.
pub fn stage_rng(seed: u64, stage: u64) -> StdRng {
    StdRng::seed_from_u64(mix64(seed ^ stage.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Fingerprint of everything that shapes a study run: the world seed,
/// the build cutoff and every study hyper-parameter. A checkpoint with
/// a different fingerprint is rejected instead of silently blended
/// into a differently-configured run.
fn study_fingerprint(cfg: &StudyConfig, world_seed: u64, cutoff: u32) -> u64 {
    let mut b = Vec::with_capacity(96);
    b.extend_from_slice(&world_seed.to_le_bytes());
    b.extend_from_slice(&cutoff.to_le_bytes());
    b.extend_from_slice(&cfg.months.to_le_bytes());
    b.extend_from_slice(&(cfg.gnn_layers as u64).to_le_bytes());
    b.extend_from_slice(&(cfg.gnn.hidden as u64).to_le_bytes());
    b.extend_from_slice(&cfg.gnn.train.lr.to_bits().to_le_bytes());
    b.extend_from_slice(&(cfg.gnn.train.epochs as u64).to_le_bytes());
    b.extend_from_slice(&(cfg.gnn.train.patience as u64).to_le_bytes());
    b.extend_from_slice(&cfg.gnn.val_fraction.to_bits().to_le_bytes());
    b.push(cfg.gnn.l2_normalize as u8);
    b.extend_from_slice(&cfg.gnn.label_visible_fraction.to_bits().to_le_bytes());
    b.extend_from_slice(&(cfg.ae.hidden as u64).to_le_bytes());
    b.extend_from_slice(&(cfg.ae.code as u64).to_le_bytes());
    b.extend_from_slice(&cfg.ae.lr.to_bits().to_le_bytes());
    b.extend_from_slice(&(cfg.ae.epochs as u64).to_le_bytes());
    b.extend_from_slice(&(cfg.ae.batch_size as u64).to_le_bytes());
    b.extend_from_slice(&cfg.fine_tune.lr.to_bits().to_le_bytes());
    b.extend_from_slice(&(cfg.fine_tune.epochs as u64).to_le_bytes());
    fnv1a_bytes(&b)
}

fn encode_pairs(pairs: &[(NodeId, u16)]) -> Vec<(u32, u16)> {
    pairs.iter().map(|&(n, c)| (n.index() as u32, c)).collect()
}

fn decode_pairs(pairs: &[(u32, u16)]) -> Vec<(NodeId, u16)> {
    pairs.iter().map(|&(n, c)| (NodeId::from(n as usize), c)).collect()
}

fn clone_sage_layers(model: &SageModel) -> Vec<(Matrix, Matrix, Matrix)> {
    model.weights().into_iter().map(|(wr, wn, b)| (wr.clone(), wn.clone(), b.clone())).collect()
}

fn restore_sage(cfg: SageConfig, layers: &[(Matrix, Matrix, Matrix)]) -> SageModel {
    // The skeleton's random init is immediately overwritten.
    let mut model = SageModel::new(&mut stage_rng(0, 0), cfg);
    for (l, (wr, wn, b)) in layers.iter().enumerate() {
        model.set_layer_weights(l, wr.clone(), wn.clone(), b.clone());
    }
    model
}

fn clone_encoder_layers(encoders: &[Autoencoder]) -> Vec<Vec<(Matrix, Matrix)>> {
    encoders
        .iter()
        .map(|ae| ae.layer_params().into_iter().map(|(w, b)| (w.clone(), b.clone())).collect())
        .collect()
}

fn restore_autoencoder(layers: &[(Matrix, Matrix)]) -> checkpoint::Result<Autoencoder> {
    if layers.len() != 4 {
        return Err(CheckpointError::Mismatch { what: "autoencoder layer count" });
    }
    // Recover the architecture from the weight shapes: enc1 is
    // (d_in × hidden), enc2 is (hidden × code).
    let d_in = layers[0].0.rows();
    let cfg = AutoencoderConfig {
        hidden: layers[0].0.cols(),
        code: layers[1].0.cols(),
        ..Default::default()
    };
    let mut ae = Autoencoder::new(&mut stage_rng(0, 0), d_in, &cfg);
    for (l, (w, b)) in layers.iter().enumerate() {
        ae.set_layer_params(l, w.clone(), b.clone());
    }
    Ok(ae)
}

/// Run the monthly study with a crash-safe checkpoint after every
/// window, resuming from `dir` when a checkpoint is already there.
///
/// Determinism contract: for a fixed `(client world, cutoff, cfg,
/// seed)`, any sequence of kills and resumes produces a `StudyOutput`
/// bitwise-identical to an uninterrupted run. Training stages draw
/// from [`stage_rng`] rather than one threaded generator, and already
/// completed windows are replayed into the TKG on resume (the world's
/// faults and gaps are deterministic per query, so the replayed graph
/// is exact) while their statistics come from the checkpoint.
///
/// `kill_after_window: Some(m)` simulates a crash: the run stops right
/// after window `m`'s checkpoint is durably on disk and returns
/// `Ok(None)`. The chaos harness drives this from
/// [`trail_osint::ChaosPlan::kill_windows`].
pub fn run_resumable_study(
    client: OsintClient,
    cutoff: u32,
    cfg: &StudyConfig,
    seed: u64,
    dir: &Path,
    kill_after_window: Option<u32>,
) -> checkpoint::Result<Option<StudyOutput>> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CheckpointError::Persist(trail_graph::PersistError::Io(e)))?;
    let ckpt_path = dir.join("study.ckpt");
    let fingerprint = study_fingerprint(cfg, client.world().config.seed, cutoff);

    let prior = if ckpt_path.exists() { Some(StudyCheckpoint::load(&ckpt_path)?) } else { None };

    // The base build is deterministic, so fresh and resumed runs start
    // from the identical TKG.
    let mut sys = TrailSystem::build(client, cutoff);
    let base_pairs: Vec<(NodeId, u16)> =
        sys.tkg.events.iter().map(|e| (e.node, e.apt)).collect();
    // Scalers are fitted on the base TKG and frozen for every window —
    // the monthly study's contract. Refitting here (before any window
    // replay) reproduces them exactly on resume, so they never need to
    // be checkpointed.
    let base_scalers: Vec<SparseScaler> = IocKind::ALL
        .iter()
        .map(|&k| SparseScaler::fit(&sys.tkg.featured_nodes(k), Tkg::dims_of(k)))
        .collect();

    let encoders: Vec<Autoencoder>;
    let mut stale_model: SageModel;
    let mut fresh_model: SageModel;
    let mut months: Vec<MonthResult>;
    let mut confusion: Option<ConfusionMatrix>;
    let mut window_ingest: IngestStats;
    let mut fresh_visible: Vec<(NodeId, u16)>;
    let start_month: u32;

    match prior {
        Some(ck) => {
            if ck.fingerprint != fingerprint {
                return Err(CheckpointError::Mismatch { what: "run fingerprint" });
            }
            if ck.seed != seed {
                return Err(CheckpointError::Mismatch { what: "study seed" });
            }
            if ck.base_pairs != encode_pairs(&base_pairs) {
                return Err(CheckpointError::Mismatch { what: "base event labels" });
            }
            // Replay completed windows into the TKG; their statistics
            // are already aggregated in the checkpoint.
            for m in 0..ck.next_month {
                let lo = cutoff + m * DAYS_PER_MONTH;
                sys.ingest_window(lo, lo + DAYS_PER_MONTH);
            }
            encoders = ck
                .encoders
                .iter()
                .map(|l| restore_autoencoder(l))
                .collect::<checkpoint::Result<_>>()?;
            stale_model = restore_sage(ck.sage_cfg, &ck.stale);
            fresh_model = restore_sage(ck.sage_cfg, &ck.fresh);
            months = ck.months;
            confusion = ck.confusion;
            window_ingest = ck.window_ingest;
            fresh_visible = decode_pairs(&ck.fresh_visible);
            start_month = ck.next_month;
        }
        None => {
            let (_, enc) = train_autoencoders(&mut stage_rng(seed, STAGE_AE), &sys.tkg, &cfg.ae);
            encoders = enc;
            let train_model = |rng: &mut StdRng| -> SageModel {
                let emb = compute_codes_with(&sys.tkg, &encoders, &base_scalers, cfg.ae.batch_size);
                let mut x = assemble_gnn_input(&sys.tkg, &emb, &base_pairs);
                let csr = sys.tkg.csr();
                let sage_cfg = SageConfig {
                    input_dim: x.cols(),
                    hidden: cfg.gnn.hidden,
                    layers: cfg.gnn_layers,
                    n_classes: sys.tkg.n_classes(),
                    l2_normalize: cfg.gnn.l2_normalize,
                };
                let masking =
                    trail_gnn::LabelMasking { offset: emb.code_dim + 5, visible_fraction: 0.5 };
                let (model, _) = trail_gnn::train_sage_masked(
                    rng, &csr, &mut x, sage_cfg, &base_pairs, &[], &cfg.gnn.train, masking,
                );
                model
            };
            stale_model = train_model(&mut stage_rng(seed, STAGE_STALE));
            fresh_model = train_model(&mut stage_rng(seed, STAGE_FRESH));
            months = Vec::new();
            confusion = None;
            window_ingest = IngestStats::default();
            fresh_visible = base_pairs.clone();
            start_month = 0;
            // Checkpoint the trained base state so a crash before the
            // first window completes doesn't redo the training.
            StudyCheckpoint {
                seed,
                fingerprint,
                next_month: 0,
                months: months.clone(),
                confusion: confusion.clone(),
                window_ingest: window_ingest.clone(),
                base_pairs: encode_pairs(&base_pairs),
                fresh_visible: encode_pairs(&fresh_visible),
                sage_cfg: *stale_model.config(),
                stale: clone_sage_layers(&stale_model),
                fresh: clone_sage_layers(&fresh_model),
                encoders: clone_encoder_layers(&encoders),
            }
            .save(&ckpt_path)?;
        }
    }

    for month in start_month..cfg.months {
        let lo = cutoff + month * DAYS_PER_MONTH;
        let hi = lo + DAYS_PER_MONTH;
        let ingested = sys.ingest_window(lo, hi);
        if !ingested.is_empty() {
            for (_, s) in &ingested {
                window_ingest.absorb(s);
            }
            let month_events: Vec<(NodeId, u16)> = ingested
                .iter()
                .map(|(e, _)| {
                    let info = sys.tkg.event_by_report(&e.report.id).expect("just ingested");
                    (info.node, info.apt)
                })
                .collect();
            let truth: Vec<u16> = month_events.iter().map(|&(_, c)| c).collect();
            let targets: Vec<NodeId> = month_events.iter().map(|&(n, _)| n).collect();
            let csr = sys.tkg.csr();
            let emb = compute_codes_with(&sys.tkg, &encoders, &base_scalers, cfg.ae.batch_size);

            let x_stale = assemble_gnn_input(&sys.tkg, &emb, &base_pairs);
            let stale_preds = predict_events(&mut stale_model, &csr, &x_stale, &targets);
            let stale_hard: Vec<u16> = stale_preds.iter().map(|&(c, _)| c).collect();

            let x_fresh = assemble_gnn_input(&sys.tkg, &emb, &fresh_visible);
            let fresh_preds = predict_events(&mut fresh_model, &csr, &x_fresh, &targets);
            let fresh_hard: Vec<u16> = fresh_preds.iter().map(|&(c, _)| c).collect();

            let k = sys.tkg.n_classes();
            months.push(MonthResult {
                month,
                n_events: truth.len(),
                stale_acc: accuracy(&truth, &stale_hard),
                stale_bacc: balanced_accuracy(&truth, &stale_hard, k),
                fresh_acc: accuracy(&truth, &fresh_hard),
                fresh_bacc: balanced_accuracy(&truth, &fresh_hard, k),
            });
            if confusion.is_none() {
                confusion = Some(ConfusionMatrix::from_predictions(&truth, &stale_hard, k));
            }

            fresh_visible.extend(month_events.iter().copied());
            let mut x_ft = assemble_gnn_input(&sys.tkg, &emb, &fresh_visible);
            let masking =
                trail_gnn::LabelMasking { offset: emb.code_dim + 5, visible_fraction: 0.5 };
            trail_gnn::train::fine_tune_masked(
                &mut stage_rng(seed, STAGE_MONTH_BASE + month as u64),
                &mut fresh_model,
                &csr,
                &mut x_ft,
                &month_events,
                &cfg.fine_tune,
                masking,
            );
        }

        StudyCheckpoint {
            seed,
            fingerprint,
            next_month: month + 1,
            months: months.clone(),
            confusion: confusion.clone(),
            window_ingest: window_ingest.clone(),
            base_pairs: encode_pairs(&base_pairs),
            fresh_visible: encode_pairs(&fresh_visible),
            sage_cfg: *stale_model.config(),
            stale: clone_sage_layers(&stale_model),
            fresh: clone_sage_layers(&fresh_model),
            encoders: clone_encoder_layers(&encoders),
        }
        .save(&ckpt_path)?;

        if kill_after_window == Some(month) {
            return Ok(None);
        }
    }

    Ok(Some(StudyOutput {
        months,
        first_month_confusion: confusion
            .unwrap_or_else(|| ConfusionMatrix::from_predictions(&[], &[], sys.tkg.n_classes())),
        class_names: sys.tkg.registry.names().to_vec(),
        ingest: window_ingest,
    }))
}

// ---------------------------------------------------------------------------
// Case study (Section VII-C, Figs. 5–6)
// ---------------------------------------------------------------------------

/// The case-study report on a single fresh event.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Report id of the studied event.
    pub report_id: String,
    /// Ground-truth APT name.
    pub true_apt: String,
    /// IOCs listed in the raw report.
    pub reported_iocs: usize,
    /// Total IOCs after enrichment (2-hop neighbourhood size).
    pub neighborhood_iocs: usize,
    /// Attributed events exactly 2 hops away.
    pub events_2hop: usize,
    /// Attributed events within 3 hops.
    pub events_3hop: usize,
    /// Label-propagation attribution (APT name), if reachable.
    pub lp_prediction: Option<String>,
    /// GNN prediction with neighbour labels masked: `(APT, confidence)`.
    pub gnn_masked: (String, f32),
    /// GNN prediction with neighbour labels visible.
    pub gnn_visible: (String, f32),
}

/// Run the case study: ingest one post-cutoff event, inspect its
/// neighbourhood, attribute it with LP and the GNN with/without
/// neighbour labels.
pub fn case_study<R: Rng + ?Sized>(
    rng: &mut R,
    mut sys: TrailSystem,
    cfg: &StudyConfig,
    preferred_apt: &str,
) -> Option<CaseStudy> {
    let cutoff = sys.asof_day;
    let horizon = sys.client.world().config.horizon_day();
    // Train the base model first.
    let (_, encoders) = train_autoencoders(rng, &sys.tkg, &cfg.ae);
    let base_pairs: Vec<(NodeId, u16)> =
        sys.tkg.events.iter().map(|e| (e.node, e.apt)).collect();

    // Find and ingest exactly one new event (preferring the requested
    // APT, mirroring the paper's APT38 pick).
    let candidates = sys.client.events_between(cutoff, horizon);
    let registry = sys.tkg.registry.clone();
    let preferred_label = registry.resolve(preferred_apt);
    let pick = candidates
        .iter()
        .find(|r| {
            r.tags.iter().filter_map(|t| registry.resolve(t)).any(|l| Some(l) == preferred_label)
        })
        .or_else(|| candidates.first())?
        .clone();
    let (collected, _) = crate::collector::collect(std::slice::from_ref(&pick), &registry);
    let event = collected.into_iter().next()?;
    let reported_iocs = event.report.iocs.len();
    let enricher = crate::enrich::Enricher::new(&sys.client, horizon);
    enricher.ingest(&mut sys.tkg, &event);
    let info = sys.tkg.event_by_report(&event.report.id)?.clone();

    let csr = sys.tkg.csr();
    let hood2 = trail_graph::algo::k_hop(&csr, &[info.node], 2);
    let neighborhood_iocs = hood2
        .iter()
        .filter(|&&(n, _)| {
            !matches!(sys.tkg.graph.node(n).kind, trail_graph::NodeKind::Event)
        })
        .count();
    let events_at = |radius: u32| {
        trail_graph::algo::k_hop(&csr, &[info.node], radius)
            .iter()
            .filter(|&&(n, d)| {
                d > 0 && matches!(sys.tkg.graph.node(n).kind, trail_graph::NodeKind::Event)
            })
            .count()
    };
    let events_2hop = events_at(2);
    let events_3hop = events_at(3);

    // Label propagation with all base labels as seeds.
    let lp = trail_gnn::LabelPropagation::new(&csr, sys.tkg.n_classes());
    let mut seeds = vec![None; sys.tkg.graph.node_count()];
    for &(n, c) in &base_pairs {
        seeds[n.index()] = Some(c);
    }
    let lp_prediction = lp.predict(&seeds, 4, &[info.node])[0]
        .map(|c| registry.name(c).to_owned());

    // GNN trained on the base TKG.
    let emb = compute_codes(&sys.tkg, &encoders, cfg.ae.batch_size);
    let x_masked = assemble_gnn_input(&sys.tkg, &emb, &[]);
    let sage_cfg = SageConfig {
        input_dim: x_masked.cols(),
        hidden: cfg.gnn.hidden,
        layers: cfg.gnn_layers,
        n_classes: sys.tkg.n_classes(),
        l2_normalize: cfg.gnn.l2_normalize,
    };
    let mut x_train = assemble_gnn_input(&sys.tkg, &emb, &base_pairs);
    let masking = trail_gnn::LabelMasking { offset: emb.code_dim + 5, visible_fraction: 0.5 };
    let (mut model, _) = trail_gnn::train_sage_masked(
        rng, &csr, &mut x_train, sage_cfg, &base_pairs, &[], &cfg.gnn.train, masking,
    );

    let masked = predict_events(&mut model, &csr, &x_masked, &[info.node])[0];
    let visible = predict_events(&mut model, &csr, &x_train, &[info.node])[0];

    Some(CaseStudy {
        report_id: info.report_id.clone(),
        true_apt: registry.name(info.apt).to_owned(),
        reported_iocs,
        neighborhood_iocs,
        events_2hop,
        events_3hop,
        lp_prediction,
        gnn_masked: (registry.name(masked.0).to_owned(), masked.1),
        gnn_visible: (registry.name(visible.0).to_owned(), visible.1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::sync::Arc;
    use trail_osint::{OsintClient, World, WorldConfig};

    fn tiny_sys() -> TrailSystem {
        let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(123))));
        let cutoff = client.world().config.cutoff_day;
        TrailSystem::build(client, cutoff)
    }

    fn tiny_cfg() -> StudyConfig {
        StudyConfig {
            months: 2,
            gnn_layers: 2,
            gnn: GnnEvalConfig {
                hidden: 12,
                train: trail_gnn::TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
                val_fraction: 0.0,
                l2_normalize: true,
                label_visible_fraction: 0.5,
                sampled_neighbor_cap: None,
            },
            ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
            fine_tune: FineTune { lr: 0.01, epochs: 3 },
        }
    }

    #[test]
    fn monthly_study_produces_series() {
        let mut rng = StdRng::seed_from_u64(9);
        let out = run_monthly_study(&mut rng, tiny_sys(), &tiny_cfg());
        assert!(!out.months.is_empty());
        for m in &out.months {
            assert!(m.n_events > 0);
            assert!((0.0..=1.0).contains(&m.stale_acc));
            assert!((0.0..=1.0).contains(&m.fresh_acc));
        }
        assert_eq!(out.class_names.len(), 4);
        assert!(out.ingest.first_order > 0, "study windows ingested no IOCs");
        // The confusion matrix covers the first month's events.
        let total: usize = (0..4)
            .flat_map(|t| (0..4).map(move |p| (t, p)))
            .map(|(t, p)| out.first_month_confusion.get(t, p))
            .sum();
        assert_eq!(total, out.months[0].n_events);
    }

    #[test]
    fn incremental_study_is_bitwise_identical_to_full() {
        let cfg = tiny_cfg();
        let full = run_monthly_study(&mut StdRng::seed_from_u64(9), tiny_sys(), &cfg);
        let (inc, timings) =
            run_monthly_study_incremental(&mut StdRng::seed_from_u64(9), tiny_sys(), &cfg);
        assert_eq!(inc, full, "incremental study diverged from the full rebuild");
        assert_eq!(timings.len(), full.months.len());
        for t in &timings {
            assert!(t.total_seconds >= t.prep_seconds);
        }
    }

    fn temp_study_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("trail-study-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn tiny_client() -> OsintClient {
        OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(123))))
    }

    #[test]
    fn kill_and_resume_is_bitwise_identical_to_uninterrupted() {
        let cfg = tiny_cfg();
        let cutoff = tiny_client().world().config.cutoff_day;
        let seed = 77;

        let dir_full = temp_study_dir("full");
        let full = run_resumable_study(tiny_client(), cutoff, &cfg, seed, &dir_full, None)
            .expect("uninterrupted run")
            .expect("ran to completion");

        // Two kill points: after window 0 and (resumed) after window 1.
        let dir_kill = temp_study_dir("kill");
        for kill in [0u32, 1] {
            let out =
                run_resumable_study(tiny_client(), cutoff, &cfg, seed, &dir_kill, Some(kill))
                    .expect("killed run");
            assert!(out.is_none(), "kill after window {kill} should stop the run");
        }
        let resumed = run_resumable_study(tiny_client(), cutoff, &cfg, seed, &dir_kill, None)
            .expect("final resume")
            .expect("ran to completion");

        assert_eq!(resumed, full, "resumed study diverged from uninterrupted run");
        assert!(!full.months.is_empty());

        std::fs::remove_dir_all(&dir_full).ok();
        std::fs::remove_dir_all(&dir_kill).ok();
    }

    #[test]
    fn resume_with_different_parameters_is_rejected() {
        let cfg = tiny_cfg();
        let cutoff = tiny_client().world().config.cutoff_day;
        let dir = temp_study_dir("mismatch");
        run_resumable_study(tiny_client(), cutoff, &cfg, 5, &dir, Some(0))
            .expect("killed run");

        // Different study seed: refuse.
        match run_resumable_study(tiny_client(), cutoff, &cfg, 6, &dir, None) {
            Err(CheckpointError::Mismatch { what }) => assert_eq!(what, "study seed"),
            other => panic!("expected seed mismatch, got {other:?}"),
        }
        // Different hyper-parameters: refuse.
        let mut other_cfg = cfg.clone();
        other_cfg.fine_tune.lr *= 2.0;
        match run_resumable_study(tiny_client(), cutoff, &other_cfg, 5, &dir, None) {
            Err(CheckpointError::Mismatch { what }) => assert_eq!(what, "run fingerprint"),
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_rngs_are_decorrelated() {
        let mut a = stage_rng(1, STAGE_AE);
        let mut b = stage_rng(1, STAGE_STALE);
        let mut c = stage_rng(2, STAGE_AE);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_ne!(x, y);
        assert_ne!(x, z);
        // Same (seed, stage) reproduces the stream.
        assert_eq!(stage_rng(1, STAGE_AE).gen::<u64>(), x);
    }

    #[test]
    fn case_study_reports_enrichment_and_neighbors() {
        let mut rng = StdRng::seed_from_u64(10);
        let cs = case_study(&mut rng, tiny_sys(), &tiny_cfg(), "APT38")
            .expect("study window has events");
        assert!(cs.reported_iocs > 0);
        assert!(cs.neighborhood_iocs >= cs.reported_iocs);
        assert!(cs.events_3hop >= cs.events_2hop);
        assert!((0.0..=1.0).contains(&cs.gnn_masked.1));
        assert!((0.0..=1.0).contains(&cs.gnn_visible.1));
    }
}
