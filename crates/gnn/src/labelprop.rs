//! Label propagation (paper Eq. 1, after Zhou et al. 2003).
//!
//! `F_n = D^{-1/2} A D^{-1/2} F_{n-1}` starting from a one-hot matrix
//! of labelled event nodes, iterated `layers` times; predictions are
//! the softmax/argmax of non-zero rows. Two propagation layers measure
//! *direct* resource reuse (`e_i → IOC → e_j`); deeper propagation can
//! exploit secondary IOCs (`e_i → IP → domain → e_j`) and, at four
//! layers, ASN co-location (`e_i → IP → ASN → IP → e_j`).

use trail_graph::{Csr, NodeId};

/// Label-propagation runner over a frozen CSR graph.
pub struct LabelPropagation<'g> {
    csr: &'g Csr,
    inv_sqrt_deg: Vec<f32>,
    n_classes: usize,
}

impl<'g> LabelPropagation<'g> {
    /// Prepare for a graph and class count.
    pub fn new(csr: &'g Csr, n_classes: usize) -> Self {
        let inv_sqrt_deg = (0..csr.node_count())
            .map(|i| {
                let d = csr.degree(NodeId::from(i));
                if d == 0 {
                    0.0
                } else {
                    1.0 / (d as f32).sqrt()
                }
            })
            .collect();
        Self { csr, inv_sqrt_deg, n_classes }
    }

    /// Run `layers` propagation iterations from the seed labels.
    ///
    /// `seeds[i] = Some(class)` for labelled nodes. Returns the raw
    /// score matrix flattened row-major (`n x n_classes`).
    pub fn propagate(&self, seeds: &[Option<u16>], layers: usize) -> Vec<f32> {
        self.propagate_with_threads(seeds, layers, trail_linalg::pool::num_threads())
    }

    /// [`Self::propagate`] pinned to at most `threads` pool
    /// participants (1 ⇒ sequential reference).
    ///
    /// Each sweep is a gather by destination row — `next[u] =
    /// Σ_{v∈N(u)} w(u,v)·f[v]`, the same sum the scatter formulation
    /// produces over the symmetric CSR — so every output row is
    /// written by exactly one thread and the scores are bitwise
    /// identical for every thread count.
    pub fn propagate_with_threads(
        &self,
        seeds: &[Option<u16>],
        layers: usize,
        threads: usize,
    ) -> Vec<f32> {
        let _span = trail_obs::span("gnn.labelprop");
        let n = self.csr.node_count();
        assert_eq!(seeds.len(), n);
        let k = self.n_classes;
        let mut f = vec![0.0f32; n * k];
        for (i, seed) in seeds.iter().enumerate() {
            if let Some(c) = seed {
                f[i * k + *c as usize] = 1.0;
            }
        }
        if n == 0 || k == 0 {
            return f;
        }
        let mut next = vec![0.0f32; n * k];
        // Nodes whose score row is still all-zero contribute nothing;
        // the mask keeps the sparse early iterations cheap (labels
        // take `layers` hops to cover the graph).
        let mut live = vec![false; n];
        for _ in 0..layers {
            for (v, alive) in live.iter_mut().enumerate() {
                *alive = self.inv_sqrt_deg[v] != 0.0
                    && f[v * k..(v + 1) * k].iter().any(|&x| x != 0.0);
            }
            let csr = self.csr;
            let inv_sqrt_deg = &self.inv_sqrt_deg;
            let (f_ref, live_ref) = (&f, &live);
            trail_linalg::pool::parallel_for_rows_limit(threads, &mut next, k, 16, |row0, band| {
                for (i, dst) in band.chunks_exact_mut(k).enumerate() {
                    let u = row0 + i;
                    dst.fill(0.0);
                    let du = inv_sqrt_deg[u];
                    if du == 0.0 {
                        continue;
                    }
                    for &v in csr.neighbors(NodeId::from(u)) {
                        let v = v.index();
                        if !live_ref[v] {
                            continue;
                        }
                        let w = du * inv_sqrt_deg[v];
                        let src = &f_ref[v * k..(v + 1) * k];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += w * s;
                        }
                    }
                }
            });
            std::mem::swap(&mut f, &mut next);
        }
        f
    }

    /// Predict classes for `targets` after `layers` iterations; nodes
    /// whose score row is all-zero (unreachable from any seed) yield
    /// `None` — the paper's "remain unattributed" case.
    pub fn predict(
        &self,
        seeds: &[Option<u16>],
        layers: usize,
        targets: &[NodeId],
    ) -> Vec<Option<u16>> {
        let scores = self.propagate(seeds, layers);
        let k = self.n_classes;
        targets
            .iter()
            .map(|t| {
                let row = &scores[t.index() * k..(t.index() + 1) * k];
                if row.iter().all(|&x| x <= 0.0) {
                    None
                } else {
                    trail_linalg::vector::argmax(row).map(|c| c as u16)
                }
            })
            .collect()
    }

    /// Softmax probability rows for `targets` (uniform for unreachable
    /// nodes — maximum-entropy "don't know").
    pub fn predict_proba(
        &self,
        seeds: &[Option<u16>],
        layers: usize,
        targets: &[NodeId],
    ) -> Vec<Vec<f32>> {
        let scores = self.propagate(seeds, layers);
        let k = self.n_classes;
        targets
            .iter()
            .map(|t| {
                let row = &scores[t.index() * k..(t.index() + 1) * k];
                if row.iter().all(|&x| x <= 0.0) {
                    vec![1.0 / k as f32; k]
                } else {
                    // Normalise mass directly — softmax of raw counts
                    // over-flattens when scores are tiny.
                    let total: f32 = row.iter().sum();
                    row.iter().map(|&x| x / total).collect()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_graph::{EdgeKind, GraphStore, NodeKind};

    /// e0(label 0) - ip0 - e1(?) ; e2(label 1) isolated cluster with e3.
    fn graph() -> (GraphStore, Vec<NodeId>) {
        let mut g = GraphStore::new();
        let e0 = g.upsert_node(NodeKind::Event, "e0");
        let ip0 = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let e1 = g.upsert_node(NodeKind::Event, "e1");
        g.add_edge(e0, ip0, EdgeKind::InReport).unwrap();
        g.add_edge(e1, ip0, EdgeKind::InReport).unwrap();
        let e2 = g.upsert_node(NodeKind::Event, "e2");
        let d = g.upsert_node(NodeKind::Domain, "x.example");
        let e3 = g.upsert_node(NodeKind::Event, "e3");
        g.add_edge(e2, d, EdgeKind::InReport).unwrap();
        g.add_edge(e3, d, EdgeKind::InReport).unwrap();
        (g, vec![e0, ip0, e1, e2, e3])
    }

    #[test]
    fn two_layer_propagation_attributes_shared_ioc() {
        let (g, n) = graph();
        let csr = Csr::from_store(&g);
        let lp = LabelPropagation::new(&csr, 2);
        let mut seeds = vec![None; g.node_count()];
        seeds[n[0].index()] = Some(0); // e0 -> class 0
        seeds[n[3].index()] = Some(1); // e2 -> class 1
        let pred = lp.predict(&seeds, 2, &[n[2], n[4]]);
        assert_eq!(pred, vec![Some(0), Some(1)]);
    }

    #[test]
    fn unreachable_node_is_unattributed() {
        let (mut g, n) = graph();
        let lonely = g.upsert_node(NodeKind::Event, "lonely");
        let csr = Csr::from_store(&g);
        let lp = LabelPropagation::new(&csr, 2);
        let mut seeds = vec![None; g.node_count()];
        seeds[n[0].index()] = Some(0);
        let pred = lp.predict(&seeds, 4, &[lonely]);
        assert_eq!(pred, vec![None]);
        let proba = lp.predict_proba(&seeds, 4, &[lonely]);
        assert_eq!(proba[0], vec![0.5, 0.5]);
    }

    #[test]
    fn odd_layer_count_reaches_iocs_not_events() {
        let (g, n) = graph();
        let csr = Csr::from_store(&g);
        let lp = LabelPropagation::new(&csr, 2);
        let mut seeds = vec![None; g.node_count()];
        seeds[n[0].index()] = Some(0);
        // After 1 layer the label sits on ip0, not on e1.
        let scores = lp.propagate(&seeds, 1);
        let k = 2;
        assert!(scores[n[1].index() * k] > 0.0);
        assert_eq!(scores[n[2].index() * k], 0.0);
    }

    /// The pre-pool scatter formulation, kept as the reference the
    /// row-parallel gather is validated against.
    fn propagate_scatter_reference(
        lp: &LabelPropagation<'_>,
        seeds: &[Option<u16>],
        layers: usize,
    ) -> Vec<f32> {
        let n = lp.csr.node_count();
        let k = lp.n_classes;
        let mut f = vec![0.0f32; n * k];
        for (i, seed) in seeds.iter().enumerate() {
            if let Some(c) = seed {
                f[i * k + *c as usize] = 1.0;
            }
        }
        let mut next = vec![0.0f32; n * k];
        for _ in 0..layers {
            next.iter_mut().for_each(|v| *v = 0.0);
            for v in 0..n {
                let dv = lp.inv_sqrt_deg[v];
                if dv == 0.0 || f[v * k..(v + 1) * k].iter().all(|&x| x == 0.0) {
                    continue;
                }
                for &u in lp.csr.neighbors(NodeId::from(v)) {
                    let w = dv * lp.inv_sqrt_deg[u.index()];
                    for (d, &s) in next[u.index() * k..(u.index() + 1) * k]
                        .iter_mut()
                        .zip(&f[v * k..(v + 1) * k])
                    {
                        *d += w * s;
                    }
                }
            }
            std::mem::swap(&mut f, &mut next);
        }
        f
    }

    #[test]
    fn gather_matches_scatter_reference_across_thread_counts() {
        let (g, n) = graph();
        let csr = Csr::from_store(&g);
        let lp = LabelPropagation::new(&csr, 2);
        let mut seeds = vec![None; g.node_count()];
        seeds[n[0].index()] = Some(0);
        seeds[n[3].index()] = Some(1);
        for layers in [1usize, 2, 4] {
            let reference = propagate_scatter_reference(&lp, &seeds, layers);
            let seq = lp.propagate_with_threads(&seeds, layers, 1);
            for (a, b) in seq.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-6, "layers={layers}: {a} vs {b}");
            }
            for threads in [2usize, 8] {
                assert_eq!(
                    lp.propagate_with_threads(&seeds, layers, threads),
                    seq,
                    "layers={layers} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn high_degree_hubs_dilute_signal() {
        // A hub IOC connected to many differently-labelled events gives a
        // near-uniform distribution — the paper's noise-robustness claim.
        let mut g = GraphStore::new();
        let hub = g.upsert_node(NodeKind::Ip, "8.8.8.8");
        let mut events = Vec::new();
        for i in 0..4 {
            let e = g.upsert_node(NodeKind::Event, &format!("e{i}"));
            g.add_edge(e, hub, EdgeKind::InReport).unwrap();
            events.push(e);
        }
        let target = g.upsert_node(NodeKind::Event, "target");
        g.add_edge(target, hub, EdgeKind::InReport).unwrap();
        let csr = Csr::from_store(&g);
        let lp = LabelPropagation::new(&csr, 4);
        let mut seeds = vec![None; g.node_count()];
        for (i, e) in events.iter().enumerate() {
            seeds[e.index()] = Some((i % 4) as u16);
        }
        let proba = lp.predict_proba(&seeds, 2, &[target]);
        let row = &proba[0];
        let (max, min) =
            row.iter().fold((f32::MIN, f32::MAX), |(a, b), &v| (a.max(v), b.min(v)));
        assert!(max - min < 0.05, "hub should give near-uniform: {row:?}");
    }
}
