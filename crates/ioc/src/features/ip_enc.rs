//! The 507-dimension IP feature encoder.
//!
//! Layout: `0..249` country · `249..499` issuer · `499..507` misc
//! numeric (lat, lon, log-record counts, ASN presence/size, ages).

use crate::analysis::IpAnalysis;
use crate::ip::IpIoc;
use crate::vocab::Vocab;

use super::*;

const COUNTRY: (usize, usize) = (0, 249);
const ISSUER: (usize, usize) = (249, 250);
const MISC: (usize, usize) = (499, 8);

/// Names of the eight misc numeric slots.
pub const MISC_NAMES: [&str; 8] = [
    "latitude_norm",
    "longitude_norm",
    "log_a_records",
    "log_resolving_domains",
    "has_asn",
    "asn_size_log",
    "log_first_seen_days",
    "log_last_seen_days",
];

/// Encoder for IP IOCs. Construct once and reuse.
#[derive(Debug, Clone)]
pub struct IpEncoder {
    country: Vocab,
    issuer: Vocab,
}

impl Default for IpEncoder {
    fn default() -> Self {
        Self {
            country: Vocab::new("country", COUNTRY.1, COMMON_COUNTRIES),
            issuer: Vocab::new("issuer", ISSUER.1, COMMON_ISSUERS),
        }
    }
}

impl IpEncoder {
    /// Total output width (= [`IP_DIMS`]).
    pub const DIMS: usize = IP_DIMS;

    /// Encode an IP and its enrichment analysis into a feature vector.
    /// The `_ip` itself contributes no slots — the paper notes IPs have
    /// "a dearth of features on their own"; everything comes from
    /// enrichment.
    pub fn encode(&self, _ip: &IpIoc, a: &IpAnalysis) -> Vec<f32> {
        let mut out = vec![0.0f32; IP_DIMS];
        if let Some(c) = &a.country {
            out[COUNTRY.0 + self.country.slot(c)] = 1.0;
        }
        if let Some(i) = &a.issuer {
            out[ISSUER.0 + self.issuer.slot(i)] = 1.0;
        }
        let m = MISC.0;
        out[m] = a.latitude / 90.0;
        out[m + 1] = a.longitude / 180.0;
        out[m + 2] = (a.a_record_count as f32).ln_1p();
        out[m + 3] = (a.resolving_domain_count as f32).ln_1p();
        out[m + 4] = if a.asn.is_some() { 1.0 } else { 0.0 };
        out[m + 5] = a.asn_size_log;
        out[m + 6] = a.first_seen_days.max(0.0).ln_1p();
        out[m + 7] = a.last_seen_days.max(0.0).ln_1p();
        out
    }

    /// Human-readable name of feature slot `idx`.
    pub fn feature_name(&self, idx: usize) -> String {
        debug_assert!(idx < IP_DIMS);
        if idx < COUNTRY.1 {
            self.country.slot_name(idx)
        } else if idx < ISSUER.0 + ISSUER.1 {
            self.issuer.slot_name(idx - ISSUER.0)
        } else {
            MISC_NAMES[idx - MISC.0].to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_sums_to_total() {
        assert_eq!(COUNTRY.1 + ISSUER.1 + MISC.1, IP_DIMS);
        assert_eq!(ISSUER.0, COUNTRY.1);
        assert_eq!(MISC.0, ISSUER.0 + ISSUER.1);
    }

    #[test]
    fn encode_full_analysis() {
        let enc = IpEncoder::default();
        let ip = IpIoc::parse("198.51.100.7").unwrap();
        let a = IpAnalysis {
            country: Some("lv".into()),
            issuer: Some("ripe".into()),
            latitude: 45.0,
            longitude: -90.0,
            a_record_count: 3,
            resolving_domain_count: 2,
            asn: Some(12345),
            asn_size_log: 14.0,
            first_seen_days: 100.0,
            last_seen_days: 1.0,
            historic_domains: vec![],
        };
        let v = enc.encode(&ip, &a);
        assert_eq!(v.len(), IP_DIMS);
        // "lv" is curated at index 14; "ripe" at issuer slot 1.
        assert_eq!(v[14], 1.0);
        assert_eq!(v[ISSUER.0 + 1], 1.0);
        assert_eq!(v[MISC.0], 0.5);
        assert_eq!(v[MISC.0 + 1], -0.5);
        assert_eq!(v[MISC.0 + 4], 1.0);
        assert!((v[MISC.0 + 2] - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn missing_analysis_is_all_zero_but_valid() {
        let enc = IpEncoder::default();
        let ip = IpIoc::parse("8.8.8.8").unwrap();
        let v = enc.encode(&ip, &IpAnalysis::default());
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn feature_names_cover_all_slots() {
        let enc = IpEncoder::default();
        assert_eq!(enc.feature_name(0), "country=us");
        assert_eq!(enc.feature_name(ISSUER.0), "issuer=arin");
        assert_eq!(enc.feature_name(IP_DIMS - 1), "log_last_seen_days");
        for i in 0..IP_DIMS {
            assert!(!enc.feature_name(i).is_empty());
        }
    }
}
