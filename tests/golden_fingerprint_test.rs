//! Golden-fingerprint regression test for TKG construction.
//!
//! Builds the TKG from [`trail_osint::World::fixture`] — a hand-written
//! world with no RNG anywhere in its construction — and pins the
//! resulting graph shape as committed constants: node count, edge
//! count, and an fnv1a hash of the sorted degree sequence. Any change
//! to collection, canonicalisation, enrichment or graph upserts that
//! alters the constructed graph trips this test *before* it surfaces
//! as an accuracy drift in the paper tables.
//!
//! If a change intentionally reshapes the graph (new edge kinds, a
//! deeper enrichment pass), re-derive the constants from the printed
//! values in the assertion message and say why in the commit.

use std::sync::Arc;

use trail::system::TrailSystem;
use trail_ioc::vocab::fnv1a;
use trail_osint::{OsintClient, World};

const GOLDEN_NODES: usize = 22;
const GOLDEN_EDGES: usize = 43;
const GOLDEN_DEGREE_HASH: u64 = 0x1dd0_c32f_a8d2_9157;

fn build() -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::fixture()));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

fn fingerprint(sys: &TrailSystem) -> (usize, usize, u64) {
    let mut degrees: Vec<usize> =
        sys.tkg.graph.iter_nodes().map(|(id, _)| sys.tkg.graph.degree(id)).collect();
    degrees.sort_unstable();
    let joined =
        degrees.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
    (sys.tkg.graph.node_count(), sys.tkg.graph.edge_count(), fnv1a(&joined))
}

#[test]
fn fixture_tkg_matches_committed_fingerprint() {
    let sys = build();
    let (nodes, edges, degree_hash) = fingerprint(&sys);
    assert_eq!(
        (nodes, edges, degree_hash),
        (GOLDEN_NODES, GOLDEN_EDGES, GOLDEN_DEGREE_HASH),
        "TKG fingerprint drifted: nodes={nodes} edges={edges} degree_hash={degree_hash:#018x} \
         (committed: nodes={GOLDEN_NODES} edges={GOLDEN_EDGES} hash={GOLDEN_DEGREE_HASH:#018x})"
    );
}

#[test]
fn fixture_build_is_reproducible() {
    let a = fingerprint(&build());
    let b = fingerprint(&build());
    assert_eq!(a, b, "two builds of the fixture world disagree");
}

#[test]
fn fixture_events_all_collect() {
    let sys = build();
    // All six fixture reports resolve (tags are canonical names or
    // known aliases) and survive collection; the one junk indicator is
    // rejected without dropping its event.
    assert_eq!(sys.tkg.events.len(), 6);
    assert_eq!(sys.collect_stats.kept, 6);
    assert!(sys.collect_stats.rejected_indicators >= 1, "junk indicator was accepted");
    // Cross-event reuse in the fixture keeps the graph connected
    // beyond per-event stars.
    assert!(sys.ingest_stats.linked > 0, "no depth-2 links in the fixture world");
}
