//! Property-based tests over the core data structures and parsers.

use std::sync::Arc;

use proptest::prelude::*;

use trail::collector::{collect, AptRegistry};
use trail::enrich::{Enricher, IngestStats};
use trail::tkg::Tkg;
use trail_graph::{Csr, EdgeKind, GraphStore, Interner, NodeKind};
use trail_osint::{BreakerConfig, BreakerState, CircuitBreaker, OsintClient, World, WorldConfig};
use trail_ioc::defang::{defang, refang};
use trail_ioc::domain::DomainIoc;
use trail_ioc::ip::IpIoc;
use trail_ioc::key::IocKey;
use trail_ioc::types::IocKind;
use trail_ioc::url::UrlIoc;
use trail_ioc::vocab::Vocab;
use trail_linalg::Matrix;

proptest! {
    /// Any dotted quad in range parses and round-trips its octets.
    #[test]
    fn ipv4_roundtrip(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 0u8..=255) {
        let text = format!("{a}.{b}.{c}.{d}");
        let ip = IpIoc::parse(&text).expect("valid dotted quad");
        prop_assert_eq!(ip.v4_octets(), Some([a, b, c, d]));
        prop_assert_eq!(ip.text, text);
    }

    /// Defang then refang is the identity on URLs made of safe chars.
    #[test]
    fn defang_refang_roundtrip(host in "[a-z]{3,10}", tld in "(com|net|ru|club)", path in "[a-z0-9]{1,8}") {
        let url = format!("http://{host}.{tld}/{path}");
        prop_assert_eq!(refang(&defang(&url)), url);
    }

    /// Valid LDH domains always parse and canonicalise to lowercase.
    #[test]
    fn domain_parse_accepts_ldh(label in "[a-z][a-z0-9]{0,12}", tld in "[a-z]{2,6}") {
        let d = DomainIoc::parse(&format!("{}.{}", label.to_uppercase(), tld)).expect("LDH domain");
        prop_assert_eq!(d.tld(), tld.as_str());
        prop_assert_eq!(d.text, format!("{label}.{tld}"));
    }

    /// Lexical features are finite and consistent with the text.
    #[test]
    fn domain_lexical_consistency(label in "[a-z][a-z0-9]{2,20}", tld in "[a-z]{2,4}") {
        let text = format!("{label}.{tld}");
        let d = DomainIoc::parse(&text).unwrap();
        let lex = d.lexical();
        prop_assert_eq!(lex.length as usize, text.len());
        prop_assert!(lex.digit_ratio >= 0.0 && lex.digit_ratio <= 1.0);
        prop_assert_eq!(lex.periods as usize, 1);
        prop_assert!(lex.entropy.is_finite());
    }

    /// URL parsing extracts the host it was given.
    #[test]
    fn url_host_extraction(host in "[a-z]{3,8}", tld in "(com|net|org)", depth in 0usize..3) {
        let path: String = (0..depth).map(|i| format!("/p{i}")).collect();
        let url = format!("https://{host}.{tld}{path}");
        let parsed = UrlIoc::parse(&url).unwrap();
        prop_assert_eq!(parsed.hosted_domain().unwrap().text.clone(), format!("{host}.{tld}"));
        prop_assert_eq!(parsed.lexical().path_depth as usize, depth);
    }

    /// Vocab slots are always in range and deterministic.
    #[test]
    fn vocab_slot_in_range(value in ".{0,40}", size in 1usize..500) {
        let v = Vocab::new("test", size, &[]);
        let s1 = v.slot(&value);
        let s2 = v.slot(&value);
        prop_assert!(s1 < size);
        prop_assert_eq!(s1, s2);
    }

    /// Interning any sequence of texts (duplicates and all) hands out
    /// symbols in first-appearance order, resolves every symbol back to
    /// its exact text, and dedups re-interned text to the same symbol —
    /// across however many rehash growths the sequence forces.
    #[test]
    fn interner_roundtrip(texts in proptest::collection::vec(".{0,24}", 0..60)) {
        let mut it = Interner::new();
        let mut first_seen: Vec<String> = Vec::new();
        for t in &texts {
            let sym = it.intern(t);
            if let Some(pos) = first_seen.iter().position(|s| s == t) {
                prop_assert_eq!(sym.index(), pos, "re-interning {:?} minted a new symbol", t);
            } else {
                prop_assert_eq!(sym.index(), first_seen.len(), "symbols not dense/first-appearance");
                first_seen.push(t.clone());
            }
            prop_assert_eq!(it.resolve(sym), t.as_str());
        }
        prop_assert_eq!(it.len(), first_seen.len());
    }

    /// The borrow-based probe agrees with interning without mutating:
    /// `lookup` finds exactly the interned texts (never allocating a
    /// key), misses everything else, and survives a bucket rebuild.
    #[test]
    fn interner_borrow_lookup(
        texts in proptest::collection::vec("[a-z0-9.]{0,16}", 1..40),
        probe in "[a-z0-9.]{0,16}",
    ) {
        let mut it = Interner::new();
        let syms: Vec<_> = texts.iter().map(|t| it.intern(t)).collect();
        let len_after_interning = it.len();
        for (t, &sym) in texts.iter().zip(&syms) {
            prop_assert_eq!(it.lookup(t.as_str()), Some(sym));
        }
        let expect = texts.iter().position(|t| *t == probe).map(|pos| syms[pos]);
        prop_assert_eq!(it.lookup(&probe), expect, "probe {:?} disagrees with intern history", &probe);
        prop_assert_eq!(it.len(), len_after_interning, "lookup mutated the interner");
        // A deserialised interner rebuilds the same probe answers.
        it.rebuild();
        prop_assert_eq!(it.lookup(&probe), expect);
    }

    /// CSR degree sum equals twice the edge count for any event→IOC
    /// bipartite graph.
    #[test]
    fn csr_degree_sum(edges in proptest::collection::vec((0usize..10, 0usize..15), 0..60)) {
        let mut g = GraphStore::new();
        let events: Vec<_> = (0..10).map(|i| g.upsert_node(NodeKind::Event, &format!("e{i}"))).collect();
        let ips: Vec<_> = (0..15).map(|i| g.upsert_node(NodeKind::Ip, &format!("1.1.1.{i}"))).collect();
        for (e, i) in edges {
            let _ = g.add_edge(events[e], ips[i], EdgeKind::InReport);
        }
        let csr = Csr::from_store(&g);
        let degree_sum: usize = (0..csr.node_count()).map(|i| csr.degree(trail_graph::NodeId::from(i))).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(csr.half_edge_count(), 2 * g.edge_count());
    }

    /// Subgraph never invents nodes or edges.
    #[test]
    fn subgraph_is_monotone(keep_events in proptest::collection::vec(any::<bool>(), 8)) {
        let mut g = GraphStore::new();
        let mut events = Vec::new();
        let ip = g.upsert_node(NodeKind::Ip, "9.9.9.9");
        for (i, _) in keep_events.iter().enumerate() {
            let e = g.upsert_node(NodeKind::Event, &format!("e{i}"));
            g.add_edge(e, ip, EdgeKind::InReport).unwrap();
            events.push(e);
        }
        let (sub, mapping) = g.subgraph(|id, rec| {
            rec.kind != NodeKind::Event || keep_events[events.iter().position(|&e| e == id).unwrap()]
        });
        prop_assert!(sub.node_count() <= g.node_count());
        prop_assert!(sub.edge_count() <= g.edge_count());
        let kept = keep_events.iter().filter(|&&k| k).count();
        prop_assert_eq!(sub.node_count(), kept + 1);
        prop_assert_eq!(sub.edge_count(), kept);
        prop_assert_eq!(mapping.iter().filter(|m| m.is_some()).count(), kept + 1);
    }

    /// Matrix transpose is an involution and matmul distributes over
    /// the transpose pair ops used in backprop.
    #[test]
    fn transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let m = Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17 + seed as usize) % 11) as f32 - 5.0);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let other = Matrix::from_fn(rows, cols, |r, c| ((r + c * 3 + seed as usize) % 7) as f32);
        let fast = m.t_matmul(&other).unwrap();
        let slow = m.transpose().matmul(&other).unwrap();
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Softmax outputs a probability distribution for any finite input.
    #[test]
    fn softmax_distribution(values in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut v = values;
        trail_linalg::vector::softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Dropping span guards in any order still yields a well-formed
    /// tree: every recorded path's parent is also recorded, and the
    /// total recorded count equals the number of guards opened. This is
    /// the tokened-stack invariant of `trail_obs::span` under non-LIFO
    /// drops (guards moved into collections, early `drop()` calls).
    #[test]
    fn span_drop_order_yields_well_formed_tree(opens in 1usize..10, drop_seed in 0u64..1000) {
        // The registry is process-global; this is the only registry
        // user in this binary, serialized against itself by proptest
        // running cases sequentially within one test.
        let _guard = obs_registry_lock();
        trail_obs::set_enabled(true);
        trail_obs::reset();
        let mut guards: Vec<_> = (0..opens).map(|i| trail_obs::span(&format!("s{i}"))).collect();
        let mut state = drop_seed | 1;
        while !guards.is_empty() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (state >> 33) as usize % guards.len();
            drop(guards.swap_remove(idx));
        }
        let snap = trail_obs::snapshot();
        let total: u64 = snap.spans.iter().map(|s| s.count).sum();
        prop_assert_eq!(total as usize, opens, "every guard records exactly once");
        for s in &snap.spans {
            prop_assert!(s.min_ns > 0 && s.min_ns <= s.max_ns && s.max_ns <= s.total_ns);
            if let Some((parent, _)) = s.path.rsplit_once('/') {
                prop_assert!(snap.span(parent).is_some(), "orphan span path {}", &s.path);
            }
        }
    }

    /// Histogram bucket counts always sum to the number of
    /// observations, and the sum field to their exact total, for any
    /// observation sequence (standalone histogram — no registry).
    #[test]
    fn histogram_counts_sum_to_observations(values in proptest::collection::vec(0u64..5000, 0..100)) {
        let h = trail_obs::Histogram::new(&[10, 100, 1000]);
        for &v in &values {
            h.observe(v);
        }
        let counts = h.bucket_counts();
        prop_assert_eq!(counts.len(), 4, "bounds+1 buckets");
        prop_assert_eq!(counts.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        // Each bucket holds exactly the values in its range.
        let expect_first = values.iter().filter(|&&v| v <= 10).count() as u64;
        let expect_last = values.iter().filter(|&&v| v > 1000).count() as u64;
        prop_assert_eq!(counts[0], expect_first);
        prop_assert_eq!(counts[3], expect_last);
    }

    /// Canonicalisation is idempotent: re-parsing a key's canonical
    /// text — under any mix of case, trailing-dot and defang noise on
    /// the way in — reproduces the identical key.
    #[test]
    fn iockey_canonicalisation_idempotent(label in "[a-z][a-z0-9]{1,10}", tld in "(com|net|org|ru)", noise in 0u8..8) {
        let canonical = format!("{label}.{tld}");
        let mut raw = canonical.clone();
        if noise & 1 != 0 { raw = raw.to_uppercase(); }
        if noise & 2 != 0 { raw.push('.'); }
        if noise & 4 != 0 { raw = raw.replace('.', "[.]"); }
        let key = IocKey::parse(IocKind::Domain, &raw).expect("noisy domain parses");
        prop_assert_eq!(key.text(), canonical.as_str());
        let again = IocKey::parse(key.kind(), key.text()).expect("canonical text re-parses");
        prop_assert_eq!(&again, &key, "IocKey::parse is not idempotent for {:?}", &raw);
        prop_assert_eq!(&IocKey::detect(key.text()).expect("canonical text detects"), &key);

        let mut url_host = canonical.clone();
        if noise & 1 != 0 { url_host = url_host.to_uppercase(); }
        if noise & 4 != 0 { url_host = url_host.replace('.', "[.]"); }
        let url_raw = format!("hxxp://{url_host}/x1");
        let ukey = IocKey::parse(IocKind::Url, &url_raw).expect("noisy url parses");
        prop_assert_eq!(ukey.text(), format!("http://{canonical}/x1").as_str());
        prop_assert_eq!(&IocKey::parse(ukey.kind(), ukey.text()).expect("url re-parses"), &ukey);
    }

    /// Liveness: from *any* interleaving of faults and successes, a
    /// breaker re-closes once the feed heals, within the bounded number
    /// of healthy calls implied by its thresholds. An outage can slow
    /// the pipeline down but never wedge it permanently.
    #[test]
    fn breaker_recloses_after_any_fault_sequence(
        outcomes in proptest::collection::vec(any::<bool>(), 0..200),
        threshold in 1u32..6,
        cooldown in 1u32..10,
        probes in 1u32..4,
    ) {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_rejections: cooldown,
            half_open_successes: probes,
        });
        for fault in outcomes {
            if b.admit() {
                if fault { b.record_fault() } else { b.record_success() }
            }
        }
        // Heal the feed. Worst case the breaker sits freshly Open:
        // `cooldown` rejected admissions to reach Half-Open, then
        // `probes` successful probes to close.
        let bound = cooldown + probes + 1;
        for _ in 0..bound {
            if b.state() == BreakerState::Closed {
                break;
            }
            if b.admit() {
                b.record_success();
            }
        }
        prop_assert_eq!(b.state(), BreakerState::Closed, "breaker wedged after healing");
    }

    /// A fully dead feed can starve enrichment but never lie about it:
    /// whatever the breaker thresholds, every analysis ends as a
    /// retried-then-abandoned transient miss or a breaker rejection.
    /// `missed_permanent` is reserved for feeds that *answered* with a
    /// gap, and rejections happen before any lookup.
    #[test]
    fn dead_feed_never_reports_permanent_gaps(
        threshold in 1u32..6,
        cooldown in 1u32..10,
        probes in 1u32..4,
    ) {
        // The enrichment path emits `trail_obs` metrics as a side
        // effect; serialize with the other registry users.
        let _guard = obs_registry_lock();
        let mut cfg = WorldConfig::tiny(7);
        cfg.transient_fault_prob = 1.0;
        let mut client = OsintClient::new(Arc::new(World::generate(cfg)));
        client.set_breaker(Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_rejections: cooldown,
            half_open_successes: probes,
        })));
        let registry = AptRegistry::new(client.world().config.n_apts);
        let cutoff = client.world().config.cutoff_day;
        let (events, _) = collect(&client.events_before(cutoff), &registry);
        prop_assert!(!events.is_empty());
        let mut tkg = Tkg::new(registry);
        let enricher = Enricher::new(&client, cutoff);
        let mut stats = IngestStats::default();
        for e in &events {
            stats.absorb(&enricher.ingest(&mut tkg, e));
        }
        prop_assert_eq!(stats.missed_permanent, 0, "dead feed misreported a permanent gap: {:?}", &stats);
        prop_assert!(stats.breaker_rejected > 0, "breaker never tripped on a dead feed: {:?}", &stats);
        prop_assert_eq!(
            stats.missed_transient + stats.breaker_rejected,
            stats.first_order + stats.secondary,
            "an analysis escaped the transient-or-rejected dichotomy: {:?}", &stats
        );
        prop_assert_eq!(stats.linked, 0, "a dead feed linked an indicator: {:?}", &stats);
    }
}

/// Serialize tests that touch the process-global `trail_obs` registry.
fn obs_registry_lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}
