//! Row-major dense `f32` matrix with blocked, threaded multiplication.

use serde::{Deserialize, Serialize};

use crate::{Result, ShapeError};

/// Minimum work (rows * inner dim) before `matmul` spreads across threads.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// A dense row-major `f32` matrix.
///
/// Rows are contiguous, which makes per-sample access (the dominant
/// pattern in minibatch training) a single slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing buffer. Errors if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(format!(
                "buffer of len {} cannot be a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Build a matrix whose rows are the given equal-length slices.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for r in rows {
            if r.len() != n_cols {
                return Err(ShapeError::new("ragged rows"));
            }
            data.extend_from_slice(r);
        }
        Ok(Self { rows: rows.len(), cols: n_cols, data })
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy the given rows into a new matrix (gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        self.gather_rows_into(indices, &mut out).expect("freshly sized");
        out
    }

    /// [`Self::gather_rows`] into a caller-owned matrix of shape
    /// `(indices.len(), cols)` — the allocation-free variant for hot
    /// loops with a reusable workspace.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Self) -> Result<()> {
        if out.shape() != (indices.len(), self.cols) {
            return Err(ShapeError::new(format!(
                "gather of {} rows x {} cols into {:?}",
                indices.len(),
                self.cols,
                out.shape()
            )));
        }
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(())
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Self) -> Result<()> {
        self.zip_inplace(other, |a, b| a + b)
    }

    /// `self -= other` (same shape).
    pub fn sub_assign(&mut self, other: &Self) -> Result<()> {
        self.zip_inplace(other, |a, b| a - b)
    }

    /// `self *= other` element-wise (Hadamard product, same shape).
    pub fn hadamard_assign(&mut self, other: &Self) -> Result<()> {
        self.zip_inplace(other, |a, b| a * b)
    }

    fn zip_inplace(&mut self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(format!(
                "element-wise op on {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = f(*a, b);
        }
        Ok(())
    }

    /// Multiply every element by a scalar.
    pub fn scale(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// `self += k * other` (same shape). The AXPY building block of the
    /// optimisers.
    pub fn axpy(&mut self, k: f32, other: &Self) -> Result<()> {
        self.zip_inplace(other, |a, b| a + k * b)
    }

    /// Add a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) -> Result<()> {
        if bias.len() != self.cols {
            return Err(ShapeError::new("broadcast length != cols"));
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
        Ok(())
    }

    /// Sum over rows into a length-`cols` vector (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// `self @ other` — the classic product.
    pub fn matmul(&self, other: &Self) -> Result<Self> {
        self.matmul_with_threads(other, crate::pool::num_threads())
    }

    /// [`Self::matmul`] pinned to at most `threads` pool participants
    /// (1 ⇒ fully sequential). Rows are computed independently, so the
    /// result is bitwise identical for every thread count; exposed for
    /// the equivalence tests and sequential-baseline benches.
    pub fn matmul_with_threads(&self, other: &Self, threads: usize) -> Result<Self> {
        if self.cols != other.rows {
            return Err(ShapeError::new(format!(
                "matmul {:?} x {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let mut out = Self::zeros(self.rows, other.cols);
        matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            threads,
        );
        Ok(out)
    }

    /// `self @ other` into a caller-owned output matrix of shape
    /// `(self.rows, other.cols)`. The output is zeroed first, then the
    /// same kernel as [`Self::matmul`] runs — bitwise identical to the
    /// allocating form, without the allocation.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) -> Result<()> {
        if self.cols != other.rows || out.shape() != (self.rows, other.cols) {
            return Err(ShapeError::new(format!(
                "matmul {:?} x {:?} into {:?}",
                self.shape(),
                other.shape(),
                out.shape()
            )));
        }
        out.data.fill(0.0);
        matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
            crate::pool::num_threads(),
        );
        Ok(())
    }

    /// `selfᵀ @ other` without materialising the transpose.
    ///
    /// Used for weight gradients: `dW = Xᵀ @ dY`.
    pub fn t_matmul(&self, other: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.cols, other.cols);
        self.t_matmul_acc(other, &mut out)?;
        Ok(out)
    }

    /// `out += selfᵀ @ other` into a caller-owned accumulator of shape
    /// `(self.cols, other.cols)`.
    ///
    /// The kernel adds into `out` in the same k-outermost order the
    /// allocating [`Self::t_matmul`] uses over a zero matrix, so
    /// accumulating into an already-zero target (an optimiser-zeroed
    /// gradient) is bitwise identical to `out += t_matmul(other)` —
    /// with neither the product nor the temporary allocated.
    pub fn t_matmul_acc(&self, other: &Self, out: &mut Self) -> Result<()> {
        if self.rows != other.rows || out.shape() != (self.cols, other.cols) {
            return Err(ShapeError::new(format!(
                "t_matmul {:?} x {:?} into {:?}",
                self.shape(),
                other.shape(),
                out.shape()
            )));
        }
        // out[i][j] += sum_k self[k][i] * other[k][j]; the blocked
        // kernel walks k in ascending tiles, so each element sees the
        // same increasing-k product order as the old k-outermost loop.
        crate::kernels::t_matmul_rows(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
        Ok(())
    }

    /// `self @ otherᵀ` without materialising the transpose.
    ///
    /// Used for input gradients: `dX = dY @ Wᵀ`.
    pub fn matmul_t(&self, other: &Self) -> Result<Self> {
        let mut out = Self::zeros(self.rows, other.rows);
        self.matmul_t_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul_t`] into a caller-owned output of shape
    /// `(self.rows, other.rows)`.
    ///
    /// `other` (a weight matrix in every workspace call site, so small)
    /// is transposed into a thread-local scratch buffer, then the
    /// blocked `matmul` kernel runs over the copy. Each output element
    /// is a fresh sum over ascending `k` — exactly the order the old
    /// per-element `dot(..)` used — so the result is bitwise identical
    /// to the allocating form and to the previous implementation, while
    /// the inner loop vectorises instead of serialising on one
    /// accumulator. The scratch is reused across calls; steady-state
    /// backward passes stay allocation-free.
    pub fn matmul_t_into(&self, other: &Self, out: &mut Self) -> Result<()> {
        if self.cols != other.cols || out.shape() != (self.rows, other.rows) {
            return Err(ShapeError::new(format!(
                "matmul_t {:?} x {:?} into {:?}",
                self.shape(),
                other.shape(),
                out.shape()
            )));
        }
        let inner = self.cols;
        let work = self.rows * inner;
        let min_rows = if work < PARALLEL_THRESHOLD {
            self.rows.max(1) // below threshold: one band, no pool trip
        } else {
            (PARALLEL_THRESHOLD / 8 / inner.max(1)).max(1)
        };
        BT_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let n = other.rows * other.cols;
            if scratch.len() < n {
                scratch.resize(n, 0.0);
            }
            let bt = &mut scratch[..n];
            for (r, row) in other.data.chunks_exact(other.cols.max(1)).enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    bt[c * other.rows + r] = v;
                }
            }
            crate::pool::parallel_for_rows(&mut out.data, other.rows, min_rows, |row0, band| {
                let band_rows = band.len() / other.rows;
                let a_band = &self.data[row0 * inner..(row0 + band_rows) * inner];
                band.fill(0.0);
                crate::kernels::matmul_rows(a_band, inner, bt, other.rows, band);
            });
        });
        Ok(())
    }

    /// `self @ other` into `out` with the legacy `av == 0.0` fast path:
    /// a zero entry in `self` skips its whole B-row term. On **finite**
    /// inputs this is bitwise identical to [`Self::matmul_into`] — an
    /// accumulator that starts at `+0.0` can never become `-0.0`, so
    /// adding the skipped `±0.0` products never changes a bit — but a
    /// zero in `self` shields NaN/Inf in the corresponding row of
    /// `other` from propagating. Use it only where both inputs are
    /// known finite and `self` is meaningfully sparse (one-hot feature
    /// blocks, post-ReLU activations); dense callers should prefer
    /// [`Self::matmul_into`], whose blocked kernel wins on dense data
    /// and keeps IEEE propagation intact.
    pub fn matmul_sparse_into(&self, other: &Self, out: &mut Self) -> Result<()> {
        if self.cols != other.rows || out.shape() != (self.rows, other.cols) {
            return Err(ShapeError::new(format!(
                "matmul_sparse {:?} x {:?} into {:?}",
                self.shape(),
                other.shape(),
                out.shape()
            )));
        }
        out.data.fill(0.0);
        let work = self.rows * self.cols;
        if work < PARALLEL_THRESHOLD || crate::pool::num_threads() < 2 || self.rows < 2 {
            crate::reference::matmul_rows_skip(
                &self.data,
                self.cols,
                &other.data,
                other.cols,
                &mut out.data,
            );
            return Ok(());
        }
        let a = &self.data;
        let a_cols = self.cols;
        let b_cols = other.cols;
        crate::pool::parallel_for_rows(&mut out.data, b_cols, 1, |row0, c_band| {
            let band_rows = c_band.len() / b_cols;
            let a_band = &a[row0 * a_cols..(row0 + band_rows) * a_cols];
            crate::reference::matmul_rows_skip(a_band, a_cols, &other.data, b_cols, c_band);
        });
        Ok(())
    }
}

std::thread_local! {
    /// Transposed-RHS scratch for [`Matrix::matmul_t_into`]; grown on
    /// first use per shape, then reused (capacity is never shrunk), so
    /// repeated backward passes allocate nothing.
    static BT_SCRATCH: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Blocked `C += A @ B` kernel over raw buffers; submits row bands to
/// the shared worker pool when the problem is large enough. Each
/// output row is produced by exactly one thread with an unchanged
/// inner-loop order, so the product is bitwise identical for every
/// thread count.
fn matmul_into(
    a: &[f32],
    a_rows: usize,
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    c: &mut [f32],
    threads: usize,
) {
    let work = a_rows * a_cols;
    if work < PARALLEL_THRESHOLD || threads < 2 || a_rows < 2 {
        crate::kernels::matmul_rows(a, a_cols, b, b_cols, c);
        return;
    }
    crate::pool::parallel_for_rows_limit(threads, c, b_cols, 1, |row0, c_band| {
        let band_rows = c_band.len() / b_cols;
        let a_band = &a[row0 * a_cols..(row0 + band_rows) * a_cols];
        crate::kernels::matmul_rows(a_band, a_cols, b, b_cols, c_band);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec()).unwrap()
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let fast = a.t_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &[1.0; 12]);
        let fast = a.matmul_t(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Big enough to trip the parallel path.
        let n = 300;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let c = a.matmul(&b).unwrap();
        // Check a handful of entries against a direct computation.
        for &(r, col) in &[(0, 0), (1, 7), (299, 299), (150, 42)] {
            let expect: f32 = (0..n).map(|k| a[(r, k)] * b[(k, col)]).sum();
            assert!((c[(r, col)] - expect).abs() < 1e-3, "entry ({r},{col})");
        }
    }

    #[test]
    fn matmul_identical_across_thread_counts() {
        // Row-banded parallelism must be bitwise equal to sequential.
        let n = 192;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 / 7.0 - 0.9);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 11) as f32 / 5.0 - 1.1);
        let seq = a.matmul_with_threads(&b, 1).unwrap();
        for threads in [2usize, 8] {
            assert_eq!(a.matmul_with_threads(&b, threads).unwrap(), seq, "threads={threads}");
        }
        assert_eq!(a.matmul(&b).unwrap(), seq);
    }

    #[test]
    fn into_variants_match_allocating_forms_bitwise() {
        let n = 64;
        let a = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 17) % 13) as f32 / 7.0 - 0.9);
        let b = Matrix::from_fn(n, n, |r, c| ((r * 7 + c * 3) % 11) as f32 / 5.0 - 1.1);

        let mut out = Matrix::from_fn(n, n, |_, _| 42.0); // stale garbage
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());

        let mut out = Matrix::from_fn(n, n, |_, _| -3.0);
        a.matmul_t_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul_t(&b).unwrap());

        // t_matmul_acc accumulates: from zero it is bitwise equal to
        // t_matmul (the property gradient accumulation relies on). A
        // second call doubles the result only up to f32 rounding —
        // interleaving k-terms with a non-zero start reorders the
        // summation.
        let mut acc = Matrix::zeros(n, n);
        a.t_matmul_acc(&b, &mut acc).unwrap();
        let product = a.t_matmul(&b).unwrap();
        assert_eq!(acc, product);
        a.t_matmul_acc(&b, &mut acc).unwrap();
        for (&x, &y) in acc.as_slice().iter().zip(product.as_slice()) {
            assert!((x - 2.0 * y).abs() <= 1e-3 * y.abs().max(1.0), "{x} vs 2*{y}");
        }

        let mut sub = Matrix::zeros(2, n);
        a.gather_rows_into(&[5, 9], &mut sub).unwrap();
        assert_eq!(sub, a.gather_rows(&[5, 9]));

        // Shape mismatches are rejected.
        let mut wrong = Matrix::zeros(n + 1, n);
        assert!(a.matmul_into(&b, &mut wrong).is_err());
        assert!(a.matmul_t_into(&b, &mut wrong).is_err());
        assert!(a.t_matmul_acc(&b, &mut wrong).is_err());
    }

    #[test]
    fn broadcast_and_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]).unwrap();
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn gather_rows_copies() {
        let a = m(3, 2, &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[20.0, 21.0, 0.0, 1.0]);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        a.sub_assign(&b).unwrap();
        a.hadamard_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).is_err());
    }
}
