//! Capped k-hop subgraph extraction.
//!
//! GraphSAGE's defining trick is computing representations from sampled
//! neighbourhoods instead of the full graph; the explainer also works on
//! the target event's k-hop subgraph. This module extracts an induced
//! subgraph with a per-node neighbour cap (deterministic given the RNG).

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

use trail_graph::{Csr, NodeId};

/// An induced subgraph with local indexing.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Original node id of each local node (local index = position).
    pub nodes: Vec<NodeId>,
    /// Original-id → local-index map.
    pub local_of: HashMap<NodeId, usize>,
    /// Unique undirected edges as local `(a, b)` pairs with `a < b`.
    pub edges: Vec<(usize, usize)>,
    /// Local adjacency: for each node, `(neighbor, edge index)`.
    pub adj: Vec<Vec<(usize, usize)>>,
    /// Hop distance of each local node from the roots.
    pub hops: Vec<u32>,
}

impl Subgraph {
    /// Number of local nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Reusable traversal buffers for repeated k-hop extractions — one
/// subgraph per examined event in the explainer sweep. Holding one of
/// these across calls keeps the per-node neighbour copy and the BFS
/// frontiers out of the allocator in the steady state.
#[derive(Debug, Default)]
pub struct SampleScratch {
    neighbors: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

/// Extract the k-hop subgraph around `roots`, visiting at most
/// `neighbor_cap` neighbours per expanded node (0 = unlimited). The
/// induced edge set contains every CSR edge among sampled nodes.
pub fn sample_k_hop<R: Rng + ?Sized>(
    rng: &mut R,
    csr: &Csr,
    roots: &[NodeId],
    k: u32,
    neighbor_cap: usize,
) -> Subgraph {
    sample_k_hop_with(&mut SampleScratch::default(), rng, csr, roots, k, neighbor_cap)
}

/// [`sample_k_hop`] with caller-owned scratch. Consumes the RNG
/// identically to the one-shot form, so swapping between the two never
/// perturbs a seeded sampling sequence.
pub fn sample_k_hop_with<R: Rng + ?Sized>(
    scratch: &mut SampleScratch,
    rng: &mut R,
    csr: &Csr,
    roots: &[NodeId],
    k: u32,
    neighbor_cap: usize,
) -> Subgraph {
    let SampleScratch { neighbors, frontier, next } = scratch;
    let mut nodes = Vec::new();
    let mut local_of: HashMap<NodeId, usize> = HashMap::new();
    let mut hops = Vec::new();
    frontier.clear();
    for &r in roots {
        if !local_of.contains_key(&r) {
            local_of.insert(r, nodes.len());
            nodes.push(r);
            hops.push(0);
            frontier.push(r);
        }
    }
    for hop in 1..=k {
        next.clear();
        for &v in frontier.iter() {
            neighbors.clear();
            neighbors.extend_from_slice(csr.neighbors(v));
            if neighbor_cap > 0 && neighbors.len() > neighbor_cap {
                neighbors.shuffle(rng);
                neighbors.truncate(neighbor_cap);
            }
            for &u in neighbors.iter() {
                if !local_of.contains_key(&u) {
                    local_of.insert(u, nodes.len());
                    nodes.push(u);
                    hops.push(hop);
                    next.push(u);
                }
            }
        }
        std::mem::swap(frontier, next);
        if frontier.is_empty() {
            break;
        }
    }
    // Induced edges among sampled nodes (deduplicated undirected).
    let mut edges = Vec::new();
    let mut adj = vec![Vec::new(); nodes.len()];
    let mut seen = std::collections::HashSet::new();
    for (a_local, &a) in nodes.iter().enumerate() {
        for &b in csr.neighbors(a) {
            if let Some(&b_local) = local_of.get(&b) {
                let key = (a_local.min(b_local), a_local.max(b_local));
                if key.0 != key.1 && seen.insert(key) {
                    let e = edges.len();
                    edges.push(key);
                    adj[key.0].push((key.1, e));
                    adj[key.1].push((key.0, e));
                }
            }
        }
    }
    Subgraph { nodes, local_of, edges, adj, hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use trail_graph::{EdgeKind, GraphStore, NodeKind};

    fn star() -> (GraphStore, NodeId, Vec<NodeId>) {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let mut ips = Vec::new();
        for i in 0..10 {
            let ip = g.upsert_node(NodeKind::Ip, &format!("1.1.1.{i}"));
            g.add_edge(e, ip, EdgeKind::InReport).unwrap();
            ips.push(ip);
        }
        // One IP links to a far domain.
        let d = g.upsert_node(NodeKind::Domain, "far.example");
        g.add_edge(ips[0], d, EdgeKind::ARecord).unwrap();
        (g, e, ips)
    }

    #[test]
    fn uncapped_extraction_gets_everything_in_range() {
        let (g, e, _) = star();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let sub = sample_k_hop(&mut rng, &csr, &[e], 1, 0);
        assert_eq!(sub.len(), 11); // event + 10 IPs, domain is 2 hops
        assert_eq!(sub.edges.len(), 10);
        let sub2 = sample_k_hop(&mut rng, &csr, &[e], 2, 0);
        assert_eq!(sub2.len(), 12);
        assert_eq!(sub2.hops.iter().filter(|&&h| h == 2).count(), 1);
    }

    #[test]
    fn cap_limits_expansion() {
        let (g, e, _) = star();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let sub = sample_k_hop(&mut rng, &csr, &[e], 1, 3);
        assert_eq!(sub.len(), 4); // event + 3 sampled IPs
    }

    #[test]
    fn local_indexing_is_consistent() {
        let (g, e, ips) = star();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let sub = sample_k_hop(&mut rng, &csr, &[e], 2, 0);
        for (local, &orig) in sub.nodes.iter().enumerate() {
            assert_eq!(sub.local_of[&orig], local);
        }
        // Every adjacency entry references a valid edge.
        for (a, list) in sub.adj.iter().enumerate() {
            for &(b, eidx) in list {
                let (x, y) = sub.edges[eidx];
                assert!((x == a && y == b) || (x == b && y == a));
            }
        }
        let _ = ips;
    }

    #[test]
    fn induced_edges_include_cross_links() {
        // Two roots whose neighbourhoods touch: the bridging edge between
        // sampled nodes must be present even though neither endpoint is a
        // root.
        let mut g = GraphStore::new();
        let e1 = g.upsert_node(NodeKind::Event, "e1");
        let e2 = g.upsert_node(NodeKind::Event, "e2");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = g.upsert_node(NodeKind::Domain, "x.example");
        g.add_edge(e1, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e2, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        let csr = Csr::from_store(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let sub = sample_k_hop(&mut rng, &csr, &[e1, e2], 1, 0);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.edges.len(), 3); // ip-d edge induced
    }

    #[test]
    fn scratch_reuse_matches_one_shot_sampling() {
        let (g, e, _) = star();
        let csr = Csr::from_store(&g);
        // Same seed, same cap: reused-scratch extraction must consume
        // the RNG identically and produce the identical subgraph.
        let mut scratch = SampleScratch::default();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        for cap in [3usize, 2, 0, 5] {
            let fresh = sample_k_hop(&mut rng_a, &csr, &[e], 2, cap);
            let reused = sample_k_hop_with(&mut scratch, &mut rng_b, &csr, &[e], 2, cap);
            assert_eq!(fresh.nodes, reused.nodes, "cap={cap}");
            assert_eq!(fresh.edges, reused.edges, "cap={cap}");
            assert_eq!(fresh.hops, reused.hops, "cap={cap}");
        }
    }
}
