//! APT behavioural profiles.
//!
//! Each profile encodes the persistent habits the paper's hypothesis
//! rests on: "either because details are overlooked, resources are
//! being recycled, or for any other number of reasons, features more
//! subtle than exact IOCs may get reused." A profile is an ensemble of
//! preference distributions that an APT only *sometimes* follows — the
//! per-kind signal strengths in [`crate::WorldConfig`] control how
//! often — so the resulting per-IOC signal is weak, exactly as
//! Table III measures.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The 22 APT names the dataset tracks (the paper names APT27, APT28,
/// APT37, APT38, KIMSUKY, FIN11 and TA511 explicitly; the rest are the
/// usual suspects from MITRE ATT&CK group lists).
pub const APT_NAMES: [&str; 22] = [
    "APT28", "APT29", "APT27", "APT37", "APT38", "KIMSUKY", "FIN11", "TA511", "APT1", "APT3",
    "APT10", "APT17", "APT32", "APT33", "APT34", "APT40", "APT41", "FIN6", "FIN7", "TA505",
    "TURLA", "SANDWORM",
];

/// Known aliases per APT (tag vocabularies in feeds are messy; the
/// collector must map aliases onto canonical names).
pub fn aliases(name: &str) -> &'static [&'static str] {
    match name {
        "APT28" => &["sofacy", "fancy-bear", "pawn-storm"],
        "APT29" => &["cozy-bear", "nobelium"],
        "APT38" => &["lazarus", "hidden-cobra"],
        "APT37" => &["reaper", "scarcruft"],
        "KIMSUKY" => &["velvet-chollima"],
        "APT27" => &["emissary-panda", "lucky-mouse"],
        "TURLA" => &["snake", "venomous-bear"],
        "SANDWORM" => &["voodoo-bear"],
        "TA505" => &["hive0065"],
        "FIN7" => &["carbanak"],
        _ => &[],
    }
}

/// Candidate values the generator draws preferences from. These overlap
/// with the curated vocabularies in `trail-ioc` so explanations stay
/// readable, but nothing depends on that alignment.
pub mod pools {
    /// Server software bases.
    pub const SERVERS: &[&str] =
        &["nginx", "apache", "iis", "litespeed", "caddy", "openresty", "lighttpd", "tengine", "tomcat", "gunicorn"];
    /// Server operating systems.
    pub const OSES: &[&str] = &["linux", "ubuntu", "debian", "centos", "windows", "freebsd", "alpine"];
    /// Content encodings.
    pub const ENCODINGS: &[&str] = &["gzip", "deflate", "br", "identity", "none"];
    /// Countries (hosting-heavy subset).
    pub const COUNTRIES: &[&str] =
        &["us", "cn", "ru", "kp", "ir", "de", "fr", "gb", "nl", "kr", "ua", "lv", "lt", "pl", "ro", "bg", "tr", "vn", "sg", "hk", "se", "cz"];
    /// IP issuers.
    pub const ISSUERS: &[&str] =
        &["arin", "ripe", "apnic", "cloudflare", "amazon", "google", "digitalocean", "ovh", "hetzner", "linode", "vultr", "alibaba", "tencent", "selectel", "m247", "choopa"];
    /// TLDs.
    pub const TLDS: &[&str] =
        &["com", "net", "org", "info", "biz", "ru", "cn", "club", "xyz", "top", "site", "online", "io", "me", "cc", "us", "de", "kr", "su", "pw", "space", "live"];
    /// Services that might be exposed on attacker hosts.
    pub const SERVICES: &[&str] =
        &["http", "https", "ssh", "ftp", "smtp", "dns", "rdp", "telnet", "mysql", "smb", "vnc", "proxy", "socks", "tor"];
    /// Header flags.
    pub const HEADER_FLAGS: &[&str] =
        &["hsts", "csp", "nosniff", "cors", "set-cookie", "redirect", "self-signed", "expired-cert", "keep-alive", "etag", "powered-by"];
    /// HTTP codes attacker infrastructure commonly returns.
    pub const HTTP_CODES: &[u16] = &[200, 301, 302, 403, 404, 500, 502, 503];
}

/// A weighted preference over a small subset of a candidate pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preference {
    /// Chosen values with sampling weights (normalised at draw time).
    pub choices: Vec<(String, f32)>,
}

impl Preference {
    /// Draw `k` distinct values from `pool` with geometric weights.
    pub fn draw<R: Rng + ?Sized>(rng: &mut R, pool: &[&str], k: usize) -> Self {
        let mut picks: Vec<&str> = pool.to_vec();
        picks.shuffle(rng);
        picks.truncate(k.max(1).min(pool.len()));
        let choices = picks
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v.to_owned(), 0.5f32.powi(i as i32)))
            .collect();
        Self { choices }
    }

    /// Sample a value according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        let total: f32 = self.choices.iter().map(|(_, w)| w).sum();
        let mut t = rng.gen::<f32>() * total;
        for (v, w) in &self.choices {
            t -= w;
            if t <= 0.0 {
                return v;
            }
        }
        &self.choices.last().expect("non-empty preference").0
    }

    /// The most-preferred value.
    pub fn top(&self) -> &str {
        &self.choices[0].0
    }

    /// Replace this preference with a fresh draw (behavioural drift in
    /// the longitudinal study).
    pub fn redraw<R: Rng + ?Sized>(&mut self, rng: &mut R, pool: &[&str]) {
        *self = Self::draw(rng, pool, self.choices.len());
    }
}

/// DGA / naming style for a profile's domains and URL paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamingStyle {
    /// Probability a domain label is DGA-generated vs dictionary.
    pub dga_prob: f32,
    /// DGA label length range.
    pub dga_len: (usize, usize),
    /// Digit affinity of DGA labels.
    pub digit_affinity: f32,
    /// Probability a domain carries a subdomain label.
    pub subdomain_prob: f32,
    /// URL path depth range.
    pub path_depth: (usize, usize),
    /// URL path entropy level in `[0,1]`.
    pub path_entropy: f32,
    /// Probability a URL carries a query string.
    pub query_prob: f32,
    /// Probability a URL carries an explicit port.
    pub port_prob: f32,
}

/// The complete behavioural profile of one APT.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AptProfile {
    /// Canonical name.
    pub name: String,
    /// Feed aliases.
    pub aliases: Vec<String>,
    /// Relative share of events (the dataset is imbalanced).
    pub activity_weight: f32,
    /// Preferred full server banners (consistent strings → consistent
    /// one-hot slots downstream).
    pub servers: Preference,
    /// Preferred server OS.
    pub oses: Preference,
    /// Preferred content encodings.
    pub encodings: Preference,
    /// Preferred hosting countries.
    pub countries: Preference,
    /// Preferred IP issuers.
    pub issuers: Preference,
    /// Preferred TLDs.
    pub tlds: Preference,
    /// Services typically left exposed.
    pub services: Preference,
    /// Header flags typical of their kit.
    pub header_flags: Preference,
    /// Naming style.
    pub style: NamingStyle,
    /// Indices of this APT's preferred ASNs (filled by the world once
    /// the ASN registry exists).
    pub preferred_asns: Vec<usize>,
}

impl AptProfile {
    /// Generate a profile for `name`, drawing every preference from the
    /// shared pools. Profiles differ in which few values they favour but
    /// draw from the same pools, so classes overlap — the source of the
    /// paper's sub-50 % per-IOC accuracies.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, name: &str, rank: usize) -> Self {
        use pools::*;
        let server_banners: Vec<String> = {
            // Two or three *specific* banners (base + pinned version).
            let pref = Preference::draw(rng, SERVERS, 3);
            pref.choices
                .iter()
                .map(|(base, _)| crate::naming::common_server_banner(rng, base))
                .collect()
        };
        let servers = Preference {
            choices: server_banners
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v, 0.5f32.powi(i as i32)))
                .collect(),
        };
        Self {
            name: name.to_owned(),
            aliases: aliases(name).iter().map(|s| (*s).to_owned()).collect(),
            // Zipf-ish activity: earlier ranks are busier; floor keeps the
            // paper's >=25-events-per-APT inclusion rule satisfiable.
            activity_weight: 1.0 / (1.0 + rank as f32).powf(0.65),
            servers,
            oses: Preference::draw(rng, OSES, 2),
            encodings: Preference::draw(rng, ENCODINGS, 2),
            countries: Preference::draw(rng, COUNTRIES, 3),
            issuers: Preference::draw(rng, ISSUERS, 3),
            tlds: Preference::draw(rng, TLDS, 3),
            services: Preference::draw(rng, SERVICES, 3),
            header_flags: Preference::draw(rng, HEADER_FLAGS, 3),
            style: NamingStyle {
                dga_prob: rng.gen_range(0.15..0.95),
                dga_len: {
                    let lo = rng.gen_range(6..10);
                    (lo, lo + rng.gen_range(2..6))
                },
                digit_affinity: rng.gen_range(0.05..0.5),
                subdomain_prob: rng.gen_range(0.1..0.7),
                path_depth: {
                    let lo = rng.gen_range(0..2);
                    (lo, lo + rng.gen_range(1..3))
                },
                path_entropy: rng.gen_range(0.0..1.0),
                query_prob: rng.gen_range(0.1..0.8),
                port_prob: rng.gen_range(0.0..0.25),
            },
            preferred_asns: Vec::new(),
        }
    }

    /// Apply behavioural drift: re-draw one preference component.
    /// Used for post-cutoff months in the longitudinal study.
    pub fn drift<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        use pools::*;
        match rng.gen_range(0..5u8) {
            0 => {
                let pref = Preference::draw(rng, SERVERS, 3);
                self.servers = Preference {
                    choices: pref
                        .choices
                        .iter()
                        .enumerate()
                        .map(|(i, (b, _))| (crate::naming::common_server_banner(rng, b), 0.5f32.powi(i as i32)))
                        .collect(),
                };
            }
            1 => self.tlds.redraw(rng, TLDS),
            2 => self.countries.redraw(rng, COUNTRIES),
            3 => self.encodings.redraw(rng, ENCODINGS),
            _ => self.style.path_entropy = rng.gen_range(0.0..1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let p1 = AptProfile::generate(&mut a, "APT28", 0);
        let p2 = AptProfile::generate(&mut b, "APT28", 0);
        assert_eq!(p1, p2);
        let p3 = AptProfile::generate(&mut a, "APT29", 1);
        assert_ne!(p1.servers, p3.servers);
    }

    #[test]
    fn preference_sampling_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let pref = Preference::draw(&mut rng, pools::TLDS, 3);
        assert_eq!(pref.choices.len(), 3);
        for _ in 0..50 {
            let v = pref.sample(&mut rng).to_owned();
            assert!(pref.choices.iter().any(|(c, _)| *c == v));
        }
    }

    #[test]
    fn preference_top_is_heaviest() {
        let mut rng = StdRng::seed_from_u64(2);
        let pref = Preference::draw(&mut rng, pools::COUNTRIES, 3);
        // Geometric weights: first choice should dominate over many draws.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..400 {
            *counts.entry(pref.sample(&mut rng).to_owned()).or_insert(0) += 1;
        }
        let top_count = counts[pref.top()];
        assert!(counts.values().all(|&c| c <= top_count));
    }

    #[test]
    fn activity_weights_decay_by_rank() {
        let mut rng = StdRng::seed_from_u64(3);
        let p0 = AptProfile::generate(&mut rng, "A", 0);
        let p9 = AptProfile::generate(&mut rng, "B", 9);
        assert!(p0.activity_weight > p9.activity_weight);
    }

    #[test]
    fn drift_changes_something() {
        let mut rng = StdRng::seed_from_u64(4);
        let original = AptProfile::generate(&mut rng, "APT28", 0);
        let mut drifted = original.clone();
        // One redraw could land on the same values; several cannot (the
        // RNG stream guarantees at least one component changes here).
        for _ in 0..5 {
            drifted.drift(&mut rng);
        }
        assert_ne!(original, drifted);
    }

    #[test]
    fn alias_table_covers_paper_groups() {
        for name in ["APT28", "APT38", "KIMSUKY"] {
            assert!(!aliases(name).is_empty());
        }
        assert_eq!(APT_NAMES.len(), 22);
    }
}
