//! The end-to-end TRAIL orchestrator: collect → enrich → merge.

use trail_osint::OsintClient;

use crate::collector::{collect, AptRegistry, CollectStats, CollectedEvent};
use crate::enrich::{Enricher, IngestStats};
use crate::tkg::Tkg;

/// A built TRAIL system: the knowledge graph plus its data source.
pub struct TrailSystem {
    /// The OSINT client events were pulled from.
    pub client: OsintClient,
    /// The knowledge graph.
    pub tkg: Tkg,
    /// Day the TKG was built (analyses are as-of this day).
    pub asof_day: u32,
    /// Collection statistics of the initial build.
    pub collect_stats: CollectStats,
    /// Aggregate enrichment taxonomy across every ingest this system
    /// has run (initial build plus later windows).
    pub ingest_stats: IngestStats,
}

impl TrailSystem {
    /// Build the TKG from every report created before `until_day`.
    pub fn build(client: OsintClient, until_day: u32) -> Self {
        let registry = AptRegistry::new(client.world().config.n_apts);
        let reports = client.events_before(until_day);
        let (events, collect_stats) = collect(&reports, &registry);
        let mut tkg = Tkg::new(registry);
        let mut ingest_stats = IngestStats::default();
        {
            let enricher = Enricher::new(&client, until_day);
            for event in &events {
                ingest_stats.absorb(&enricher.ingest(&mut tkg, event));
            }
        }
        Self { client, tkg, asof_day: until_day, collect_stats, ingest_stats }
    }

    /// Ingest the reports of a later window into the existing TKG
    /// (the monthly update of the longitudinal study). Returns the
    /// collected events and per-event ingest statistics.
    pub fn ingest_window(&mut self, lo: u32, hi: u32) -> Vec<(CollectedEvent, IngestStats)> {
        let reports = self.client.events_between(lo, hi);
        let (events, stats) = collect(&reports, &self.tkg.registry);
        self.collect_stats.kept += stats.kept;
        self.collect_stats.unresolved += stats.unresolved;
        self.collect_stats.conflicting += stats.conflicting;
        self.collect_stats.rejected_indicators += stats.rejected_indicators;
        self.asof_day = self.asof_day.max(hi);
        let enricher = Enricher::new(&self.client, hi);
        events
            .into_iter()
            .map(|e| {
                let s = enricher.ingest(&mut self.tkg, &e);
                self.ingest_stats.absorb(&s);
                (e, s)
            })
            .collect()
    }

    /// Degradation score of everything ingested so far — 0.0 when the
    /// feed was healthy, approaching 1.0 when enrichment ran against a
    /// dead feed. Attribution results should be read alongside this.
    pub fn degradation(&self) -> f64 {
        self.ingest_stats.degradation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trail_osint::{World, WorldConfig};

    fn client() -> OsintClient {
        OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(55))))
    }

    #[test]
    fn build_ingests_all_precutoff_events() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let sys = TrailSystem::build(c, cutoff);
        assert!(sys.collect_stats.kept > 0);
        assert_eq!(sys.tkg.events.len(), sys.collect_stats.kept);
        // The TKG grows beyond first-order nodes via enrichment.
        let (n_nodes, n_edges) = (sys.tkg.graph.node_count(), sys.tkg.graph.edge_count());
        assert!(n_nodes > sys.tkg.events.len() * 2);
        assert!(n_edges >= n_nodes / 2);
    }

    #[test]
    fn incremental_window_ingest_extends_graph() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let horizon = c.world().config.horizon_day();
        let mut sys = TrailSystem::build(c, cutoff);
        let before = sys.tkg.events.len();
        let ingested = sys.ingest_window(cutoff, horizon);
        assert!(!ingested.is_empty());
        assert_eq!(sys.tkg.events.len(), before + ingested.len());
        assert_eq!(sys.asof_day, horizon);
    }

    #[test]
    fn build_aggregates_the_ingest_taxonomy() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let mut sys = TrailSystem::build(c, cutoff);
        let built = sys.ingest_stats.clone();
        assert!(built.first_order > 0);
        assert!(built.linked > 0, "no depth-2 links in a full build");
        assert!(built.missed_permanent > 0, "default 10% gaps produced no misses");
        assert_eq!(built.missed_transient, 0, "no faults injected, yet transient misses");
        // Window ingests keep accumulating into the same aggregate.
        let horizon = sys.client.world().config.horizon_day();
        sys.ingest_window(cutoff, horizon);
        assert!(sys.ingest_stats.first_order > built.first_order);
    }

    #[test]
    fn event_labels_match_world_truth_up_to_label_noise() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let sys = TrailSystem::build(c.clone(), cutoff);
        let mut agree = 0;
        for e in &sys.tkg.events {
            let truth = c.world().truth(&e.report_id).expect("generated event");
            if truth == e.apt as usize {
                agree += 1;
            }
        }
        let frac = agree as f64 / sys.tkg.events.len() as f64;
        assert!(frac > 0.8, "only {frac} of labels agree with ground truth");
        assert!(frac <= 1.0);
    }
}
