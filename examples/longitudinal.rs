//! Longitudinal study: how attribution quality degrades as the TKG and
//! model go stale, and what monthly fine-tuning recovers (paper Fig. 8).
//!
//! ```sh
//! cargo run --release --example longitudinal
//! ```

use std::sync::Arc;

use trail::attribute::GnnEvalConfig;
use trail::longitudinal::{run_monthly_study, StudyConfig};
use trail::system::TrailSystem;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{OsintClient, World, WorldConfig};

fn main() {
    let mut config = WorldConfig::default().scaled(0.25);
    config.seed = 42;
    config.study_events_per_month = 22; // the paper's June-2023 batch size
    let world = Arc::new(World::generate(config));
    let client = OsintClient::new(world);
    let cutoff = client.world().config.cutoff_day;
    let system = TrailSystem::build(client, cutoff);

    let cfg = StudyConfig {
        months: 5,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 48,
            train: trail_gnn::TrainConfig { lr: 2e-2, epochs: 150, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: false,
            label_visible_fraction: 0.7,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 128, code: 48, epochs: 3, ..Default::default() },
        fine_tune: trail_gnn::FineTune { lr: 5e-3, epochs: 8 },
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
    let out = run_monthly_study(&mut rng, system, &cfg);

    println!("first unseen month — confusion matrix of the frozen model:");
    let names: Vec<&str> = out.class_names.iter().map(String::as_str).collect();
    println!("{}", out.first_month_confusion.render(&names));

    println!("monthly accuracy, frozen vs monthly-fine-tuned model:");
    println!("{:>6} {:>8} {:>10} {:>10} {:>8}", "month", "events", "stale", "fresh", "gap");
    for m in &out.months {
        println!(
            "{:>6} {:>8} {:>10.3} {:>10.3} {:>+8.3}",
            m.month,
            m.n_events,
            m.stale_acc,
            m.fresh_acc,
            m.fresh_acc - m.stale_acc
        );
    }
    println!(
        "\npaper: the stale-fresh gap grows roughly 3.5% per month —\n\
         \"clearly in a realistic setting, the GNN should be retrained frequently\"."
    );
}
