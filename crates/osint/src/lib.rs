//! Synthetic OSINT substrate for the TRAIL reproduction.
//!
//! The paper collects 4,512 attributed incident reports from AlienVault
//! OTX and enriches their IOCs through passive DNS, geo-IP and header
//! probes. That feed is unavailable offline, so this crate implements a
//! *generative ground-truth world* with the same observable surface:
//!
//! * [`profile::AptProfile`] — 22 APT behavioural profiles with
//!   distinct-but-overlapping preferences (TLDs, registrars, server
//!   stacks, countries, DGA styles) and campaign structure.
//! * [`world::World`] — the ground-truth registries: ASNs, IP geo/issuer
//!   data, DNS resolution history, URL server configurations, and the
//!   generated timeline of attributed events.
//! * [`client::OsintClient`] — the OTX-like API the TRAIL pipeline
//!   consumes: event search plus per-IOC analysis endpoints, with
//!   realistic noise (missing records, NXDOMAINs, junk indicators).
//!
//! The generator is parameterised ([`config::WorldConfig`]) so the three
//! phenomena the paper's results rest on are reproduced and tunable:
//! weak per-IOC feature signal, heavy intra-APT infrastructure reuse,
//! and enrichment-only (secondary) connectivity.

pub mod breaker;
pub mod client;
pub mod config;
pub mod naming;
pub mod profile;
pub mod world;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{OsintClient, OsintError};
pub use config::WorldConfig;
pub use profile::AptProfile;
pub use world::{ChaosPlan, GeneratedEvent, World};

/// Days per month in the synthetic timeline (the paper's longitudinal
/// study is monthly; a fixed 30-day month keeps arithmetic simple).
pub const DAYS_PER_MONTH: u32 = 30;
