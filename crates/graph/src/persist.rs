//! Crash-safe snapshot persistence for the graph store.
//!
//! Snapshot layout (all integers little-endian):
//!
//! ```text
//! magic    b"TKG2"                       4 bytes
//! version  u32 (currently 2)             4 bytes
//! length   u64 payload byte count        8 bytes
//! checksum u64 FNV-1a over the payload   8 bytes
//! payload  nodes + edges (see below)
//! ```
//!
//! The payload encodes only the authoritative state — node records and
//! the edge list; every lookup index is reconstructed on load via
//! [`GraphStore::rebuild_indices`], which halves the snapshot and
//! removes a whole class of index/state divergence bugs. Each node is
//! `kind:u8, key:(u32 len + bytes), label:(u8 flag [+ u16]),
//! first_order:u8`; each edge is `src:u32, dst:u32, kind:u8`.
//!
//! Failure model: a torn or bit-flipped snapshot must never load as a
//! silently wrong graph. Truncation is caught by the length field,
//! corruption anywhere in the payload by the checksum, and corruption
//! of the header fields by the magic/version/length checks themselves —
//! every failure surfaces as a typed [`PersistError`], never a panic.
//! [`save`] writes through a temp file in the target directory and
//! atomically renames it into place, so a crash mid-write leaves the
//! previous snapshot intact.

use std::path::Path;

use crate::ids::LabelId;
use crate::schema::{EdgeKind, NodeKind};
use crate::store::GraphStore;
use crate::{GraphError, NodeId, Result};

const MAGIC: &[u8; 4] = b"TKG2";
const VERSION: u32 = 2;
const HEADER_LEN: usize = 24;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum PersistError {
    /// Fewer bytes than one header.
    TooShort {
        /// Bytes available.
        have: usize,
    },
    /// The first four bytes are not the snapshot magic.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// A snapshot from an unknown format version.
    UnsupportedVersion {
        /// The version field found.
        found: u32,
    },
    /// The payload length does not match the header's length field.
    /// `want` stays `u64` — it is an *untrusted* on-disk field and must
    /// be representable (and comparable) without ever converting it to
    /// `usize`, which would wrap on 32-bit targets.
    Truncated {
        /// Payload bytes the header promised.
        want: u64,
        /// Payload bytes actually present.
        have: usize,
    },
    /// The payload hash does not match the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually read.
        actual: u64,
    },
    /// The checksum passed but the payload structure is invalid (only
    /// reachable for snapshots produced by a buggy or hostile writer).
    Malformed {
        /// Byte offset into the payload.
        offset: usize,
        /// What was wrong there.
        what: &'static str,
    },
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::TooShort { have } => {
                write!(f, "snapshot too short: {have} bytes, header needs {HEADER_LEN}")
            }
            PersistError::BadMagic { found } => write!(f, "bad magic {found:?}"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            PersistError::Truncated { want, have } => {
                write!(f, "truncated snapshot: payload wants {want} bytes, have {have}")
            }
            PersistError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header {expected:#018x}, payload {actual:#018x}")
            }
            PersistError::Malformed { offset, what } => {
                write!(f, "malformed payload at byte {offset}: {what}")
            }
            PersistError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for GraphError {
    fn from(e: PersistError) -> Self {
        GraphError::Persist(e)
    }
}

/// 64-bit FNV-1a over raw bytes — the snapshot checksum. Not
/// cryptographic; it guards against torn writes and bit rot, not
/// forgery.
pub fn fnv1a_bytes(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// --- encoding helpers ------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, what: &'static str) -> PersistError {
        PersistError::Malformed { offset: self.pos, what }
    }

    fn take(&mut self, n: usize, what: &'static str) -> std::result::Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        match end {
            Some(end) => {
                let slice = &self.data[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(self.err(what)),
        }
    }

    fn u8(&mut self, what: &'static str) -> std::result::Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> std::result::Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self, what: &'static str) -> std::result::Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> std::result::Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self, what: &'static str) -> std::result::Result<&'a str, PersistError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Malformed { offset: self.pos, what: "non-UTF-8 string" })
    }
}

/// Serialise a graph into a framed, checksummed snapshot.
pub fn to_bytes(g: &GraphStore) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32 * g.node_count() + 9 * g.edge_count() + 16);
    put_u64(&mut payload, g.node_count() as u64);
    for (_, rec) in g.iter_nodes() {
        payload.push(rec.kind.index() as u8);
        put_str(&mut payload, g.resolve(rec.key));
        match rec.label() {
            Some(l) => {
                payload.push(1);
                payload.extend_from_slice(&l.0.to_le_bytes());
            }
            None => payload.push(0),
        }
        payload.push(rec.first_order() as u8);
    }
    put_u64(&mut payload, g.edge_count() as u64);
    for e in g.edges() {
        put_u32(&mut payload, e.src.0);
        put_u32(&mut payload, e.dst.0);
        payload.push(e.kind.index() as u8);
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    put_u64(&mut out, payload.len() as u64);
    put_u64(&mut out, fnv1a_bytes(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Deserialise a snapshot, verifying frame, checksum and structure and
/// rebuilding every lookup index.
pub fn from_bytes(data: &[u8]) -> Result<GraphStore> {
    Ok(checked_decode(data)?)
}

fn checked_decode(data: &[u8]) -> std::result::Result<GraphStore, PersistError> {
    if data.len() < HEADER_LEN {
        return Err(PersistError::TooShort { have: data.len() });
    }
    let found: [u8; 4] = data[..4].try_into().expect("4 bytes");
    if &found != MAGIC {
        return Err(PersistError::BadMagic { found });
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    let want = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let expected = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
    let payload = &data[HEADER_LEN..];
    // Validate the untrusted length entirely in the u64 domain, before
    // any `as usize` conversion, slicing or allocation: a length field
    // like `payload.len() + 2^32` must be rejected here, not silently
    // truncated into a matching value on a 32-bit target.
    if payload.len() as u64 != want {
        return Err(PersistError::Truncated { want, have: payload.len() });
    }
    let actual = fnv1a_bytes(payload);
    if actual != expected {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }
    decode_payload(payload)
}

fn decode_payload(payload: &[u8]) -> std::result::Result<GraphStore, PersistError> {
    let mut c = Cursor { data: payload, pos: 0 };
    // Plausibility-check untrusted counts in the u64 domain *before*
    // the usize cast — on a 32-bit target `count as usize` wraps, and a
    // wrapped value could sneak under the bound (same discipline as the
    // hostile length-field check in `checked_decode`).
    let n_nodes_raw = c.u64("node count")?;
    // 8 bytes per node minimum keeps hostile counts from reserving RAM.
    if n_nodes_raw > payload.len() as u64 / 8 + 1 {
        return Err(c.err("implausible node count"));
    }
    let n_nodes = n_nodes_raw as usize;
    let mut g = GraphStore::with_capacity(n_nodes, 0);
    for _ in 0..n_nodes {
        let kind_idx = c.u8("node kind")? as usize;
        let kind =
            *NodeKind::ALL.get(kind_idx).ok_or_else(|| c.err("node kind out of range"))?;
        let key = c.str("node key")?.to_owned();
        let id = g.upsert_node(kind, &key);
        if id.index() != g.node_count() - 1 {
            return Err(c.err("duplicate node key"));
        }
        match c.u8("label flag")? {
            0 => {}
            1 => {
                let label = LabelId(c.u16("label id")?);
                g.set_label(id, label).map_err(|_| c.err("label on unknown node"))?;
            }
            _ => return Err(c.err("invalid label flag")),
        }
        match c.u8("first-order flag")? {
            0 => {}
            1 => g.mark_first_order(id),
            _ => return Err(c.err("invalid first-order flag")),
        }
    }
    let n_edges_raw = c.u64("edge count")?;
    if n_edges_raw > payload.len() as u64 / 9 + 1 {
        return Err(c.err("implausible edge count"));
    }
    let n_edges = n_edges_raw as usize;
    for _ in 0..n_edges {
        let src = NodeId(c.u32("edge src")?);
        let dst = NodeId(c.u32("edge dst")?);
        let kind_idx = c.u8("edge kind")? as usize;
        let kind =
            *EdgeKind::ALL.get(kind_idx).ok_or_else(|| c.err("edge kind out of range"))?;
        if src.index() >= g.node_count() || dst.index() >= g.node_count() {
            return Err(c.err("edge endpoint out of range"));
        }
        match g.add_edge(src, dst, kind) {
            Ok(true) => {}
            Ok(false) => return Err(c.err("duplicate edge")),
            Err(_) => return Err(c.err("edge violates schema")),
        }
    }
    if c.pos != payload.len() {
        return Err(c.err("trailing bytes after edges"));
    }
    Ok(g)
}

/// Write a snapshot to `path` crash-safely: the bytes go to a temp
/// file in the same directory, are fsynced, and are renamed into place
/// — readers see either the old complete snapshot or the new one.
pub fn save(g: &GraphStore, path: &Path) -> Result<()> {
    Ok(write_atomic(path, &to_bytes(g))?)
}

/// Atomically replace `path` with `data` (unique temp file + fsynced
/// rename).
///
/// Two durability details are load-bearing:
///
/// * The temp name is suffixed with the pid and a process-local
///   counter, so concurrent writers targeting the same path each get
///   their own temp file — with a fixed suffix, writer B's `create`
///   truncates writer A's half-written temp and A's rename then
///   installs B-sized garbage *as the surviving snapshot*.
/// * After the rename, the **parent directory** is fsynced. On
///   ext4/xfs a rename is a directory mutation; syncing only the file
///   leaves a crash window where the old directory entry comes back
///   and the "committed" snapshot silently reverts.
///
/// Concurrent writers still race on *which* complete snapshot
/// survives (last rename wins) — atomicity here means the survivor is
/// always one writer's complete bytes, never an interleaving.
pub fn write_atomic(path: &Path, data: &[u8]) -> std::result::Result<(), PersistError> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        PersistError::Io(std::io::Error::new(std::io::ErrorKind::InvalidInput, "no file name"))
    })?;
    let mut tmp_name = file_name.to_owned();
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            std::fs::File::open(d)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result.map_err(PersistError::Io)
}

/// Load a snapshot from a file.
pub fn load(path: &Path) -> Result<GraphStore> {
    let data = std::fs::read(path).map_err(|e| GraphError::Persist(PersistError::Io(e)))?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LabelId;
    use crate::schema::{EdgeKind, NodeKind};

    fn sample() -> GraphStore {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "evt");
        let ip = g.upsert_node(NodeKind::Ip, "1.2.3.4");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.set_label(e, LabelId(5)).unwrap();
        g.mark_first_order(ip);
        g
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample();
        let bytes = to_bytes(&g);
        let g2 = from_bytes(&bytes).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        let e = g2.find_node(NodeKind::Event, "evt").unwrap();
        assert_eq!(g2.node(e).label(), Some(LabelId(5)));
        let ip = g2.find_node(NodeKind::Ip, "1.2.3.4").unwrap();
        assert!(g2.node(ip).first_order());
        assert_eq!(g2.out_neighbors(e), &[(ip, EdgeKind::InReport)]);
    }

    #[test]
    fn rejects_corrupt_frames() {
        assert!(matches!(
            from_bytes(b"short"),
            Err(GraphError::Persist(PersistError::TooShort { .. }))
        ));
        assert!(matches!(
            from_bytes(b"XXXX\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"),
            Err(GraphError::Persist(PersistError::BadMagic { .. }))
        ));
        let mut bytes = to_bytes(&sample());
        bytes.truncate(bytes.len() - 4);
        assert!(matches!(
            from_bytes(&bytes),
            Err(GraphError::Persist(PersistError::Truncated { .. }))
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = to_bytes(&sample());
        for offset in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x40;
            assert!(
                from_bytes(&corrupt).is_err(),
                "flip at byte {offset} of {} must be rejected",
                bytes.len()
            );
        }
    }

    /// Fuzz-style sweep over the untrusted length field: truncated,
    /// inflated, and 32-bit-wrapping values must all surface as typed
    /// errors before any slicing or allocation.
    #[test]
    fn hostile_length_fields_are_rejected_before_use() {
        let good = to_bytes(&sample());
        let payload_len = (good.len() - 24) as u64;
        let hostile: &[u64] = &[
            0,
            payload_len - 1,
            payload_len + 1,
            // Low 32 bits match the real payload length: on a 32-bit
            // target a `want as usize` conversion would wrap to the
            // correct value and let the frame through.
            payload_len + (1u64 << 32),
            payload_len + (1u64 << 48),
            u64::MAX,
            u64::from(u32::MAX),
        ];
        for &want in hostile {
            let mut bytes = good.clone();
            bytes[8..16].copy_from_slice(&want.to_le_bytes());
            match from_bytes(&bytes) {
                Err(GraphError::Persist(PersistError::Truncated { want: w, have })) => {
                    assert_eq!(w, want);
                    assert_eq!(have, payload_len as usize);
                }
                other => panic!("length {want:#x} accepted or misreported: {other:?}"),
            }
        }
        // Truncating the buffer (not the field) is the symmetric case.
        for cut in 1..4 {
            let mut bytes = good.clone();
            bytes.truncate(bytes.len() - cut);
            assert!(matches!(
                from_bytes(&bytes),
                Err(GraphError::Persist(PersistError::Truncated { .. }))
            ));
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = to_bytes(&sample());
        bytes[4] = 9;
        assert!(matches!(
            from_bytes(&bytes),
            Err(GraphError::Persist(PersistError::UnsupportedVersion { found: 9 }))
        ));
    }

    #[test]
    fn rejects_structurally_invalid_payload_with_valid_checksum() {
        // A "snapshot" whose checksum is honest but whose payload lies:
        // one node promised, zero encoded.
        let payload = 1u64.to_le_bytes().to_vec();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            from_bytes(&bytes),
            Err(GraphError::Persist(PersistError::Malformed { .. }))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("trail_graph_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tkg");
        save(&sample(), &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(g2.node_count(), 2);
        // Saving over an existing snapshot leaves no temp file behind,
        // whatever unique suffix it used.
        save(&sample(), &path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    /// The PR 9 regression: with a fixed `.tmp` suffix, two concurrent
    /// writers to the same path shared one temp file — writer B's
    /// `create` truncated writer A's half-written temp, and A's rename
    /// could then install B-sized garbage as the surviving snapshot.
    /// With pid+counter suffixes the survivor must always be one
    /// writer's complete payload, bitwise.
    #[test]
    fn concurrent_writers_never_corrupt_the_survivor() {
        let dir = std::env::temp_dir()
            .join(format!("trail_graph_persist_race_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tkg");
        // Distinct payload sizes per writer: a cross-writer truncation
        // or interleaving cannot reproduce any complete payload.
        let payloads: Vec<Vec<u8>> = (0..4u8)
            .map(|w| {
                let mut g = GraphStore::new();
                for i in 0..(4 + w as usize * 3) {
                    g.upsert_node(NodeKind::Ip, &format!("10.0.{w}.{i}"));
                }
                to_bytes(&g)
            })
            .collect();
        for round in 0..8 {
            let survivors: Vec<Vec<u8>> = std::thread::scope(|s| {
                let handles: Vec<_> = payloads
                    .iter()
                    .map(|p| {
                        let path = path.clone();
                        s.spawn(move || write_atomic(&path, p).unwrap())
                    })
                    .collect();
                handles.into_iter().for_each(|h| h.join().unwrap());
                payloads.clone()
            });
            let got = std::fs::read(&path).unwrap();
            assert!(
                survivors.iter().any(|p| *p == got),
                "round {round}: surviving snapshot matches no writer's payload \
                 ({} bytes)",
                got.len()
            );
            // And it still parses as a complete snapshot.
            from_bytes(&got).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = GraphStore::new();
        let g2 = from_bytes(&to_bytes(&g)).unwrap();
        assert_eq!(g2.node_count(), 0);
        assert_eq!(g2.edge_count(), 0);
    }
}
