//! The 115-dimension domain feature encoder.
//!
//! Layout: `0..100` TLD · `100..109` passive-DNS record-type counts ·
//! `109` NXDOMAIN flag · `110..114` lexical · `114` active period
//! (the engineered feature from the paper's preprocessing).

use crate::analysis::{DomainAnalysis, DNS_RECORD_TYPES};
use crate::domain::DomainIoc;
use crate::vocab::Vocab;

use super::*;

const TLD: (usize, usize) = (0, 100);
const RECORDS: (usize, usize) = (100, 9);
const NXDOMAIN: usize = 109;
const LEXICAL: (usize, usize) = (110, 4);
const ACTIVE_PERIOD: usize = 114;

/// Names of the four lexical slots.
pub const LEXICAL_NAMES: [&str; 4] = ["length", "digit_ratio", "periods", "entropy"];

/// Encoder for domain IOCs. Construct once and reuse.
#[derive(Debug, Clone)]
pub struct DomainEncoder {
    tld: Vocab,
}

impl Default for DomainEncoder {
    fn default() -> Self {
        Self { tld: Vocab::new("tld", TLD.1, COMMON_TLDS) }
    }
}

impl DomainEncoder {
    /// Total output width (= [`DOMAIN_DIMS`]).
    pub const DIMS: usize = DOMAIN_DIMS;

    /// Encode a domain and its enrichment analysis into a feature vector.
    pub fn encode(&self, d: &DomainIoc, a: &DomainAnalysis) -> Vec<f32> {
        let mut out = vec![0.0f32; DOMAIN_DIMS];
        out[TLD.0 + self.tld.slot(d.tld())] = 1.0;
        for (i, &c) in a.record_counts.iter().enumerate() {
            out[RECORDS.0 + i] = (c as f32).ln_1p();
        }
        out[NXDOMAIN] = if a.nxdomain { 1.0 } else { 0.0 };
        let lex = d.lexical();
        out[LEXICAL.0] = lex.length;
        out[LEXICAL.0 + 1] = lex.digit_ratio;
        out[LEXICAL.0 + 2] = lex.periods;
        out[LEXICAL.0 + 3] = lex.entropy;
        out[ACTIVE_PERIOD] = a.active_period().ln_1p();
        out
    }

    /// Human-readable name of feature slot `idx`.
    pub fn feature_name(&self, idx: usize) -> String {
        debug_assert!(idx < DOMAIN_DIMS);
        if idx < TLD.1 {
            self.tld.slot_name(idx)
        } else if idx < RECORDS.0 + RECORDS.1 {
            format!("dns_{}_count", DNS_RECORD_TYPES[idx - RECORDS.0].to_lowercase())
        } else if idx == NXDOMAIN {
            "nxdomain".to_owned()
        } else if idx < LEXICAL.0 + LEXICAL.1 {
            LEXICAL_NAMES[idx - LEXICAL.0].to_owned()
        } else {
            "active_period".to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_sums_to_total() {
        assert_eq!(TLD.1 + RECORDS.1 + 1 + LEXICAL.1 + 1, DOMAIN_DIMS);
        assert_eq!(ACTIVE_PERIOD, DOMAIN_DIMS - 1);
    }

    #[test]
    fn encode_basic() {
        let enc = DomainEncoder::default();
        let d = DomainIoc::parse("v5y7s3.l2twn2.club").unwrap();
        let a = DomainAnalysis {
            record_counts: [1, 0, 0, 0, 2, 0, 0, 0, 0],
            nxdomain: true,
            first_seen_days: 50.0,
            last_seen_days: 10.0,
            ..Default::default()
        };
        let v = enc.encode(&d, &a);
        assert_eq!(v.len(), DOMAIN_DIMS);
        // "club" is curated TLD index 7.
        assert_eq!(v[7], 1.0);
        assert!((v[RECORDS.0] - 2.0f32.ln()).abs() < 1e-6); // ln(1+1)
        assert!((v[RECORDS.0 + 4] - 3.0f32.ln()).abs() < 1e-6); // NS count 2
        assert_eq!(v[NXDOMAIN], 1.0);
        assert_eq!(v[LEXICAL.0], 18.0); // length
        assert!((v[ACTIVE_PERIOD] - 41.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn feature_names_cover_all_slots() {
        let enc = DomainEncoder::default();
        assert_eq!(enc.feature_name(0), "tld=com");
        assert_eq!(enc.feature_name(RECORDS.0), "dns_a_count");
        assert_eq!(enc.feature_name(NXDOMAIN), "nxdomain");
        assert_eq!(enc.feature_name(LEXICAL.0 + 3), "entropy");
        assert_eq!(enc.feature_name(ACTIVE_PERIOD), "active_period");
        for i in 0..DOMAIN_DIMS {
            assert!(!enc.feature_name(i).is_empty());
        }
    }
}
