//! Typed property-graph store and algorithms for the TRAIL knowledge graph.
//!
//! The paper stores the TKG in neo4j and uses it for traversal queries
//! (k-hop neighbourhoods, ego-nets, connected components, diameter).
//! This crate is the embedded substitute: a deduplicating, schema-checked
//! property graph ([`GraphStore`]) with a frozen CSR view ([`Csr`]) for
//! fast traversal, the algorithm suite the paper's Section V analysis
//! needs ([`algo`]), and a JSON snapshot format ([`persist`]).
//!
//! Node and edge kinds mirror the schema of the paper's Figure 2 and
//! Table I exactly; see [`schema`].

pub mod algo;
pub mod csr;
pub mod ids;
pub mod persist;
pub mod schema;
pub mod store;
pub mod sym;

pub use csr::{Csr, WideCsr};
pub use ids::NodeId;
pub use persist::PersistError;
pub use schema::{EdgeKind, NodeKind};
pub use store::{GraphStore, NodeRecord};
pub use sym::{Interner, Sym};

/// Errors raised by graph mutation and persistence.
#[derive(Debug)]
pub enum GraphError {
    /// An edge was inserted between node kinds the Table I schema forbids.
    SchemaViolation {
        /// Offending edge kind.
        edge: EdgeKind,
        /// Source node kind supplied.
        src: NodeKind,
        /// Destination node kind supplied.
        dst: NodeKind,
    },
    /// A node id was out of range for this graph.
    UnknownNode(NodeId),
    /// Snapshot (de)serialisation failure.
    Persist(PersistError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::SchemaViolation { edge, src, dst } => {
                write!(f, "edge {edge:?} not allowed from {src:?} to {dst:?}")
            }
            GraphError::UnknownNode(id) => write!(f, "unknown node {id:?}"),
            GraphError::Persist(e) => write!(f, "persistence error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
