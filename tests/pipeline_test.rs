//! End-to-end pipeline integration: feed → collector → enrichment →
//! TKG, and the invariants the paper's construction relies on.

use std::sync::Arc;

use trail::collector::AptRegistry;
use trail::report::{first_order_subgraph, graph_stats, ReuseHistogram};
use trail::system::TrailSystem;
use trail_graph::{Csr, EdgeKind, NodeKind};
use trail_osint::{OsintClient, World, WorldConfig};

fn build(seed: u64) -> TrailSystem {
    let client = OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(seed))));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

#[test]
fn full_build_is_deterministic() {
    let a = build(404);
    let b = build(404);
    assert_eq!(a.tkg.graph.node_count(), b.tkg.graph.node_count());
    assert_eq!(a.tkg.graph.edge_count(), b.tkg.graph.edge_count());
    assert_eq!(a.tkg.events.len(), b.tkg.events.len());
    for (x, y) in a.tkg.events.iter().zip(&b.tkg.events) {
        assert_eq!(x.report_id, y.report_id);
        assert_eq!(x.apt, y.apt);
    }
}

#[test]
fn every_edge_respects_the_table1_schema() {
    let sys = build(405);
    for e in sys.tkg.graph.edges() {
        let src = sys.tkg.graph.node(e.src).kind;
        let dst = sys.tkg.graph.node(e.dst).kind;
        assert!(e.kind.allows(src, dst), "{:?}: {src:?} -> {dst:?}", e.kind);
    }
}

#[test]
fn labels_only_on_event_nodes() {
    let sys = build(406);
    for (_, rec) in sys.tkg.graph.iter_nodes() {
        if rec.label().is_some() {
            assert_eq!(rec.kind, NodeKind::Event);
        }
    }
    // And every collected event carries its label.
    for info in &sys.tkg.events {
        assert_eq!(
            sys.tkg.graph.node(info.node).label(),
            Some(trail_graph::ids::LabelId(info.apt))
        );
    }
}

#[test]
fn secondary_nodes_exist_and_are_not_first_order() {
    let sys = build(407);
    let secondary = sys
        .tkg
        .graph
        .iter_nodes()
        .filter(|(_, n)| {
            !n.first_order() && matches!(n.kind, NodeKind::Ip | NodeKind::Domain | NodeKind::Url)
        })
        .count();
    assert!(secondary > 0, "enrichment discovered no secondary IOCs");
    // Secondary IOCs have no InReport in-edges.
    for (id, rec) in sys.tkg.graph.iter_nodes() {
        if !rec.first_order() && rec.kind != NodeKind::Event && rec.kind != NodeKind::Asn {
            let reported = sys
                .tkg
                .graph
                .in_neighbors(id)
                .iter()
                .any(|(_, k)| *k == EdgeKind::InReport);
            assert!(!reported, "secondary node {} has an InReport edge", rec.key);
        }
    }
}

#[test]
fn paper_section5_shape_holds_on_tiny_worlds() {
    let sys = build(408);
    let csr = sys.tkg.csr();
    let stats = graph_stats(&sys.tkg, &csr);
    assert!(stats.largest_fraction > 0.5);
    assert!(stats.events_within_2_hops > 0.4);
    // First-order-only subgraph fragments relative to its size.
    let sub = first_order_subgraph(&sys.tkg);
    let sub_cc = trail_graph::algo::connected_components(&Csr::from_store(&sub));
    assert!(sub_cc.count() >= 1);
    assert!(sub.node_count() < sys.tkg.graph.node_count());
}

#[test]
fn reuse_histogram_totals_match_first_order_population() {
    let sys = build(409);
    let hist = ReuseHistogram::compute(&sys.tkg);
    let histogram_total: usize = hist.buckets.iter().map(|b| b.values().sum::<usize>()).sum();
    let first_order_iocs = sys
        .tkg
        .graph
        .iter_nodes()
        .filter(|(_, n)| n.first_order() && n.kind != NodeKind::Event)
        .count();
    assert_eq!(histogram_total, first_order_iocs);
}

#[test]
fn graph_snapshot_roundtrips_through_persistence() {
    let sys = build(410);
    let bytes = trail_graph::persist::to_bytes(&sys.tkg.graph);
    let restored = trail_graph::persist::from_bytes(&bytes).expect("deserialise");
    assert_eq!(restored.node_count(), sys.tkg.graph.node_count());
    assert_eq!(restored.edge_count(), sys.tkg.graph.edge_count());
    // Spot-check an event label and a first-order flag.
    let info = &sys.tkg.events[0];
    let node = restored
        .find_node(NodeKind::Event, &info.report_id)
        .expect("event survives the roundtrip");
    assert_eq!(restored.node(node).label(), Some(trail_graph::ids::LabelId(info.apt)));
}

#[test]
fn registry_matches_world_apts() {
    let sys = build(411);
    let registry = AptRegistry::new(sys.client.world().config.n_apts);
    assert_eq!(registry.len(), sys.tkg.n_classes());
    for e in &sys.tkg.events {
        assert!((e.apt as usize) < registry.len());
    }
}
