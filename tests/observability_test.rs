//! End-to-end observability tests: the `trail-obs` registry must
//! reconcile exactly with the pipeline's own accounting
//! ([`trail::enrich::IngestStats`]) and must be deterministic across
//! worker-thread counts.
//!
//! The metrics registry is process-global, so every test here takes a
//! shared mutex and resets the registry before measuring. Counter
//! identities verified (each `enrich_*` call runs `with_retries`
//! exactly once):
//!
//! * `osint.queries == first_order + secondary + retried`
//! * `osint.faults  == retried + missed_transient + breaker_rejected`
//! * `osint.misses  == missed_permanent`
//! * `enrich.retry_backoff_ms`: total == retried, sum == backoff_ms
//! * `enrich.attempts_per_query`: total == first_order + secondary,
//!   sum == osint.queries

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use trail::collector::{collect, AptRegistry};
use trail::enrich::{Enricher, IngestStats};
use trail::system::TrailSystem;
use trail::tkg::Tkg;
use trail_gnn::LabelPropagation;
use trail_osint::{OsintClient, World, WorldConfig};

/// Serialize access to the global registry across the tests in this
/// binary, and start each test from a clean, enabled registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    trail_obs::set_enabled(true);
    trail_obs::reset();
    g
}

/// Ingest every pre-cutoff event of a fault-injected world and return
/// (events ingested, pipeline stats, registry snapshot).
fn faulty_ingest(n_events: usize, fault_prob: f32) -> (usize, IngestStats, trail_obs::MetricsSnapshot) {
    faulty_ingest_with(n_events, fault_prob, false)
}

/// [`faulty_ingest`] with an optional circuit breaker armed on the
/// client (default breaker thresholds).
fn faulty_ingest_with(
    n_events: usize,
    fault_prob: f32,
    breaker: bool,
) -> (usize, IngestStats, trail_obs::MetricsSnapshot) {
    let mut cfg = WorldConfig::tiny(77);
    cfg.n_events = n_events;
    cfg.transient_fault_prob = fault_prob;
    let mut client = OsintClient::new(Arc::new(World::generate(cfg)));
    if breaker {
        client.set_breaker(Arc::new(trail_osint::CircuitBreaker::default()));
    }
    let registry = AptRegistry::new(client.world().config.n_apts);
    let cutoff = client.world().config.cutoff_day;
    let reports = client.events_before(cutoff);
    let (events, _) = collect(&reports, &registry);
    assert!(!events.is_empty(), "no events collected");
    trail_obs::reset();
    let mut tkg = Tkg::new(registry);
    let enricher = Enricher::new(&client, cutoff);
    let mut stats = IngestStats::default();
    for e in &events {
        stats.absorb(&enricher.ingest(&mut tkg, e));
    }
    (events.len(), stats, trail_obs::snapshot())
}

fn assert_reconciles(n_events: usize, stats: &IngestStats, snap: &trail_obs::MetricsSnapshot) {
    let queries = snap.counter("osint.queries");
    assert_eq!(
        queries,
        (stats.first_order + stats.secondary + stats.retried) as u64,
        "query counter disagrees with the ingest taxonomy: {stats:?}"
    );
    assert_eq!(
        snap.counter("osint.faults"),
        (stats.retried + stats.missed_transient + stats.breaker_rejected) as u64,
        "every fault is retried, abandoned, or a breaker rejection"
    );
    assert_eq!(snap.counter("osint.misses"), stats.missed_permanent as u64);

    let backoff = snap.histogram("enrich.retry_backoff_ms").expect("backoff histogram");
    assert_eq!(backoff.total(), stats.retried as u64, "one backoff observation per retry");
    assert_eq!(backoff.sum, stats.backoff_ms, "histogram sum is the exact backoff budget");

    let attempts = snap.histogram("enrich.attempts_per_query").expect("attempts histogram");
    assert_eq!(attempts.total(), (stats.first_order + stats.secondary) as u64);
    assert_eq!(attempts.sum, queries, "attempt counts sum to the queries issued");

    let ingest = snap.span("enrich.ingest").expect("ingest span");
    assert_eq!(ingest.count, n_events as u64);
    for child in ["attach", "depth1", "depth2"] {
        let path = format!("enrich.ingest/{child}");
        let s = snap.span(&path).unwrap_or_else(|| panic!("missing span {path}"));
        assert_eq!(s.count, n_events as u64, "{path} ran once per event");
    }
}

#[test]
fn counters_reconcile_with_ingest_stats_on_faulty_run() {
    let _g = obs_lock();
    let (n_events, stats, snap) = faulty_ingest(48, 0.1);
    assert!(stats.retried > 0, "10% fault injection triggered no retries");
    assert_reconciles(n_events, &stats, &snap);
}

#[test]
fn counters_reconcile_without_faults() {
    let _g = obs_lock();
    let (n_events, stats, snap) = faulty_ingest(48, 0.0);
    assert_eq!(stats.retried, 0);
    assert_eq!(snap.counter("osint.faults"), 0);
    assert!(snap.histogram("enrich.retry_backoff_ms").map_or(0, |h| h.total()) == 0);
    assert_reconciles(n_events, &stats, &snap);
}

#[test]
fn counters_reconcile_with_a_breaker_on_a_dead_feed() {
    let _g = obs_lock();
    let (n_events, stats, snap) = faulty_ingest_with(48, 1.0, true);
    assert!(stats.breaker_rejected > 0, "dead feed never tripped the breaker");
    assert_eq!(
        stats.missed_permanent, 0,
        "breaker rejections happen before any lookup, so they must never count as permanent gaps"
    );
    assert!(snap.counter("osint.breaker.opened") >= 1);
    assert_eq!(snap.counter("osint.breaker.rejected"), stats.breaker_rejected as u64);
    assert_reconciles(n_events, &stats, &snap);
}

#[test]
#[ignore = "slow: full reconciliation sweep on a larger world"]
fn reconciliation_holds_at_larger_scale() {
    let _g = obs_lock();
    let (n_events, stats, snap) = faulty_ingest(400, 0.1);
    assert!(stats.retried > 0);
    assert!(stats.missed_permanent > 0);
    assert_reconciles(n_events, &stats, &snap);
}

/// `TRAIL_THREADS` is read once per process (`OnceLock`), so a single
/// test cannot flip the global pool width; the explicit-thread label
/// propagation entry point carries the thread count instead, over a
/// pipeline run that is identical either way. Everything except the
/// `*_ns` fields must match bit-for-bit.
#[test]
fn snapshots_identical_across_thread_counts_except_wall_clock() {
    let _g = obs_lock();
    let run = |threads: usize| {
        trail_obs::reset();
        let client = OsintClient::new(Arc::new(World::fixture()));
        let cutoff = client.world().config.cutoff_day;
        let sys = TrailSystem::build(client, cutoff);
        let csr = sys.tkg.csr();
        let lp = LabelPropagation::new(&csr, sys.tkg.n_classes());
        let mut seeds = vec![None; sys.tkg.graph.node_count()];
        for e in &sys.tkg.events {
            seeds[e.node.index()] = Some(e.apt);
        }
        let scores = lp.propagate_with_threads(&seeds, 2, threads);
        (scores, trail_obs::snapshot().without_wall_clock())
    };
    let (scores_1, snap_1) = run(1);
    let (scores_8, snap_8) = run(8);
    assert_eq!(scores_1, scores_8, "LP scores differ across thread counts");
    assert!(!snap_1.is_empty());
    assert_eq!(snap_1, snap_8, "metrics snapshot depends on the thread count");
    // The instrumented stages all reported in.
    assert!(snap_1.span("graph.csr_freeze").is_some());
    assert!(snap_1.span("gnn.labelprop").is_some());
    assert!(snap_1.counter("osint.queries") > 0);
}

/// The ≤2% overhead budget from DESIGN.md §8, measured as a paired
/// comparison of the same build with the registry enabled vs disabled
/// (median of repeated runs, plus a small absolute epsilon for timer
/// jitter on loaded machines).
#[test]
#[ignore = "timing-sensitive: run in the --include-ignored tier"]
fn instrumentation_overhead_is_within_two_percent() {
    let _g = obs_lock();
    let world = Arc::new(World::generate(WorldConfig::tiny(99)));
    let build = || {
        let client = OsintClient::new(Arc::clone(&world));
        let cutoff = client.world().config.cutoff_day;
        std::hint::black_box(TrailSystem::build(client, cutoff));
    };
    let median_of = |n: usize, f: &dyn Fn()| -> f64 {
        let mut samples: Vec<f64> = (0..n)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    build(); // warm-up
    trail_obs::set_enabled(false);
    let t_off = median_of(5, &build);
    trail_obs::set_enabled(true);
    trail_obs::reset();
    let t_on = median_of(5, &build);
    assert!(
        t_on <= t_off * 1.02 + 0.05,
        "instrumented build {t_on:.4}s vs baseline {t_off:.4}s breaks the 2% overhead budget"
    );
}
