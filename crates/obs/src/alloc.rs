//! Heap-allocation counting for zero-allocation assertions.
//!
//! [`CountingAllocator`] wraps the system allocator and bumps relaxed
//! atomics on every entry point. Install it as the `#[global_allocator]`
//! of a test binary, then bracket the code under test with
//! [`allocation_count`] reads; a delta of zero proves the region
//! performed no heap allocation on the measuring thread *or any other*
//! (the counters are process-global, so keep concurrent activity out of
//! the measured window — e.g. run the pipeline single-threaded).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper over the system allocator.
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System`; the only added
// behaviour is a relaxed atomic increment, which cannot allocate,
// unwind, or touch the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is an allocation event for the purpose of
        // "does this loop touch the heap".
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

/// Total allocation events (alloc + alloc_zeroed + realloc) since
/// process start. Always 0 unless [`CountingAllocator`] is installed
/// as the global allocator.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total deallocation events since process start.
pub fn deallocation_count() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}
