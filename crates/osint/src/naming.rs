//! Deterministic name generators for the synthetic world: dictionary
//! and DGA-style domain labels, URL paths, server banners.

use rand::Rng;

/// Words used for "dictionary" style domains and URL paths; benign-ish
/// vocabulary typical of phishing/malware hosting observed in feeds.
pub const WORDS: &[&str] = &[
    "update", "secure", "mail", "login", "account", "portal", "cloud", "drive", "docs", "news",
    "cdn", "static", "api", "download", "support", "service", "online", "verify", "billing",
    "invoice", "report", "share", "file", "data", "sync", "host", "panel", "admin", "web",
    "store", "shop", "bank", "pay", "wallet", "crypto", "job", "career", "offer", "bonus",
    "track", "ship", "post", "gov", "tax", "health", "corp", "office", "team", "project",
];

/// File stems for URL paths.
pub const FILE_STEMS: &[&str] = &[
    "index", "main", "load", "gate", "panel", "config", "setup", "install", "update", "flash",
    "doc", "invoice", "resume", "report", "order", "payload", "stage", "drop", "beacon", "task",
];

/// File extensions by coarse class, used to keep MIME data coherent.
pub const EXTENSIONS: &[(&str, &str, &str)] = &[
    // (extension, mime type, file class)
    ("php", "text/html", "html"),
    ("html", "text/html", "html"),
    ("txt", "text/plain", "text"),
    ("js", "application/javascript", "script"),
    ("exe", "application/x-msdownload", "pe"),
    ("dll", "application/x-dosexec", "pe"),
    ("zip", "application/zip", "archive"),
    ("rar", "application/x-rar", "archive"),
    ("doc", "application/msword", "document"),
    ("pdf", "application/pdf", "document"),
    ("png", "image/png", "image"),
    ("jpg", "image/jpeg", "image"),
    ("bin", "application/octet-stream", "binary"),
    ("dat", "application/octet-stream", "data"),
];

const DGA_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
const ALPHA_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";

/// A random DGA-style label: `len` chars drawn from `[a-z0-9]` with the
/// given digit affinity (0 = letters only, 1 = digits likely).
pub fn dga_label<R: Rng + ?Sized>(rng: &mut R, len: usize, digit_affinity: f32) -> String {
    (0..len.max(1))
        .map(|i| {
            // First char alphabetic to stay LDH-valid and realistic.
            if i == 0 || rng.gen::<f32>() > digit_affinity {
                ALPHA_CHARS[rng.gen_range(0..ALPHA_CHARS.len())] as char
            } else {
                DGA_CHARS[rng.gen_range(26..DGA_CHARS.len())] as char
            }
        })
        .collect()
}

/// A dictionary-style label: one or two words, optionally hyphenated,
/// optionally with a numeric suffix.
pub fn word_label<R: Rng + ?Sized>(rng: &mut R) -> String {
    let w1 = WORDS[rng.gen_range(0..WORDS.len())];
    match rng.gen_range(0..4u8) {
        0 => w1.to_owned(),
        1 => format!("{w1}{}", WORDS[rng.gen_range(0..WORDS.len())]),
        2 => format!("{w1}-{}", WORDS[rng.gen_range(0..WORDS.len())]),
        _ => format!("{w1}{}", rng.gen_range(1..100)),
    }
}

/// A URL path of the requested depth and style.
///
/// `entropy_level` in `[0,1]`: 0 produces word segments, 1 produces
/// random hex-ish segments (the obfuscated style Fig. 9 associates with
/// APT28).
pub fn url_path<R: Rng + ?Sized>(rng: &mut R, depth: usize, entropy_level: f32) -> (String, usize) {
    let mut path = String::new();
    for _ in 0..depth {
        path.push('/');
        if rng.gen::<f32>() < entropy_level {
            let len = rng.gen_range(5..12);
            path.push_str(&dga_label(rng, len, 0.4));
        } else {
            path.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
        }
    }
    let ext_idx = rng.gen_range(0..EXTENSIONS.len());
    let stem = if rng.gen::<f32>() < entropy_level {
        let len = rng.gen_range(4..10);
        dga_label(rng, len, 0.5)
    } else {
        FILE_STEMS[rng.gen_range(0..FILE_STEMS.len())].to_owned()
    };
    path.push('/');
    path.push_str(&stem);
    path.push('.');
    path.push_str(EXTENSIONS[ext_idx].0);
    (path, ext_idx)
}

/// A version-suffixed server banner, e.g. `nginx/1.18.0`. Drawn from a
/// long tail of versions — used for background (non-preference) infra.
pub fn server_banner<R: Rng + ?Sized>(rng: &mut R, base: &str) -> String {
    format!("{base}/{}.{}.{}", rng.gen_range(1..3), rng.gen_range(0..25), rng.gen_range(0..10))
}

/// A banner from the *common* version set — the handful of widely
/// deployed releases. APT preferences draw from this narrow pool so
/// different groups collide on banners, keeping per-IOC attribution
/// noisy (Table III's sub-50 % accuracies).
pub fn common_server_banner<R: Rng + ?Sized>(rng: &mut R, base: &str) -> String {
    const VERSIONS: [&str; 4] = ["1.18.0", "1.20.1", "2.4.41", "2.4.52"];
    format!("{base}/{}", VERSIONS[rng.gen_range(0..VERSIONS.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn dga_labels_are_ldh_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let l = dga_label(&mut rng, 12, 0.5);
            assert_eq!(l.len(), 12);
            assert!(l.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            assert!(l.as_bytes()[0].is_ascii_lowercase());
        }
    }

    #[test]
    fn word_labels_parse_as_domain_labels() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let l = word_label(&mut rng);
            assert!(!l.starts_with('-') && !l.ends_with('-'));
            assert!(l.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-'));
        }
    }

    #[test]
    fn url_path_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let (p, ext) = url_path(&mut rng, 2, 0.0);
        assert_eq!(p.matches('/').count(), 3);
        assert!(p.ends_with(EXTENSIONS[ext].0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(dga_label(&mut a, 8, 0.3), dga_label(&mut b, 8, 0.3));
    }
}
