//! Shard-parallel ingest invariance: `TrailSystem::build_with_shards`
//! must be a pure optimisation. For ANY shard count and ANY worker
//! thread count — with or without transient feed faults — the sharded
//! build lands on a graph that is bitwise-identical to the sequential
//! reference (persisted bytes, not just a fingerprint) with an
//! exactly-equal ingest taxonomy. This is the determinism contract
//! behind `repro scale-bench` (DESIGN.md §15): phase A records OSINT
//! query outcomes shard-parallel, phase B replays every event in the
//! original sequential order, and per-key query purity makes the
//! replay indistinguishable from live ingestion.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use trail::enrich::IngestStats;
use trail::system::TrailSystem;
use trail_osint::{OsintClient, World, WorldConfig};

/// Sequential reference build, computed once per fault level and
/// shared across every shard/thread combination the tests try.
struct Baseline {
    world: Arc<World>,
    cutoff: u32,
    bytes: Vec<u8>,
    stats: IngestStats,
}

fn baseline(faults: bool) -> &'static Baseline {
    static CLEAN: OnceLock<Baseline> = OnceLock::new();
    static FAULTY: OnceLock<Baseline> = OnceLock::new();
    let cell = if faults { &FAULTY } else { &CLEAN };
    cell.get_or_init(|| {
        let mut cfg = WorldConfig::tiny(if faults { 7101 } else { 7100 });
        if faults {
            // High enough that retries demonstrably happen (the stats
            // equality below proves the sharded path reproduces them).
            cfg.transient_fault_prob = 0.35;
        }
        let world = Arc::new(World::generate(cfg));
        let cutoff = world.config.cutoff_day;
        let sys = TrailSystem::build(OsintClient::new(Arc::clone(&world)), cutoff);
        assert!(!sys.tkg.events.is_empty(), "fixture world ingested nothing");
        if faults {
            assert!(
                sys.ingest_stats.missed_transient > 0,
                "fault fixture never faulted: {:?}",
                sys.ingest_stats
            );
        }
        Baseline {
            world,
            cutoff,
            bytes: trail_graph::persist::to_bytes(&sys.tkg.graph),
            stats: sys.ingest_stats,
        }
    })
}

/// The invariant itself: one sharded build against the cached
/// sequential reference.
fn assert_shard_invariant(faults: bool, n_shards: usize, threads: usize) {
    let base = baseline(faults);
    let client = OsintClient::new(Arc::clone(&base.world));
    let sys = TrailSystem::build_with_shards(client, base.cutoff, n_shards, threads);
    assert_eq!(
        sys.ingest_stats, base.stats,
        "ingest taxonomy diverged (faults={faults} shards={n_shards} threads={threads})"
    );
    assert!(
        trail_graph::persist::to_bytes(&sys.tkg.graph) == base.bytes,
        "sharded graph bytes diverged from the sequential reference \
         (faults={faults} shards={n_shards} threads={threads})"
    );
}

/// The degenerate and boundary partitions: one shard (pure overhead),
/// the production default, and far more shards than reports.
#[test]
fn boundary_shard_counts_are_bitwise_equal() {
    for &n_shards in &[1usize, 2, 8, 64] {
        assert_shard_invariant(false, n_shards, 2);
    }
}

/// Thread count must never leak into the result: the same partition at
/// 1, 2 and 8 workers is byte-for-byte one graph.
#[test]
fn worker_thread_count_is_invisible_in_the_output() {
    for &threads in &[1usize, 2, 8] {
        assert_shard_invariant(false, 8, threads);
    }
}

/// Transient feed faults are replayed identically through the sharded
/// path: same retries, same misses, same final graph.
#[test]
fn transient_faults_shard_deterministically() {
    for &(n_shards, threads) in &[(1usize, 1usize), (8, 2), (8, 8), (5, 3)] {
        assert_shard_invariant(true, n_shards, threads);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary shard counts x worker counts x fault schedules all
    /// collapse to the one sequential result.
    #[test]
    fn any_partition_is_bitwise_equal(
        n_shards in 1usize..33,
        threads in 1usize..9,
        faults in any::<bool>(),
    ) {
        assert_shard_invariant(faults, n_shards, threads);
    }
}
