//! Connected components via weighted union-find with path halving.
//!
//! Section V of the paper reports that the full TKG has 161 components
//! with the largest holding 99.94 % of nodes, rising to 477 components
//! on the first-order-only subgraph.

use crate::csr::Csr;
use crate::ids::NodeId;

/// Summary of the undirected connected components of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSummary {
    /// Component id per node (dense, 0-based, largest component first).
    pub assignment: Vec<u32>,
    /// Size of each component, sorted descending.
    pub sizes: Vec<usize>,
}

impl ComponentSummary {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }

    /// Fraction of nodes in the largest component.
    pub fn largest_fraction(&self) -> f64 {
        let total: usize = self.sizes.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.largest() as f64 / total as f64
        }
    }

    /// Node ids belonging to component `c`.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }
}

struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Compute undirected connected components of a CSR graph.
pub fn connected_components(csr: &Csr) -> ComponentSummary {
    let n = csr.node_count();
    let mut uf = UnionFind::new(n);
    for u in 0..n {
        for &v in csr.neighbors(NodeId::from(u)) {
            uf.union(u as u32, v.0);
        }
    }
    // Densify roots -> component ids ordered by descending size.
    let mut root_of: Vec<u32> = (0..n as u32).map(|i| uf.find(i)).collect();
    let mut by_root: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &r in &root_of {
        *by_root.entry(r).or_insert(0) += 1;
    }
    let mut roots: Vec<(u32, usize)> = by_root.into_iter().collect();
    roots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let dense: std::collections::HashMap<u32, u32> =
        roots.iter().enumerate().map(|(i, &(r, _))| (r, i as u32)).collect();
    for r in &mut root_of {
        *r = dense[r];
    }
    ComponentSummary { assignment: root_of, sizes: roots.into_iter().map(|(_, s)| s).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{EdgeKind, NodeKind};
    use crate::store::GraphStore;

    #[test]
    fn two_components() {
        let mut g = GraphStore::new();
        let e1 = g.upsert_node(NodeKind::Event, "e1");
        let ip1 = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d1 = g.upsert_node(NodeKind::Domain, "a.example");
        g.add_edge(e1, ip1, EdgeKind::InReport).unwrap();
        g.add_edge(ip1, d1, EdgeKind::ARecord).unwrap();
        let e2 = g.upsert_node(NodeKind::Event, "e2");
        let u2 = g.upsert_node(NodeKind::Url, "http://b.example/x");
        g.add_edge(e2, u2, EdgeKind::InReport).unwrap();

        let csr = Csr::from_store(&g);
        let cc = connected_components(&csr);
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.sizes, vec![3, 2]);
        assert!((cc.largest_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(cc.members(0).len(), 3);
        // Members of the same component share an assignment.
        assert_eq!(cc.assignment[e1.index()], cc.assignment[d1.index()]);
        assert_ne!(cc.assignment[e1.index()], cc.assignment[e2.index()]);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut g = GraphStore::new();
        g.upsert_node(NodeKind::Asn, "AS1");
        g.upsert_node(NodeKind::Asn, "AS2");
        let cc = connected_components(&Csr::from_store(&g));
        assert_eq!(cc.count(), 2);
        assert_eq!(cc.sizes, vec![1, 1]);
    }

    #[test]
    fn empty_graph() {
        let cc = connected_components(&Csr::from_store(&GraphStore::new()));
        assert_eq!(cc.count(), 0);
        assert_eq!(cc.largest(), 0);
        assert_eq!(cc.largest_fraction(), 0.0);
    }
}
