//! Breadth-first traversals: distances, k-hop neighbourhoods and a
//! double-sweep diameter estimate.

use std::collections::VecDeque;

use crate::csr::Csr;
use crate::ids::NodeId;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source` over the undirected CSR.
/// Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(csr: &Csr, source: NodeId) -> Vec<u32> {
    let _span = trail_obs::span("graph.bfs");
    let mut dist = vec![UNREACHABLE; csr.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in csr.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All nodes within `k` hops of any root (roots included at distance 0).
/// Returns `(node, distance)` pairs in BFS order. This is the paper's
/// "k-hop neighbourhood of the event" used as GNN input.
pub fn k_hop(csr: &Csr, roots: &[NodeId], k: u32) -> Vec<(NodeId, u32)> {
    let _span = trail_obs::span("graph.k_hop");
    let mut dist = vec![UNREACHABLE; csr.node_count()];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    for &r in roots {
        if dist[r.index()] == UNREACHABLE {
            dist[r.index()] = 0;
            queue.push_back(r);
            out.push((r, 0));
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du == k {
            continue;
        }
        for &v in csr.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
                out.push((v, du + 1));
            }
        }
    }
    out
}

/// Lower-bound diameter estimate by iterated double sweep: BFS from a
/// start node, then repeatedly BFS from the farthest node found. This is
/// the standard technique for huge graphs where all-pairs BFS is
/// infeasible (the paper's diameter-23 figure is of this kind).
pub fn diameter_double_sweep(csr: &Csr, start: NodeId, sweeps: usize) -> u32 {
    let _span = trail_obs::span("graph.diameter");
    let mut best = 0;
    let mut from = start;
    for _ in 0..sweeps.max(1) {
        let dist = bfs_distances(csr, from);
        let (far_node, far_dist) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHABLE)
            .max_by_key(|&(_, &d)| d)
            .map(|(i, &d)| (NodeId::from(i), d))
            .unwrap_or((from, 0));
        if far_dist <= best {
            break;
        }
        best = far_dist;
        from = far_node;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{EdgeKind, NodeKind};
    use crate::store::GraphStore;

    /// Path graph: e - ip - d - ip2 (via allowed kinds), plus an isolate.
    fn path() -> (GraphStore, Vec<NodeId>) {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = g.upsert_node(NodeKind::Domain, "a.example");
        let ip2 = g.upsert_node(NodeKind::Ip, "2.2.2.2");
        let isolate = g.upsert_node(NodeKind::Asn, "AS99");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        g.add_edge(d, ip2, EdgeKind::DomainResolvesTo).unwrap();
        (g, vec![e, ip, d, ip2, isolate])
    }

    #[test]
    fn distances_on_path() {
        let (g, n) = path();
        let csr = Csr::from_store(&g);
        let dist = bfs_distances(&csr, n[0]);
        assert_eq!(&dist[..4], &[0, 1, 2, 3]);
        assert_eq!(dist[4], UNREACHABLE);
    }

    #[test]
    fn k_hop_bounded() {
        let (g, n) = path();
        let csr = Csr::from_store(&g);
        let hood = k_hop(&csr, &[n[0]], 2);
        let ids: Vec<_> = hood.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![n[0], n[1], n[2]]);
        assert_eq!(hood[2].1, 2);
        // Multiple roots deduplicate.
        let hood2 = k_hop(&csr, &[n[0], n[1]], 1);
        assert_eq!(hood2.len(), 3);
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let (g, n) = path();
        let csr = Csr::from_store(&g);
        // Start mid-path: one sweep finds 2 (to either end), second finds 3.
        assert_eq!(diameter_double_sweep(&csr, n[2], 4), 3);
    }

    #[test]
    fn diameter_of_singleton_is_zero() {
        let mut g = GraphStore::new();
        let a = g.upsert_node(NodeKind::Asn, "AS1");
        assert_eq!(diameter_double_sweep(&Csr::from_store(&g), a, 3), 0);
    }
}
