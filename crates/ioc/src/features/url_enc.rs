//! The 1,517-dimension URL feature encoder.
//!
//! Layout (offsets inclusive..exclusive):
//! `0..106` file type · `106..127` file class · `127..195` HTTP code ·
//! `195..207` encoding · `207..1151` server · `1151..1201` server OS ·
//! `1201..1384` services (multi-hot) · `1384..1484` TLD ·
//! `1484..1494` lexical · `1494..1517` header flags (multi-hot).

use crate::analysis::UrlAnalysis;
use crate::url::{UrlHost, UrlIoc, UrlLexical};
use crate::vocab::Vocab;

use super::*;

const FILE_TYPE: (usize, usize) = (0, 106);
const FILE_CLASS: (usize, usize) = (106, 21);
const HTTP_CODE: (usize, usize) = (127, 68);
const ENCODING: (usize, usize) = (195, 12);
const SERVER: (usize, usize) = (207, 944);
const SERVER_OS: (usize, usize) = (1151, 50);
const SERVICES: (usize, usize) = (1201, 183);
const TLD: (usize, usize) = (1384, 100);
const LEXICAL: (usize, usize) = (1484, 10);
const HEADER_FLAGS: (usize, usize) = (1494, 23);

/// Encoder for URL IOCs. Construct once and reuse.
#[derive(Debug, Clone)]
pub struct UrlEncoder {
    file_type: Vocab,
    file_class: Vocab,
    http_code: Vocab,
    encoding: Vocab,
    server: Vocab,
    server_os: Vocab,
    services: Vocab,
    tld: Vocab,
    header_flags: Vocab,
}

impl Default for UrlEncoder {
    fn default() -> Self {
        Self {
            file_type: Vocab::new("file_type", FILE_TYPE.1, COMMON_FILE_TYPES),
            file_class: Vocab::new("file_class", FILE_CLASS.1, COMMON_FILE_CLASSES),
            http_code: Vocab::new("http_code", HTTP_CODE.1, COMMON_HTTP_CODES),
            encoding: Vocab::new("encoding", ENCODING.1, COMMON_ENCODINGS),
            server: Vocab::new("server", SERVER.1, COMMON_SERVERS),
            server_os: Vocab::new("server_os", SERVER_OS.1, COMMON_OS),
            services: Vocab::new("service", SERVICES.1, COMMON_SERVICES),
            tld: Vocab::new("tld", TLD.1, COMMON_TLDS),
            header_flags: Vocab::new("header", HEADER_FLAGS.1, COMMON_HEADER_FLAGS),
        }
    }
}

impl UrlEncoder {
    /// Total output width (= [`URL_DIMS`]).
    pub const DIMS: usize = URL_DIMS;

    /// Encode a URL and its enrichment analysis into a feature vector.
    pub fn encode(&self, url: &UrlIoc, analysis: &UrlAnalysis) -> Vec<f32> {
        let mut out = vec![0.0f32; URL_DIMS];
        set_opt(&mut out, FILE_TYPE.0, &self.file_type, analysis.file_type.as_deref());
        set_opt(&mut out, FILE_CLASS.0, &self.file_class, analysis.file_class.as_deref());
        if let Some(code) = analysis.http_code {
            out[HTTP_CODE.0 + self.http_code.slot(&code.to_string())] = 1.0;
        }
        set_opt(&mut out, ENCODING.0, &self.encoding, analysis.encoding.as_deref());
        set_opt(&mut out, SERVER.0, &self.server, analysis.server.as_deref());
        set_opt(&mut out, SERVER_OS.0, &self.server_os, analysis.server_os.as_deref());
        for svc in &analysis.services {
            out[SERVICES.0 + self.services.slot(svc)] = 1.0;
        }
        if let UrlHost::Domain(d) = &url.host {
            out[TLD.0 + self.tld.slot(d.tld())] = 1.0;
        }
        let lex = url.lexical().to_array();
        out[LEXICAL.0..LEXICAL.0 + LEXICAL.1].copy_from_slice(&lex);
        for flag in &analysis.header_flags {
            out[HEADER_FLAGS.0 + self.header_flags.slot(flag)] = 1.0;
        }
        out
    }

    /// Human-readable name of feature slot `idx`.
    pub fn feature_name(&self, idx: usize) -> String {
        debug_assert!(idx < URL_DIMS);
        for (range, vocab) in [
            (FILE_TYPE, &self.file_type),
            (FILE_CLASS, &self.file_class),
            (HTTP_CODE, &self.http_code),
            (ENCODING, &self.encoding),
            (SERVER, &self.server),
            (SERVER_OS, &self.server_os),
            (SERVICES, &self.services),
            (TLD, &self.tld),
        ] {
            if idx >= range.0 && idx < range.0 + range.1 {
                return vocab.slot_name(idx - range.0);
            }
        }
        if idx >= LEXICAL.0 && idx < LEXICAL.0 + LEXICAL.1 {
            return UrlLexical::NAMES[idx - LEXICAL.0].to_owned();
        }
        self.header_flags.slot_name(idx - HEADER_FLAGS.0)
    }
}

fn set_opt(out: &mut [f32], base: usize, vocab: &Vocab, value: Option<&str>) {
    if let Some(v) = value {
        out[base + vocab.slot(v)] = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_sums_to_total() {
        let blocks = [FILE_TYPE, FILE_CLASS, HTTP_CODE, ENCODING, SERVER, SERVER_OS, SERVICES, TLD, LEXICAL, HEADER_FLAGS];
        let mut cursor = 0;
        for (start, len) in blocks {
            assert_eq!(start, cursor, "block starting at {start} leaves a gap");
            cursor += len;
        }
        assert_eq!(cursor, URL_DIMS);
    }

    #[test]
    fn encode_sets_expected_slots() {
        let enc = UrlEncoder::default();
        let url = UrlIoc::parse("http://a.b.example/x.php").unwrap();
        let analysis = UrlAnalysis {
            alive: true,
            file_type: Some("text/html".into()),
            file_class: Some("html".into()),
            http_code: Some(200),
            encoding: Some("gzip".into()),
            server: Some("nginx".into()),
            server_os: Some("linux".into()),
            services: vec!["http".into(), "ssh".into()],
            header_flags: vec!["hsts".into()],
            resolved_ips: vec![],
        };
        let v = enc.encode(&url, &analysis);
        assert_eq!(v.len(), URL_DIMS);
        assert_eq!(v[FILE_TYPE.0], 1.0); // text/html is curated slot 0
        assert_eq!(v[ENCODING.0], 1.0); // gzip is slot 0
        assert_eq!(v[SERVER.0], 1.0); // nginx is slot 0
        assert_eq!(v[SERVICES.0] + v[SERVICES.0 + 2], 2.0); // http + ssh
        // TLD "example" hashes somewhere in the tld block.
        let tld_mass: f32 = v[TLD.0..TLD.0 + TLD.1].iter().sum();
        assert_eq!(tld_mass, 1.0);
        // Lexical block carries the raw URL length.
        assert_eq!(v[LEXICAL.0], url.lexical().length);
    }

    #[test]
    fn dead_url_encodes_sparsely() {
        let enc = UrlEncoder::default();
        let url = UrlIoc::parse("http://198.51.100.7/x").unwrap();
        let v = enc.encode(&url, &UrlAnalysis::default());
        // No analysis + IP host: only the lexical block is populated.
        let nonzero_outside: usize = (0..URL_DIMS)
            .filter(|&i| v[i] != 0.0 && !(LEXICAL.0..LEXICAL.0 + LEXICAL.1).contains(&i))
            .count();
        assert_eq!(nonzero_outside, 0);
    }

    #[test]
    fn every_slot_has_a_name() {
        let enc = UrlEncoder::default();
        assert_eq!(enc.feature_name(0), "file_type=text/html");
        assert_eq!(enc.feature_name(ENCODING.0), "encoding=gzip");
        assert_eq!(enc.feature_name(LEXICAL.0 + 6), "url_entropy");
        assert_eq!(enc.feature_name(HEADER_FLAGS.0), "header=hsts");
        // Exhaustive: no index panics and names are unique per slot kind.
        for i in 0..URL_DIMS {
            assert!(!enc.feature_name(i).is_empty());
        }
    }
}
