//! Data model of enrichment results — what the OSINT analysis of an IOC
//! returns (Section IV-A/B: passive DNS, dig, geo-IP, cURL header probe).
//!
//! The `trail-osint` crate produces these from its synthetic world; the
//! [`crate::features`] encoders turn them into fixed-layout vectors.

use serde::{Deserialize, Serialize};

/// The nine passive-DNS record types whose counts are domain features.
pub const DNS_RECORD_TYPES: [&str; 9] =
    ["A", "AAAA", "CNAME", "MX", "NS", "TXT", "SOA", "PTR", "SRV"];

/// Result of analysing a URL (cached cURL response + lookups).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UrlAnalysis {
    /// Whether the URL still responded when probed.
    pub alive: bool,
    /// MIME type of the file hosted at the address (106-way one-hot).
    pub file_type: Option<String>,
    /// Coarse class of that file (21-way one-hot), e.g. `html`, `pe`.
    pub file_class: Option<String>,
    /// HTTP response code (68-way one-hot).
    pub http_code: Option<u16>,
    /// Content encoding (12-way one-hot), e.g. `gzip`.
    pub encoding: Option<String>,
    /// Server header value (944-way one-hot), e.g. `nginx/1.18`.
    pub server: Option<String>,
    /// Operating system fingerprint of the server (50-way one-hot).
    pub server_os: Option<String>,
    /// Services detected on the host (183-way multi-hot).
    pub services: Vec<String>,
    /// Miscellaneous header flags (23-way multi-hot), e.g. `hsts`.
    pub header_flags: Vec<String>,
    /// IPs this URL resolved to (relational, not a feature).
    pub resolved_ips: Vec<String>,
}

/// Result of analysing an IP (geo-IP + passive DNS + whois).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IpAnalysis {
    /// ISO country code (249-way one-hot).
    pub country: Option<String>,
    /// Issuer / registry that granted the address (250-way one-hot).
    pub issuer: Option<String>,
    /// Estimated latitude, degrees.
    pub latitude: f32,
    /// Estimated longitude, degrees.
    pub longitude: f32,
    /// Count of historic A records pointing at this IP.
    pub a_record_count: u32,
    /// Count of distinct domains that ever resolved here.
    pub resolving_domain_count: u32,
    /// ASN the address belongs to, if known.
    pub asn: Option<u32>,
    /// log2-size of the ASN's address pool (0 when unknown).
    pub asn_size_log: f32,
    /// Days since the IP was first seen in passive DNS.
    pub first_seen_days: f32,
    /// Days since it was last seen.
    pub last_seen_days: f32,
    /// Domains historically linked to this IP (relational).
    pub historic_domains: Vec<String>,
}

/// Result of analysing a domain (passive DNS).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainAnalysis {
    /// Count of unique records per type, in [`DNS_RECORD_TYPES`] order.
    pub record_counts: [u32; 9],
    /// True when the domain has been deactivated (NXDOMAIN) since report.
    pub nxdomain: bool,
    /// Days since first seen in passive DNS.
    pub first_seen_days: f32,
    /// Days since last seen.
    pub last_seen_days: f32,
    /// IPs from A/AAAA records (relational).
    pub resolved_ips: Vec<String>,
    /// CNAME targets (relational).
    pub cname_targets: Vec<String>,
    /// URLs observed hosted on this domain (the OTX `url_list`
    /// endpoint; relational — the source of secondary URL nodes).
    pub hosted_urls: Vec<String>,
}

impl DomainAnalysis {
    /// The engineered `active_period` feature the paper adds during
    /// preprocessing: last-seen minus first-seen.
    pub fn active_period(&self) -> f32 {
        (self.first_seen_days - self.last_seen_days).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_period_is_nonnegative() {
        let mut d = DomainAnalysis { first_seen_days: 100.0, last_seen_days: 10.0, ..Default::default() };
        assert_eq!(d.active_period(), 90.0);
        d.last_seen_days = 200.0; // inconsistent data must not go negative
        assert_eq!(d.active_period(), 0.0);
    }

    #[test]
    fn defaults_are_empty() {
        let u = UrlAnalysis::default();
        assert!(!u.alive && u.server.is_none() && u.services.is_empty());
        let i = IpAnalysis::default();
        assert!(i.country.is_none() && i.asn.is_none());
    }
}
