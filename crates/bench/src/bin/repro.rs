//! `repro` — regenerate every table and figure of the TRAIL paper.
//!
//! ```text
//! repro <experiment> [--scale S] [--seed N] [--folds K] [--quick]
//!
//! experiments:
//!   table2  table3  table4  fig3  fig4  fig7  fig8  fig9  fig10
//!   sec5    case    all
//! ```
//!
//! `fig7` and `fig8` share one longitudinal run (`fig7` is the first
//! month's confusion matrix of the same study).

use trail_bench::RunOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut opts = RunOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--folds" => {
                i += 1;
                opts.folds = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--quick" => opts.quick = true,
            flag if flag.starts_with("--") => usage(),
            name => experiment = name.to_owned(),
        }
        i += 1;
    }

    let needs_embeddings =
        matches!(experiment.as_str(), "table4" | "fig10" | "ablations" | "all");
    let total = std::time::Instant::now();
    let sys = opts.build_system();
    let embeddings = if needs_embeddings {
        let t = std::time::Instant::now();
        let mut rng = opts.rng();
        let (emb, _) = trail::embed::train_autoencoders(&mut rng, &sys.tkg, &opts.ae_settings());
        println!("[setup] autoencoders trained in {:?}", t.elapsed());
        Some(emb)
    } else {
        None
    };

    match experiment.as_str() {
        "table2" => trail_bench::table2(&sys),
        "sec5" => trail_bench::sec5(&sys),
        "fig3" => trail_bench::fig3(&sys),
        "fig4" => trail_bench::fig4(&sys),
        "table3" => trail_bench::table3(&sys, &opts),
        "table4" => trail_bench::table4(&sys, &opts, embeddings.as_ref().expect("built")),
        "fig9" => trail_bench::fig9(&sys, &opts),
        "ablations" => trail_bench::ablations(&sys, &opts, embeddings.as_ref().expect("built")),
        "fig10" => trail_bench::fig10(&sys, &opts, embeddings.as_ref().expect("built")),
        "fig7" | "fig8" => trail_bench::fig7_fig8(sys, &opts),
        "case" => trail_bench::case(sys, &opts),
        "all" => {
            let emb = embeddings.as_ref().expect("built");
            trail_bench::table2(&sys);
            trail_bench::sec5(&sys);
            trail_bench::fig3(&sys);
            trail_bench::fig4(&sys);
            trail_bench::table3(&sys, &opts);
            trail_bench::table4(&sys, &opts, emb);
            trail_bench::fig9(&sys, &opts);
            trail_bench::fig10(&sys, &opts, emb);
            // The longitudinal experiments consume systems of their own.
            trail_bench::case(opts.build_system(), &opts);
            trail_bench::fig7_fig8(opts.build_system(), &opts);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            usage::<()>();
        }
    }
    println!("\n[done] total {:?}", total.elapsed());
}

fn usage<T>() -> T {
    eprintln!(
        "usage: repro <table2|table3|table4|fig3|fig4|fig7|fig8|fig9|fig10|sec5|case|ablations|all> \
         [--scale S] [--seed N] [--folds K] [--quick]"
    );
    std::process::exit(2);
}
