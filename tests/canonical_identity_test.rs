//! Canonical IOC identity regression suite.
//!
//! The invariants under test:
//! 1. Variant spellings of one indicator (case, trailing dots,
//!    defanging) resolve to ONE graph node via [`IocKey`].
//! 2. Feed-presentation noise is invisible to the built TKG: a maximally
//!    noisy feed produces the bitwise-identical graph to a clean feed.
//!    Before the canonical-identity fix, depth-2 enrichment looked
//!    nodes up by *raw* analysis text, so noisy spellings silently
//!    dropped ARecord/UrlResolvesTo/HostedOn edges — this suite fails
//!    on that build.
//! 3. Injected transient faults are deterministic per (key, attempt),
//!    so retried ingestion converges to the clean graph, same seed →
//!    same graph.

use std::sync::Arc;

use trail::collector::{collect, AptRegistry};
use trail::enrich::{Enricher, IngestStats, RetryPolicy};
use trail::system::TrailSystem;
use trail::tkg::Tkg;
use trail_ioc::{Ioc, IocKey, IocKind};
use trail_osint::{OsintClient, World, WorldConfig};

fn system_with(seed: u64, tweak: impl FnOnce(&mut WorldConfig)) -> TrailSystem {
    let mut cfg = WorldConfig::tiny(seed);
    tweak(&mut cfg);
    let client = OsintClient::new(Arc::new(World::generate(cfg)));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

/// Order-independent structural fingerprint of a TKG: sorted node
/// (kind, key) pairs plus sorted key-addressed edge triples. Two graphs
/// with equal fingerprints are the same graph up to insertion order.
fn fingerprint(tkg: &Tkg) -> (Vec<(String, String)>, Vec<(String, String, String)>) {
    let mut nodes: Vec<(String, String)> = tkg
        .graph
        .iter_nodes()
        .map(|(id, n)| (format!("{:?}", n.kind), tkg.graph.key(id).to_string()))
        .collect();
    nodes.sort();
    let mut edges: Vec<(String, String, String)> = tkg
        .graph
        .edges()
        .iter()
        .map(|e| {
            (
                tkg.graph.key(e.src).to_string(),
                tkg.graph.key(e.dst).to_string(),
                format!("{:?}", e.kind),
            )
        })
        .collect();
    edges.sort();
    (nodes, edges)
}

#[test]
fn variant_spellings_upsert_and_find_one_node() {
    let mut tkg = Tkg::new(AptRegistry::new(4));
    // Domain: mixed case, trailing dot, defanged — one identity.
    let variants = ["EXAMPLE.Com.", "example[.]com", "  example.com  ", "ExAmPlE.CoM"];
    let keys: Vec<IocKey> =
        variants.iter().map(|v| IocKey::parse(IocKind::Domain, v).expect("parses")).collect();
    let first = tkg.upsert_ioc(&keys[0]);
    for key in &keys {
        assert_eq!(tkg.upsert_ioc(key), first, "{key} split the node");
        assert_eq!(tkg.find_ioc(key), Some(first), "{key} not found");
    }
    // The same canonicalisation covers IPs and URLs.
    let ip_a = tkg.upsert_ioc(&IocKey::parse(IocKind::Ip, "192[.]168[.]0[.]1").unwrap());
    let ip_b = tkg.upsert_ioc(&IocKey::parse(IocKind::Ip, "192.168.0.1").unwrap());
    assert_eq!(ip_a, ip_b);
    let url_a = tkg.upsert_ioc(&IocKey::parse(IocKind::Url, "hxxp://EVIL[.]com/p?q=1").unwrap());
    let url_b = tkg.upsert_ioc(&IocKey::parse(IocKind::Url, "http://evil.com/p?q=1").unwrap());
    assert_eq!(url_a, url_b);
    // Same text under a different kind is a different node.
    assert_eq!(tkg.graph.node_count(), 3);
}

#[test]
fn key_of_parsed_ioc_round_trips_through_the_graph() {
    let mut tkg = Tkg::new(AptRegistry::new(4));
    let ioc = Ioc::detect("hxxps://Staging[.]Example[.]com:8443/drop").expect("parses");
    let id = tkg.upsert_ioc(&ioc.key());
    // Re-derive the key from a differently-defanged spelling.
    let again = IocKey::detect("https://staging.example.com:8443/drop").expect("parses");
    assert_eq!(tkg.find_ioc(&again), Some(id));
}

#[test]
fn noisy_feed_builds_the_identical_graph_to_a_clean_feed() {
    let clean = system_with(620, |c| c.feed_noise = 0.0);
    let noisy = system_with(620, |c| c.feed_noise = 1.0);
    let (clean_nodes, clean_edges) = fingerprint(&clean.tkg);
    let (noisy_nodes, noisy_edges) = fingerprint(&noisy.tkg);
    assert!(!clean_edges.is_empty());
    assert_eq!(clean_nodes, noisy_nodes, "feed noise altered the node set");
    assert_eq!(clean_edges, noisy_edges, "feed noise dropped or altered edges");
    // Depth-2 linking did happen under full noise.
    assert!(noisy.ingest_stats.linked > 0, "no depth-2 links under a noisy feed");
    assert_eq!(clean.ingest_stats, noisy.ingest_stats);
}

#[test]
fn noisy_client_actually_emits_noncanonical_text() {
    // Separate vacuity check: with feed_noise = 1.0 every relational
    // string the client returns is re-presented in a non-canonical
    // spelling, so the test above genuinely exercises the fix.
    let mut cfg = WorldConfig::tiny(620);
    cfg.feed_noise = 1.0;
    let client = OsintClient::new(Arc::new(World::generate(cfg)));
    let day = client.world().config.cutoff_day;
    let mut noisy_strings = 0usize;
    let mut total = 0usize;
    for report in client.events_before(day) {
        let parsed = report.parse();
        for ioc in &parsed.iocs {
            if let Ioc::Domain(d) = ioc {
                if let Some(a) = client.analyze_domain(&d.text, day) {
                    for ip in &a.resolved_ips {
                        total += 1;
                        if IocKey::parse(IocKind::Ip, ip).map(|k| k.text() != ip).unwrap_or(true) {
                            noisy_strings += 1;
                        }
                    }
                }
            }
        }
        if total >= 25 {
            break;
        }
    }
    assert!(total > 0, "no domain analyses resolved any IPs");
    assert_eq!(noisy_strings, total, "feed_noise=1.0 left canonical spellings");
}

#[test]
fn fault_injection_is_deterministic_and_recorded() {
    let a = system_with(621, |c| c.transient_fault_prob = 0.3);
    let b = system_with(621, |c| c.transient_fault_prob = 0.3);
    assert_eq!(fingerprint(&a.tkg), fingerprint(&b.tkg), "same seed, different graphs");
    assert_eq!(a.ingest_stats, b.ingest_stats);
    assert!(a.ingest_stats.retried > 0, "0.3 fault rate produced no retries");
    assert!(a.ingest_stats.backoff_ms > 0, "retries charged no backoff");
}

#[test]
fn generous_retries_converge_to_the_clean_graph() {
    let clean = system_with(622, |c| c.transient_fault_prob = 0.0);
    // Same world, heavy faults, but a retry budget deep enough that the
    // chance of a query faulting on every attempt is negligible.
    let mut cfg = WorldConfig::tiny(622);
    cfg.transient_fault_prob = 0.35;
    let client = OsintClient::new(Arc::new(World::generate(cfg)));
    let cutoff = client.world().config.cutoff_day;
    let registry = AptRegistry::new(client.world().config.n_apts);
    let reports = client.events_before(cutoff);
    let (events, _) = collect(&reports, &registry);
    let mut tkg = Tkg::new(registry);
    let mut stats = IngestStats::default();
    let retry = RetryPolicy { max_attempts: 12, base_backoff_ms: 1 };
    let enricher = Enricher::with_retry(&client, cutoff, retry);
    for event in &events {
        stats.absorb(&enricher.ingest(&mut tkg, event));
    }
    assert!(stats.retried > 0, "0.35 fault rate produced no retries");
    assert_eq!(stats.missed_transient, 0, "12 attempts still abandoned a query");
    assert_eq!(fingerprint(&clean.tkg), fingerprint(&tkg), "retried graph diverged from clean");
}
