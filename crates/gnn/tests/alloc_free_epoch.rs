//! Zero-steady-state-allocation proof for the GNN training loop.
//!
//! Installs [`trail_obs::alloc::CountingAllocator`] as the global
//! allocator and shows that extra training epochs beyond the warmup
//! epoch perform **zero** heap allocations: two identical training
//! runs differing only in epoch count produce identical allocation
//! totals. The counters are process-global, so everything runs
//! single-threaded (`TRAIL_THREADS=1` makes every parallel kernel run
//! inline on the caller) with observability off (`TRAIL_OBS=0`; live
//! spans allocate). One `#[test]` only — env vars must be set before
//! the first pool/registry access.

use rand::{rngs::StdRng, SeedableRng};
use trail_graph::{Csr, EdgeKind, GraphStore, NodeId, NodeKind};
use trail_linalg::Matrix;
use trail_obs::alloc::{allocation_count, CountingAllocator};
use trail_gnn::{
    fine_tune_masked, train_sage_masked, FineTune, LabelMasking, SageConfig, SageModel,
    TrainConfig,
};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Events clustered onto two hub IPs with a weak feature signal —
/// enough structure for the loss to be well-defined.
fn world() -> (GraphStore, Vec<(NodeId, u16)>) {
    let mut g = GraphStore::new();
    let hub_a = g.upsert_node(NodeKind::Ip, "10.0.0.1");
    let hub_b = g.upsert_node(NodeKind::Ip, "10.0.0.2");
    let mut events = Vec::new();
    for i in 0..24 {
        let class = (i % 2) as u16;
        let e = g.upsert_node(NodeKind::Event, &format!("e{i}"));
        g.add_edge(e, if class == 0 { hub_a } else { hub_b }, EdgeKind::InReport).unwrap();
        events.push((e, class));
    }
    (g, events)
}

fn features(g: &GraphStore, events: &[(NodeId, u16)]) -> Matrix {
    // [is_event, label0, label1] — the masking protocol flips the
    // label block in place.
    let mut x = Matrix::zeros(g.node_count(), 3);
    for &(id, class) in events {
        x[(id.index(), 0)] = 1.0;
        x[(id.index(), 1 + class as usize)] = 1.0;
    }
    x
}

fn count<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = allocation_count();
    let out = f();
    (allocation_count() - before, out)
}

/// Minimum allocation delta over a few repetitions. The counter is
/// process-global and the libtest harness occasionally allocates on
/// its own threads mid-measurement; that noise only ever *inflates* a
/// count, so the min over repetitions of a deterministic run is its
/// true allocation cost.
fn min_count(mut f: impl FnMut() -> u64) -> u64 {
    (0..5).map(|_| f()).min().expect("non-empty")
}

#[test]
fn extra_epochs_allocate_nothing() {
    std::env::set_var("TRAIL_THREADS", "1");
    std::env::set_var("TRAIL_OBS", "0");
    assert_eq!(trail_linalg::pool::num_threads(), 1, "pool already initialised multi-threaded");

    let (g, events) = world();
    let csr = Csr::from_store(&g);
    let cfg = SageConfig::new(3, 16, 2, 2);
    let masking = LabelMasking { offset: 1, visible_fraction: 0.5 };

    // --- train_sage_masked: short vs long run, everything else equal.
    // Buffer warmup happens in epoch 1 of each fresh model; the 12
    // extra epochs of the long run must add zero allocation events.
    let run_train = |epochs: usize| {
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = features(&g, &events);
        let tc = TrainConfig { lr: 0.02, epochs, patience: 0 };
        count(|| train_sage_masked(&mut rng, &csr, &mut x, cfg, &events, &[], &tc, masking).1)
    };
    // One throwaway run first: lazy process-wide state (thread-count
    // OnceLock, span registry) initialises on first touch and must not
    // be billed to the short run.
    let _ = run_train(1);
    let short_allocs = min_count(|| {
        let (allocs, losses) = run_train(3);
        assert_eq!(losses.len(), 3);
        allocs
    });
    let long_allocs = min_count(|| {
        let (allocs, losses) = run_train(15);
        assert_eq!(losses.len(), 15);
        allocs
    });
    assert_eq!(
        long_allocs, short_allocs,
        "steady-state training epochs hit the heap ({long_allocs} vs {short_allocs} allocations)"
    );

    // --- fine_tune_masked: same property on the monthly-retrain loop.
    let run_ft = |epochs: usize| {
        let mut model = SageModel::new(&mut StdRng::seed_from_u64(5), cfg);
        let mut rng = StdRng::seed_from_u64(13);
        let mut x = features(&g, &events);
        let ft = FineTune { lr: 0.01, epochs };
        count(|| fine_tune_masked(&mut rng, &mut model, &csr, &mut x, &events, &ft, masking))
    };
    let short_allocs = min_count(|| {
        let (allocs, losses) = run_ft(2);
        assert_eq!(losses.len(), 2);
        allocs
    });
    let long_allocs = min_count(|| {
        let (allocs, losses) = run_ft(10);
        assert_eq!(losses.len(), 10);
        allocs
    });
    assert_eq!(
        long_allocs, short_allocs,
        "steady-state fine-tune epochs hit the heap ({long_allocs} vs {short_allocs} allocations)"
    );
}
