//! Random Forest (Breiman 2001): bagged CART trees with per-split
//! feature subsampling, probability-averaged voting.
//!
//! Trees train in parallel across threads — each tree's bootstrap RNG
//! is seeded independently so results do not depend on thread timing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use trail_linalg::Matrix;

use crate::tree::{DecisionTree, FeatureSampling, TreeConfig};
use crate::Classifier;

/// Random Forest hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f32,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 18,
                min_samples_split: 4,
                min_samples_leaf: 2,
                feature_sampling: FeatureSampling::Sqrt,
            },
            bootstrap_fraction: 1.0,
        }
    }
}

/// A fitted Random Forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fit `cfg.n_trees` bootstrapped trees.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        x: &Matrix,
        y: &[u16],
        n_classes: usize,
        cfg: &ForestConfig,
    ) -> Self {
        let _span = trail_obs::span("ml.forest_fit");
        assert!(x.rows() > 0, "empty training set");
        let n = x.rows();
        let boot_n = ((n as f32) * cfg.bootstrap_fraction).round().max(1.0) as usize;
        let seeds: Vec<u64> = (0..cfg.n_trees).map(|_| rng.gen()).collect();

        // Trees fan out across the shared worker pool; each is grown
        // from its own pre-drawn seed, so the forest is identical for
        // every thread count.
        let trees: Vec<DecisionTree> = trail_linalg::pool::parallel_map(seeds.len(), |i| {
            fit_one(seeds[i], x, y, n_classes, boot_n, &cfg.tree)
        });
        Self { trees, n_classes }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Borrow the trees (explanations average per-tree attributions).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

fn fit_one(
    seed: u64,
    x: &Matrix,
    y: &[u16],
    n_classes: usize,
    boot_n: usize,
    tree_cfg: &TreeConfig,
) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = x.rows();
    let indices: Vec<usize> = (0..boot_n).map(|_| rng.gen_range(0..n)).collect();
    DecisionTree::fit(&mut rng, x, y, &indices, n_classes, tree_cfg)
}

impl Classifier for RandomForest {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for (r, row) in x.rows_iter().enumerate() {
            let acc = out.row_mut(r);
            for tree in &self.trees {
                for (a, &p) in acc.iter_mut().zip(tree.predict_proba_row(row)) {
                    *a += p;
                }
            }
            let k = 1.0 / self.trees.len().max(1) as f32;
            for a in acc.iter_mut() {
                *a *= k;
            }
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn blobs(n_per: usize) -> (Matrix, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(99);
        let centers = [(0.0f32, 0.0f32), (5.0, 5.0), (0.0, 5.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(cx + rng.gen_range(-1.0..1.0));
                rows.push(cy + rng.gen_range(-1.0..1.0));
                y.push(c as u16);
            }
        }
        (Matrix::from_vec(3 * n_per, 2, rows).unwrap(), y)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blobs(30);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = ForestConfig { n_trees: 15, ..Default::default() };
        let rf = RandomForest::fit(&mut rng, &x, &y, 3, &cfg);
        let acc = crate::metrics::accuracy(&y, &rf.predict(&x));
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = blobs(10);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ForestConfig { n_trees: 7, ..Default::default() };
        let rf = RandomForest::fit(&mut rng, &x, &y, 3, &cfg);
        let proba = rf.predict_proba(&x);
        for row in proba.rows_iter() {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_given_seed_despite_threads() {
        let (x, y) = blobs(15);
        let cfg = ForestConfig { n_trees: 9, ..Default::default() };
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let f1 = RandomForest::fit(&mut r1, &x, &y, 3, &cfg);
        let f2 = RandomForest::fit(&mut r2, &x, &y, 3, &cfg);
        assert_eq!(f1.predict_proba(&x), f2.predict_proba(&x));
    }

    #[test]
    fn n_trees_respected() {
        let (x, y) = blobs(5);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = ForestConfig { n_trees: 3, ..Default::default() };
        let rf = RandomForest::fit(&mut rng, &x, &y, 3, &cfg);
        assert_eq!(rf.n_trees(), 3);
    }
}
