//! Property tests for the blocked kernels' bitwise contract.
//!
//! The cache-blocked kernels in `trail_linalg::kernels` claim to be
//! *bitwise identical* to the loops they replaced (DESIGN.md §11):
//! same per-element products, same increasing-k accumulation order,
//! only the register/memory residency of partial sums changes. These
//! tests check that claim across randomized shapes — including the
//! degenerate 0-row / 0-col / 1-row / 1-col edges where the tiling
//! logic has tails everywhere — against both the naive branch-free
//! loop and the legacy zero-skipping reference (equal on finite
//! inputs, because adding `±0.0` products to a `+0.0`-started
//! accumulator can never flip it to `-0.0`).
//!
//! The i8 path makes a weaker promise: per element,
//! `|f32 − quant| ≤ K · s_a[i] · s_b[j] · 127.25` (each of the K
//! products errs by at most `s_a·s_b·(127/2 + 127/2 + 1/4)`; the i32
//! accumulation itself is exact). That bound is asserted exactly.

use proptest::prelude::*;
use trail_linalg::quant::{matmul_quant_into, QuantizedMatrix};
use trail_linalg::{kernels, reference, Matrix};

/// Deterministic fill: varied magnitudes with exact zeros mixed in so
/// the zero-skip comparison actually exercises the skipped branch.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 33) as i32 % 1000) as f32 / 97.0;
            if (s >> 20) % 5 == 0 {
                0.0
            } else {
                v
            }
        })
        .collect()
}

fn naive_matmul(a: &[f32], a_cols: usize, b: &[f32], b_cols: usize, c: &mut [f32]) {
    for (a_row, c_row) in a.chunks_exact(a_cols).zip(c.chunks_exact_mut(b_cols)) {
        for (k, &av) in a_row.iter().enumerate() {
            let b_row = &b[k * b_cols..(k + 1) * b_cols];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

fn assert_bitwise(label: &str, m: usize, k: usize, n: usize, want: &[f32], got: &[f32]) {
    assert_eq!(want.len(), got.len());
    for (idx, (x, y)) in want.iter().zip(got).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{label} ({m},{k},{n}) diverged at {idx}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked `matmul_rows` is bitwise-equal to the naive ikj loop and
    /// (on finite inputs) to the legacy zero-skipping kernel, for any
    /// shape including empty and single-row/column matrices.
    #[test]
    fn matmul_blocked_is_bitwise_exact(
        m in 0usize..40,
        k in 0usize..70,
        n in 0usize..70,
        seed in 0u64..1 << 48,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0x9e3779b97f4a7c15, k * n);
        let mut naive = vec![0.0f32; m * n];
        let mut skip = naive.clone();
        let mut blocked = naive.clone();
        naive_matmul(&a, k, &b, n, &mut naive);
        reference::matmul_rows_skip(&a, k, &b, n, &mut skip);
        kernels::matmul_rows(&a, k, &b, n, &mut blocked);
        assert_bitwise("matmul vs naive", m, k, n, &naive, &blocked);
        assert_bitwise("matmul vs zero-skip", m, k, n, &skip, &blocked);
    }

    /// Blocked `t_matmul_rows` (`out += Aᵀ·B`) matches the k-outermost
    /// naive loop and the zero-skipping reference bitwise, accumulating
    /// onto a non-zero starting buffer.
    #[test]
    fn t_matmul_blocked_is_bitwise_exact(
        rows in 0usize..60,
        d_in in 0usize..40,
        d_out in 0usize..40,
        seed in 0u64..1 << 48,
    ) {
        let a = fill(seed, rows * d_in);
        let b = fill(seed ^ 0xda942042e4dd58b5, rows * d_out);
        let start = fill(seed ^ 0x2545f4914f6cdd1d, d_in * d_out);
        let mut naive = start.clone();
        let mut skip = start.clone();
        let mut blocked = start.clone();
        for k in 0..rows {
            for i in 0..d_in {
                let av = a[k * d_in + i];
                for j in 0..d_out {
                    naive[i * d_out + j] += av * b[k * d_out + j];
                }
            }
        }
        reference::t_matmul_rows_skip(&a, rows, d_in, &b, d_out, &mut skip);
        kernels::t_matmul_rows(&a, rows, d_in, &b, d_out, &mut blocked);
        assert_bitwise("t_matmul vs naive", rows, d_in, d_out, &naive, &blocked);
        assert_bitwise("t_matmul vs zero-skip", rows, d_in, d_out, &skip, &blocked);
    }

    /// `Matrix::matmul_t_into` (now transpose-then-blocked-matmul) is
    /// bitwise-equal to the per-element dot-product loop it replaced.
    #[test]
    fn matmul_t_matches_dot_reference_bitwise(
        m in 1usize..32,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1 << 48,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xa0761d6478bd642f, n * k);
        let mut want = vec![0.0f32; m * n];
        reference::matmul_t_rows_dot(&a, k, &b, n, &mut want);
        let am = Matrix::from_vec(m, k, a).unwrap();
        let bm = Matrix::from_vec(n, k, b).unwrap();
        let mut out = Matrix::zeros(m, n);
        am.matmul_t_into(&bm, &mut out).unwrap();
        assert_bitwise("matmul_t vs dot", m, k, n, &want, out.as_slice());
    }

    /// The i8 product honours its analytic error bound against the f32
    /// product: per element, at most `K · s_a[i] · s_b[j] · 127.25`.
    #[test]
    fn quant_matmul_error_is_bounded(
        m in 1usize..24,
        k in 1usize..64,
        n in 1usize..24,
        seed in 0u64..1 << 48,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xe7037ed1a0b428db, k * n);
        let am = Matrix::from_vec(m, k, a.clone()).unwrap();
        let bm = Matrix::from_vec(k, n, b.clone()).unwrap();
        let mut exact = vec![0.0f32; m * n];
        naive_matmul(&a, k, &b, n, &mut exact);
        let qa = QuantizedMatrix::quantize_rows(&am);
        let qbt = QuantizedMatrix::from_cols(&bm);
        let mut got = Matrix::zeros(m, n);
        matmul_quant_into(&qa, &qbt, &mut got).unwrap();
        for i in 0..m {
            for j in 0..n {
                let bound = k as f32 * qa.scales()[i] * qbt.scales()[j] * 127.25 + 1e-4;
                let err = (exact[i * n + j] - got.as_slice()[i * n + j]).abs();
                prop_assert!(
                    err <= bound,
                    "({m},{k},{n}) at ({i},{j}): err {err} > bound {bound}"
                );
            }
        }
    }
}
