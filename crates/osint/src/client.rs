//! The OTX-like query surface the TRAIL pipeline consumes.
//!
//! Mirrors the paper's data-access pattern (Section IV-A): search for
//! tagged events, then request per-IOC analyses that return both
//! features and relational data (secondary IOCs). Two kinds of noise
//! are simulated deterministically so repeated runs agree bit-for-bit:
//!
//! * **Permanent gaps** — a fraction of IOCs simply have no analysis
//!   record (`analysis_miss_prob`), decided per canonical key.
//! * **Transient faults** — a fraction of *attempts* fail with a
//!   rate-limit or timeout (`transient_fault_prob`), decided per
//!   canonical key *and* attempt number, so a retry can succeed.
//!
//! Every query is canonicalised through [`trail_ioc::IocKey`] before it
//! touches an index: `ThreeBody[.]CN.` and `threebody.cn` are the same
//! indicator and get the same answer, the same gap and the same fault
//! stream. Relational strings in responses are *presented* the way a
//! messy feed would print them (`feed_noise`) — mixed case, trailing
//! dots, defanged — without changing their identity.

use std::sync::Arc;

use trail_ioc::analysis::{DomainAnalysis, IpAnalysis, UrlAnalysis};
use trail_ioc::defang::defang;
use trail_ioc::report::RawReport;
use trail_ioc::vocab::fnv1a;
use trail_ioc::{Ioc, IocKind};

use crate::breaker::CircuitBreaker;
use crate::world::World;

/// Maximum historic domains a passive-DNS query returns per IP —
/// real services page their responses; the paper's two-hop cap plays
/// the same role.
const PDNS_PAGE: usize = 12;

/// A query failure. Unlike a permanent gap (`Ok(None)`), transient
/// variants can succeed on a later attempt; `CircuitOpen` means the
/// client's breaker rejected the query before it reached the feed, and
/// retrying immediately would only be rejected again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsintError {
    /// The exchange throttled this attempt.
    RateLimited,
    /// The attempt timed out.
    Timeout,
    /// The client-side circuit breaker is shedding load.
    CircuitOpen,
}

impl OsintError {
    /// Whether an immediate retry can plausibly succeed. Breaker
    /// rejections are not transient from the caller's perspective:
    /// the breaker must cool down first, so retrying in a tight loop
    /// is exactly the load it exists to shed.
    pub fn is_transient(self) -> bool {
        match self {
            OsintError::RateLimited | OsintError::Timeout => true,
            OsintError::CircuitOpen => false,
        }
    }
}

impl std::fmt::Display for OsintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsintError::RateLimited => f.write_str("rate limited"),
            OsintError::Timeout => f.write_str("timed out"),
            OsintError::CircuitOpen => f.write_str("circuit breaker open"),
        }
    }
}

impl std::error::Error for OsintError {}

/// One FNV-1a step over a single byte.
#[inline]
fn fnv1a_step(mut h: u64, b: u8) -> u64 {
    h ^= b as u64;
    h.wrapping_mul(0x100000001b3)
}

/// FNV-1a over the byte stream `"{key}#a{attempt}"` without building
/// the string: equals `fnv1a(&format!("{key}#a{attempt}"))` exactly.
fn fault_hash(key: &str, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h = fnv1a_step(h, b);
    }
    h = fnv1a_step(h, b'#');
    h = fnv1a_step(h, b'a');
    let mut digits = [0u8; 10];
    let mut i = digits.len();
    let mut n = attempt;
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    for &b in &digits[i..] {
        h = fnv1a_step(h, b);
    }
    h
}

/// Read-only client over a generated [`World`].
#[derive(Clone)]
pub struct OsintClient {
    world: Arc<World>,
    /// Optional shared circuit breaker guarding the fallible query
    /// surface. `None` (the default) leaves behaviour exactly as before
    /// the breaker existed. Clones share the breaker, so every worker
    /// sees one joint view of feed health.
    breaker: Option<Arc<CircuitBreaker>>,
}

impl OsintClient {
    /// Wrap a world. No breaker: queries are never shed client-side.
    pub fn new(world: Arc<World>) -> Self {
        Self { world, breaker: None }
    }

    /// Wrap a world with a circuit breaker on the fallible query path.
    pub fn with_breaker(world: Arc<World>, breaker: Arc<CircuitBreaker>) -> Self {
        Self { world, breaker: Some(breaker) }
    }

    /// Attach (or replace) the circuit breaker.
    pub fn set_breaker(&mut self, breaker: Arc<CircuitBreaker>) {
        self.breaker = Some(breaker);
    }

    /// The breaker guarding this client, if any.
    pub fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.breaker.as_ref()
    }

    /// Borrow the underlying world (ground truth — evaluation only).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Borrowed view of all reports created strictly before `day` (the
    /// main dataset pull). The generator materialises events once; this
    /// streams them out without cloning, so a full-scale build never
    /// duplicates the report set just to read it.
    pub fn reports_before(&self, day: u32) -> impl Iterator<Item = &RawReport> + '_ {
        self.world.events.iter().filter(move |e| e.day < day).map(|e| &e.report)
    }

    /// Borrowed view of reports with `lo <= day < hi` (monthly study
    /// batches), no cloning.
    pub fn reports_between(&self, lo: u32, hi: u32) -> impl Iterator<Item = &RawReport> + '_ {
        self.world
            .events
            .iter()
            .filter(move |e| e.day >= lo && e.day < hi)
            .map(|e| &e.report)
    }

    /// All reports created strictly before `day`, cloned into owned
    /// form. Prefer [`Self::reports_before`] on hot paths.
    pub fn events_before(&self, day: u32) -> Vec<RawReport> {
        self.reports_before(day).cloned().collect()
    }

    /// Reports with `lo <= day < hi`, cloned into owned form. Prefer
    /// [`Self::reports_between`] on hot paths.
    pub fn events_between(&self, lo: u32, hi: u32) -> Vec<RawReport> {
        self.reports_between(lo, hi).cloned().collect()
    }

    /// Reports with `lo <= day < hi` in **canonical arrival order**:
    /// nondecreasing `(created_day, id)`. This is the feed contract the
    /// streaming runtime (`trail::stream`) ingests under — the order a
    /// continuous collector would deliver, and the order every
    /// micro-batch partition of the same span must replay to be
    /// bitwise-equivalent to a batch ingest. The generator assigns ids
    /// in generation order and sorts events stably by day, so this
    /// matches the [`Self::events_between`] batch order exactly; the
    /// explicit sort makes the contract hold even for a provider that
    /// delivers within-day reports out of order.
    pub fn stream_reports(&self, lo: u32, hi: u32) -> Vec<RawReport> {
        let mut out = self.events_between(lo, hi);
        out.sort_by(|a, b| {
            (a.created_day, a.id.as_str()).cmp(&(b.created_day, b.id.as_str()))
        });
        out
    }

    /// Reports created exactly on `day` — a one-day micro-batch, the
    /// natural polling granularity for incremental enrichment.
    pub fn events_at(&self, day: u32) -> Vec<RawReport> {
        self.stream_reports(day, day + 1)
    }

    /// Canonicalise raw query text so every spelling of an indicator
    /// maps to one index key (and one miss/fault stream). Unparseable
    /// text falls back to its trimmed raw form — it will find nothing,
    /// which is the right answer for garbage. One allocation: the
    /// canonical text the parser builds is moved out, never re-cloned
    /// through an owned [`trail_ioc::IocKey`].
    fn canonical(kind: IocKind, raw: &str) -> String {
        Ioc::parse_as(kind, raw).map(Ioc::into_text).unwrap_or_else(|_| raw.trim().to_owned())
    }

    /// Deterministic per-key analysis gap: true when the query "misses".
    fn misses(&self, key: &str) -> bool {
        let p = self.world.config.analysis_miss_prob;
        let h = fnv1a(key) ^ self.world.config.seed;
        ((h % 10_000) as f32) < p * 10_000.0
    }

    /// Deterministic per (key, attempt) transient fault. The hash is
    /// FNV-1a over the same byte stream `"{key}#a{attempt}"` always
    /// used, streamed incrementally so the hot retry path allocates
    /// nothing — fault patterns are bit-identical to the formatted form.
    fn fault(&self, key: &str, attempt: u32) -> Option<OsintError> {
        let p = self.world.config.transient_fault_prob;
        if p <= 0.0 {
            return None;
        }
        let h = fault_hash(key, attempt) ^ self.world.config.seed.rotate_left(17);
        if ((h % 10_000) as f32) < p * 10_000.0 {
            Some(if (h >> 16) & 1 == 0 { OsintError::RateLimited } else { OsintError::Timeout })
        } else {
            None
        }
    }

    /// Present a canonical name the way a messy feed would: sometimes
    /// mixed-case, trailing-dotted or defanged. Deterministic per
    /// string; presentation only — refanging/parsing recovers the same
    /// identity.
    fn present(&self, kind: IocKind, name: &str) -> String {
        let p = self.world.config.feed_noise;
        if p <= 0.0 {
            return name.to_owned();
        }
        let h = fnv1a(name) ^ self.world.config.seed.rotate_left(29);
        if ((h % 10_000) as f32) >= p * 10_000.0 {
            return name.to_owned();
        }
        match kind {
            // URL paths are case-sensitive, so URLs and IPs only get
            // defanged; domains also get case and trailing-dot noise.
            IocKind::Ip | IocKind::Url => defang(name),
            IocKind::Domain => match (h >> 20) % 3 {
                0 => defang(name),
                1 => format!("{name}."),
                _ => name
                    .chars()
                    .enumerate()
                    .map(|(i, c)| if i % 2 == 0 { c.to_ascii_uppercase() } else { c })
                    .collect(),
            },
        }
    }

    /// Analyse an IP as of `asof_day`. `None` when unknown or the
    /// lookup gaps out. Never faults (the infallible legacy surface).
    pub fn analyze_ip(&self, ip: &str, asof_day: u32) -> Option<IpAnalysis> {
        trail_obs::counter_add("osint.queries", 1);
        self.lookup_ip(&Self::canonical(IocKind::Ip, ip), asof_day)
    }

    /// Analyse a domain as of `asof_day`.
    pub fn analyze_domain(&self, domain: &str, asof_day: u32) -> Option<DomainAnalysis> {
        trail_obs::counter_add("osint.queries", 1);
        self.lookup_domain(&Self::canonical(IocKind::Domain, domain), asof_day)
    }

    /// Analyse a URL as of `asof_day` (the cached cURL probe).
    pub fn analyze_url(&self, url: &str, asof_day: u32) -> Option<UrlAnalysis> {
        trail_obs::counter_add("osint.queries", 1);
        self.lookup_url(&Self::canonical(IocKind::Url, url), asof_day)
    }

    /// Breaker admission for one fallible query. A rejection counts as
    /// a fault (under `osint.faults`) but happens *before* any lookup,
    /// so it can never register a permanent miss.
    fn gate(&self) -> Result<(), OsintError> {
        match &self.breaker {
            Some(b) if !b.admit() => {
                trail_obs::counter_add("osint.faults", 1);
                Err(OsintError::CircuitOpen)
            }
            _ => Ok(()),
        }
    }

    /// Report an admitted query's outcome to the breaker. A permanent
    /// gap (`Ok(None)`) is a success here: the feed answered.
    fn record_outcome(&self, faulted: bool) {
        if let Some(b) = &self.breaker {
            if faulted {
                b.record_fault();
            } else {
                b.record_success();
            }
        }
    }

    /// Fallible IP analysis: `Err` on an injected transient fault for
    /// this `attempt` or a breaker rejection, `Ok(None)` on a permanent
    /// gap or unknown IOC.
    pub fn try_analyze_ip(
        &self,
        ip: &str,
        asof_day: u32,
        attempt: u32,
    ) -> Result<Option<IpAnalysis>, OsintError> {
        trail_obs::counter_add("osint.queries", 1);
        self.gate()?;
        let key = Self::canonical(IocKind::Ip, ip);
        match self.fault(&key, attempt) {
            Some(e) => {
                trail_obs::counter_add("osint.faults", 1);
                self.record_outcome(true);
                Err(e)
            }
            None => {
                self.record_outcome(false);
                Ok(self.lookup_ip(&key, asof_day))
            }
        }
    }

    /// Fallible domain analysis (see [`Self::try_analyze_ip`]).
    pub fn try_analyze_domain(
        &self,
        domain: &str,
        asof_day: u32,
        attempt: u32,
    ) -> Result<Option<DomainAnalysis>, OsintError> {
        trail_obs::counter_add("osint.queries", 1);
        self.gate()?;
        let key = Self::canonical(IocKind::Domain, domain);
        match self.fault(&key, attempt) {
            Some(e) => {
                trail_obs::counter_add("osint.faults", 1);
                self.record_outcome(true);
                Err(e)
            }
            None => {
                self.record_outcome(false);
                Ok(self.lookup_domain(&key, asof_day))
            }
        }
    }

    /// Fallible URL analysis (see [`Self::try_analyze_ip`]).
    pub fn try_analyze_url(
        &self,
        url: &str,
        asof_day: u32,
        attempt: u32,
    ) -> Result<Option<UrlAnalysis>, OsintError> {
        trail_obs::counter_add("osint.queries", 1);
        self.gate()?;
        let key = Self::canonical(IocKind::Url, url);
        match self.fault(&key, attempt) {
            Some(e) => {
                trail_obs::counter_add("osint.faults", 1);
                self.record_outcome(true);
                Err(e)
            }
            None => {
                self.record_outcome(false);
                Ok(self.lookup_url(&key, asof_day))
            }
        }
    }

    fn lookup_ip(&self, key: &str, asof_day: u32) -> Option<IpAnalysis> {
        if self.misses(key) {
            trail_obs::counter_add("osint.misses", 1);
            return None;
        }
        let Some(&idx) = self.world.ip_index.get(key) else {
            trail_obs::counter_add("osint.misses", 1);
            return None;
        };
        let t = &self.world.ips[idx as usize];
        let asn = &self.world.asns[t.asn as usize];
        let historic: Vec<String> = t
            .domains
            .iter()
            .take(PDNS_PAGE)
            .map(|&d| self.present(IocKind::Domain, &self.world.domain_names[d as usize]))
            .collect();
        Some(IpAnalysis {
            country: Some(asn.country.clone()),
            issuer: Some(t.issuer.clone()),
            latitude: t.lat,
            longitude: t.lon,
            a_record_count: t.domains.len() as u32,
            resolving_domain_count: t.domains.len() as u32,
            asn: Some(asn.number),
            asn_size_log: asn.size_log,
            first_seen_days: asof_day.saturating_sub(t.first_day) as f32,
            last_seen_days: asof_day.saturating_sub(t.last_day) as f32,
            historic_domains: historic,
        })
    }

    fn lookup_domain(&self, key: &str, asof_day: u32) -> Option<DomainAnalysis> {
        if self.misses(key) {
            trail_obs::counter_add("osint.misses", 1);
            return None;
        }
        let Some(&idx) = self.world.domain_index.get(key) else {
            trail_obs::counter_add("osint.misses", 1);
            return None;
        };
        let t = &self.world.domains[idx as usize];
        let mut record_counts = [0u32; 9];
        record_counts[0] = t.ips.len() as u32;
        record_counts[1..9].copy_from_slice(&t.extra_records);
        let nxdomain =
            asof_day.saturating_sub(t.last_day) as f32 > self.world.config.nxdomain_after_days;
        Some(DomainAnalysis {
            record_counts,
            nxdomain,
            first_seen_days: asof_day.saturating_sub(t.first_day) as f32,
            last_seen_days: asof_day.saturating_sub(t.last_day) as f32,
            resolved_ips: t
                .ips
                .iter()
                .take(PDNS_PAGE)
                .map(|&ip| self.present(IocKind::Ip, &self.world.ip_names[ip as usize]))
                .collect(),
            cname_targets: Vec::new(),
            hosted_urls: t
                .urls
                .iter()
                .take(PDNS_PAGE)
                .map(|&u| self.present(IocKind::Url, &self.world.url_names[u as usize]))
                .collect(),
        })
    }

    fn lookup_url(&self, key: &str, asof_day: u32) -> Option<UrlAnalysis> {
        if self.misses(key) {
            trail_obs::counter_add("osint.misses", 1);
            return None;
        }
        let Some(&idx) = self.world.url_index.get(key) else {
            trail_obs::counter_add("osint.misses", 1);
            return None;
        };
        let t = &self.world.urls[idx as usize];
        let alive = asof_day.saturating_sub(t.created_day) < 400;
        Some(UrlAnalysis {
            alive,
            file_type: Some(t.file_type.clone()),
            file_class: Some(t.file_class.clone()),
            http_code: Some(if alive { t.http_code } else { 404 }),
            encoding: Some(t.encoding.clone()),
            server: Some(t.server.clone()),
            server_os: Some(t.server_os.clone()),
            services: t.services.clone(),
            header_flags: t.header_flags.clone(),
            resolved_ips: t
                .ips
                .iter()
                .take(PDNS_PAGE)
                .map(|&ip| self.present(IocKind::Ip, &self.world.ip_names[ip as usize]))
                .collect(),
        })
    }

    /// ASN metadata by number (whois equivalent): `(name, country)`.
    pub fn asn_info(&self, number: u32) -> Option<(String, String)> {
        self.world
            .asns
            .iter()
            .find(|a| a.number == number)
            .map(|a| (a.name.clone(), a.country.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;
    use trail_ioc::defang::refang;

    fn client() -> OsintClient {
        OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(9))))
    }

    fn client_with(f: impl FnOnce(&mut WorldConfig)) -> OsintClient {
        let mut cfg = WorldConfig::tiny(9);
        f(&mut cfg);
        OsintClient::new(Arc::new(World::generate(cfg)))
    }

    #[test]
    fn event_windows_partition_timeline() {
        let c = client();
        let cutoff = c.world().config.cutoff_day;
        let horizon = c.world().config.horizon_day();
        let before = c.events_before(cutoff).len();
        let after = c.events_between(cutoff, horizon).len();
        assert_eq!(before + after, c.world().events.len());
        assert!(before > 0 && after > 0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let c = client();
        // Find an IP indicator in some report.
        let reports = c.events_before(c.world().config.cutoff_day);
        let ip = reports
            .iter()
            .flat_map(|r| &r.indicators)
            .find(|i| i.indicator_type == "IPv4" && !i.indicator.contains('['))
            .map(|i| i.indicator.clone())
            .expect("some plain IP indicator");
        assert_eq!(c.analyze_ip(&ip, 500), c.analyze_ip(&ip, 500));
    }

    #[test]
    fn queries_are_canonicalised_before_lookup() {
        let c = client();
        let domain = c
            .world()
            .domain_names
            .iter()
            .find(|n| c.analyze_domain(n, 700).is_some())
            .expect("some analysable domain");
        let noisy = [
            format!("{domain}."),
            domain.to_uppercase(),
            trail_ioc::defang::defang(domain),
        ];
        for raw in &noisy {
            assert_eq!(
                c.analyze_domain(raw, 700),
                c.analyze_domain(domain, 700),
                "raw spelling {raw:?} answered differently"
            );
        }
        // Defanged IPs and URLs are canonicalised too.
        let ip = c.world().ip_names.iter().find(|n| c.analyze_ip(n, 700).is_some()).unwrap();
        assert_eq!(c.analyze_ip(&trail_ioc::defang::defang(ip), 700), c.analyze_ip(ip, 700));
    }

    #[test]
    fn unknown_iocs_return_none() {
        let c = client();
        assert!(c.analyze_ip("203.0.113.99", 100).is_none());
        assert!(c.analyze_domain("never-generated.example", 100).is_none());
        assert!(c.analyze_url("http://never.example/x", 100).is_none());
    }

    #[test]
    fn some_queries_gap_out() {
        let c = client();
        let total = c.world().ip_names.len();
        let missed = c
            .world()
            .ip_names
            .iter()
            .filter(|name| c.analyze_ip(name, 400).is_none())
            .count();
        // miss prob is 10%: expect some but not most.
        assert!(missed > 0, "no analysis gaps at all");
        assert!(missed < total / 2, "{missed}/{total} missed");
    }

    #[test]
    fn domain_analysis_links_ips_and_ages() {
        let c = client();
        // Find an analysable domain with resolutions.
        let found = c
            .world()
            .domain_names
            .iter()
            .find_map(|name| c.analyze_domain(name, 700).map(|a| (name.clone(), a)))
            .expect("some domain analysis");
        let (_, a) = found;
        // resolved_ips is the paged view of the A records: never more
        // than the record count, never more than one page.
        assert!(a.resolved_ips.len() <= a.record_counts[0] as usize);
        assert!(a.resolved_ips.len() <= PDNS_PAGE);
        assert!(a.first_seen_days >= a.last_seen_days);
    }

    #[test]
    fn old_domains_go_nxdomain() {
        let c = client();
        let cfg_days = c.world().config.nxdomain_after_days as u32;
        let name = c
            .world()
            .domain_names
            .iter()
            .find(|n| c.analyze_domain(n, 0).is_some())
            .unwrap()
            .clone();
        let late = c.analyze_domain(&name, 100_000 + cfg_days).unwrap();
        assert!(late.nxdomain);
    }

    #[test]
    fn url_analysis_has_server_fingerprint() {
        let c = client();
        let found = c
            .world()
            .url_names
            .iter()
            .find_map(|name| c.analyze_url(name, 100))
            .expect("some URL analysis");
        assert!(found.server.is_some());
        assert!(found.file_type.is_some());
    }

    #[test]
    fn feed_noise_is_presentation_only() {
        let noisy = client_with(|cfg| cfg.feed_noise = 1.0);
        let clean = client_with(|cfg| cfg.feed_noise = 0.0);
        let name = noisy
            .world()
            .domain_names
            .iter()
            .find(|n| noisy.analyze_domain(n, 700).map(|a| !a.resolved_ips.is_empty()) == Some(true))
            .expect("domain with resolutions");
        let a_noisy = noisy.analyze_domain(name, 700).unwrap();
        let a_clean = clean.analyze_domain(name, 700).unwrap();
        // Same identities after refanging, and at full noise at least
        // one string is actually non-canonical.
        let refanged: Vec<String> = a_noisy
            .resolved_ips
            .iter()
            .map(|s| OsintClient::canonical(IocKind::Ip, s))
            .collect();
        assert_eq!(refanged, a_clean.resolved_ips);
        assert!(
            a_noisy.resolved_ips.iter().any(|s| s.contains("[.]")),
            "full feed noise produced no defanged IPs: {:?}",
            a_noisy.resolved_ips
        );
        // Noisy presentation still refangs to a valid indicator.
        for s in &a_noisy.resolved_ips {
            assert!(trail_ioc::ip::IpIoc::parse(&refang(s)).is_ok(), "unparseable {s:?}");
        }
    }

    #[test]
    fn fault_hash_matches_the_formatted_stream() {
        // The allocation-free hash must reproduce the formatted form
        // bit-for-bit, or every seeded fault pattern would shift.
        for key in ["threebody.cn", "1.0.36.127", "http://a.example/x", ""] {
            for attempt in [0u32, 1, 9, 10, 42, 999, 1_000_000, u32::MAX] {
                assert_eq!(
                    fault_hash(key, attempt),
                    fnv1a(&format!("{key}#a{attempt}")),
                    "key {key:?} attempt {attempt}"
                );
            }
        }
    }

    #[test]
    fn transient_faults_are_deterministic_per_attempt() {
        let c = client_with(|cfg| cfg.transient_fault_prob = 0.5);
        let name = c.world().domain_names[0].clone();
        for attempt in 0..4 {
            assert_eq!(
                c.try_analyze_domain(&name, 700, attempt),
                c.try_analyze_domain(&name, 700, attempt),
                "attempt {attempt} not reproducible"
            );
        }
        // At 50% per attempt, some key+attempt faults and some succeeds.
        let mut faulted = 0;
        let mut succeeded = 0;
        for name in c.world().domain_names.iter().take(40) {
            match c.try_analyze_domain(name, 700, 0) {
                Err(e) => {
                    assert!(e.is_transient());
                    faulted += 1;
                }
                Ok(_) => succeeded += 1,
            }
        }
        assert!(faulted > 0, "no transient faults at p=0.5");
        assert!(succeeded > 0, "every query faulted at p=0.5");
    }

    #[test]
    fn breaker_trips_on_dead_feed_and_rejections_fail_fast() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let mut cfg = WorldConfig::tiny(9);
        cfg.transient_fault_prob = 1.0; // every attempt faults
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 4,
            half_open_successes: 2,
        }));
        let c = OsintClient::with_breaker(
            Arc::new(World::generate(cfg)),
            Arc::clone(&breaker),
        );
        let name = c.world().domain_names[0].clone();
        // Three admitted faults trip the breaker…
        for a in 0..3 {
            let e = c.try_analyze_domain(&name, 700, a).unwrap_err();
            assert!(e.is_transient());
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        // …then queries are shed before reaching the feed.
        let e = c.try_analyze_domain(&name, 700, 3).unwrap_err();
        assert_eq!(e, OsintError::CircuitOpen);
        assert!(!e.is_transient());
    }

    #[test]
    fn breaker_recloses_after_feed_recovers() {
        use crate::breaker::{BreakerConfig, BreakerState};
        // Healthy feed, but a breaker we trip by hand: the client's
        // successful queries must walk it Half-Open → Closed.
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_rejections: 2,
            half_open_successes: 2,
        }));
        let c = OsintClient::with_breaker(
            Arc::new(World::generate(WorldConfig::tiny(9))),
            Arc::clone(&breaker),
        );
        for _ in 0..3 {
            breaker.record_fault();
        }
        let name = c.world().domain_names[0].clone();
        // Two rejections serve the cooldown.
        assert_eq!(c.try_analyze_domain(&name, 700, 0), Err(OsintError::CircuitOpen));
        assert_eq!(c.try_analyze_domain(&name, 700, 0), Err(OsintError::CircuitOpen));
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // Probes succeed (p=0 faults) and re-close the breaker.
        assert!(c.try_analyze_domain(&name, 700, 0).is_ok());
        assert!(c.try_analyze_domain(&name, 700, 0).is_ok());
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn clones_share_one_breaker() {
        use crate::breaker::BreakerState;
        let breaker = Arc::new(CircuitBreaker::default());
        let a = OsintClient::with_breaker(
            Arc::new(World::generate(WorldConfig::tiny(9))),
            Arc::clone(&breaker),
        );
        let b = a.clone();
        for _ in 0..breaker.config().failure_threshold {
            breaker.record_fault();
        }
        let name = a.world().domain_names[0].clone();
        assert_eq!(a.try_analyze_domain(&name, 700, 0), Err(OsintError::CircuitOpen));
        assert_eq!(b.try_analyze_domain(&name, 700, 0), Err(OsintError::CircuitOpen));
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn faults_disabled_by_default_and_retries_can_recover() {
        let c = client();
        let name = c.world().domain_names[0].clone();
        assert!(c.try_analyze_domain(&name, 700, 0).is_ok(), "faults injected at p=0");
        let f = client_with(|cfg| cfg.transient_fault_prob = 0.5);
        // Some key that faults on attempt 0 succeeds on a later attempt.
        let recovered = f.world().domain_names.iter().take(60).any(|n| {
            f.try_analyze_domain(n, 700, 0).is_err()
                && (1..4).any(|a| f.try_analyze_domain(n, 700, a).is_ok())
        });
        assert!(recovered, "no faulting key recovered within 3 retries");
    }
}
