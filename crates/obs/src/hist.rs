//! Fixed-bucket histograms.
//!
//! A [`Histogram`] is a set of ascending upper bounds plus an overflow
//! bucket; observations are recorded lock-free with relaxed atomics.
//! Bucket `i` (for `i < bounds.len()`) counts observations `v` with
//! `v <= bounds[i]` and `v > bounds[i - 1]`; the final bucket counts
//! everything above the last bound. The invariant tested by the
//! property suite: the bucket counts always sum to the number of
//! observations, and `sum()` is the exact total of observed values.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Histogram {
    /// Create a histogram from strictly ascending upper bounds. An
    /// extra overflow bucket is appended automatically.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self { bounds: bounds.to_vec(), counts, sum: AtomicU64::new(0) }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The configured upper bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Current bucket counts (`bounds().len() + 1` entries).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Total number of observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Exact sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Zero every bucket and the running sum in place.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_upper_bound_inclusive() {
        let h = Histogram::new(&[10, 100]);
        h.observe(0);
        h.observe(10);
        h.observe(11);
        h.observe(100);
        h.observe(101);
        assert_eq!(h.bucket_counts(), vec![2, 2, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.sum(), 222);
    }

    #[test]
    fn empty_bounds_is_a_single_overflow_bucket() {
        let h = Histogram::new(&[]);
        h.observe(7);
        h.observe(0);
        assert_eq!(h.bucket_counts(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_bounds_panic() {
        Histogram::new(&[5, 5]);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let h = Histogram::new(&[1]);
        h.observe(3);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.bucket_counts(), vec![0, 0]);
    }
}
