//! Optimisers. Adam is what the paper's models train with.

use serde::{Deserialize, Serialize};

use super::layers::Param;

/// Adam (Kingma & Ba 2015) with optional decoupled weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
    t: i32,
}

impl Adam {
    /// Adam with standard betas.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0 }
    }

    /// Advance the global step counter. Call once per batch, before
    /// stepping the parameters of that batch.
    pub fn tick(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to a parameter, then zero its gradient.
    pub fn step(&self, p: &mut Param) {
        debug_assert!(self.t > 0, "tick() before step()");
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        let value = p.value.as_mut_slice();
        let grad = p.grad.as_mut_slice();
        let m = p.m.as_mut_slice();
        let v = p.v.as_mut_slice();
        for i in 0..value.len() {
            let g = grad[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / b1t;
            let v_hat = v[i] / b2t;
            value[i] -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * value[i]);
            grad[i] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_linalg::Matrix;

    /// Minimise f(x) = (x - 3)^2 with Adam; gradient = 2(x-3).
    #[test]
    fn converges_on_quadratic() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let x = p.value[(0, 0)];
            p.grad[(0, 0)] = 2.0 * (x - 3.0);
            adam.tick();
            adam.step(&mut p);
        }
        assert!((p.value[(0, 0)] - 3.0).abs() < 1e-2, "{}", p.value[(0, 0)]);
    }

    #[test]
    fn step_zeroes_gradient() {
        let mut p = Param::new(Matrix::zeros(1, 2));
        p.grad[(0, 0)] = 1.0;
        let mut adam = Adam::new(0.01);
        adam.tick();
        adam.step(&mut p);
        assert_eq!(p.grad[(0, 0)], 0.0);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![1.0]).unwrap());
        let mut adam = Adam::new(0.1);
        adam.weight_decay = 0.5;
        // Zero task gradient: only decay acts.
        adam.tick();
        adam.step(&mut p);
        assert!(p.value[(0, 0)] < 1.0);
    }
}
