//! Circuit breaker for the OSINT query path.
//!
//! Real enrichment feeds fail in bursts: a rate-limit storm or an
//! upstream outage makes *every* attempt fail for a while, and naive
//! per-query retries multiply the load exactly when the feed is least
//! able to serve it. The standard remedy is a circuit breaker
//! (Closed → Open → Half-Open) that sheds load after a run of faults
//! and probes cautiously before trusting the feed again.
//!
//! This implementation is **time-free**: the reproduction pipeline is
//! deterministic end-to-end, so instead of a wall-clock cooldown the
//! Open state counts *rejected admissions* and transitions to Half-Open
//! after a fixed number of them. The same query stream therefore drives
//! the same state trajectory on every run, which is what lets the chaos
//! harness assert exact fault/degradation accounting.
//!
//! The whole state machine lives in one packed `AtomicU64` advanced by
//! compare-and-swap, so `admit`/`record_*` are lock-free: the serving
//! layer calls them from every worker thread, and a panicking caller
//! can never wedge the breaker the way a poisoned mutex would. Under a
//! single-threaded caller the trajectory is exactly the sequential
//! state machine below; under concurrent callers each transition still
//! happens exactly once (one winning CAS), so the obs counters and the
//! state trajectory stay consistent — only the interleaving of
//! *independent* calls is scheduler-ordered.
//!
//! State machine:
//!
//! * **Closed** — all queries admitted. `failure_threshold` consecutive
//!   faults trip the breaker to Open (a success resets the run).
//! * **Open** — every admission is rejected (counted under
//!   `osint.breaker.rejected`). After `cooldown_rejections` rejections
//!   the breaker moves to Half-Open; the transitioning call itself is
//!   still rejected, so the *next* query is the first probe.
//! * **Half-Open** — queries admitted as probes. `half_open_successes`
//!   consecutive successes close the breaker; any fault re-opens it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Breaker thresholds. All counts, no clocks — see the module docs.
///
/// Counters are stored as 16-bit saturating fields in the packed state
/// word, so thresholds above `u16::MAX` are clamped to `u16::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults (while Closed) that trip the breaker.
    pub failure_threshold: u32,
    /// Rejections served while Open before moving to Half-Open.
    pub cooldown_rejections: u32,
    /// Consecutive probe successes (while Half-Open) that re-close.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown_rejections: 8, half_open_successes: 2 }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; queries flow.
    Closed,
    /// Shedding load; queries rejected without touching the feed.
    Open,
    /// Probing; queries flow but one fault re-opens.
    HalfOpen,
}

/// Unpacked view of the atomic state word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packed {
    state: BreakerState,
    /// Consecutive faults observed while Closed.
    consecutive_faults: u16,
    /// Rejections served while Open.
    rejections: u16,
    /// Consecutive successes observed while Half-Open.
    probe_successes: u16,
}

impl Packed {
    const CLOSED: Self =
        Self { state: BreakerState::Closed, consecutive_faults: 0, rejections: 0, probe_successes: 0 };

    fn encode(self) -> u64 {
        let tag: u64 = match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        (tag << 48)
            | ((self.consecutive_faults as u64) << 32)
            | ((self.rejections as u64) << 16)
            | self.probe_successes as u64
    }

    fn decode(v: u64) -> Self {
        let state = match v >> 48 {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            _ => BreakerState::HalfOpen,
        };
        Self {
            state,
            consecutive_faults: ((v >> 32) & 0xFFFF) as u16,
            rejections: ((v >> 16) & 0xFFFF) as u16,
            probe_successes: (v & 0xFFFF) as u16,
        }
    }

    fn opened(self) -> Self {
        Self { state: BreakerState::Open, rejections: 0, probe_successes: 0, ..self }
    }
}

/// Clamp a config threshold into the 16-bit counter domain.
fn clamp(threshold: u32) -> u16 {
    threshold.min(u16::MAX as u32) as u16
}

/// A deterministic, lock-free circuit breaker.
///
/// Shared by every clone of an [`crate::OsintClient`] — and by every
/// serving worker — via `Arc`, so concurrent callers observe one joint
/// view of feed health.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    cell: AtomicU64,
}

impl CircuitBreaker {
    /// Breaker in the Closed state.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self { cfg, cell: AtomicU64::new(Packed::CLOSED.encode()) }
    }

    /// The configuration this breaker runs with.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Current state (diagnostics only — racy by nature under
    /// concurrency, exact under a deterministic single-threaded
    /// caller).
    pub fn state(&self) -> BreakerState {
        Packed::decode(self.cell.load(Ordering::Acquire)).state
    }

    /// CAS `cur` → `next`; on success run `effects` (obs counters) and
    /// return `Some(result)`, else `None` to retry the transition loop.
    fn transition<T>(
        &self,
        cur: u64,
        next: Packed,
        result: T,
        effects: impl FnOnce(),
    ) -> Option<T> {
        match self.cell.compare_exchange_weak(
            cur,
            next.encode(),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                effects();
                Some(result)
            }
            Err(_) => None,
        }
    }

    /// Ask to run a query. `true` admits it; `false` means the caller
    /// must fail fast without touching the feed. While Open, each
    /// rejection counts toward the cooldown; the call that exhausts the
    /// cooldown flips to Half-Open but is itself still rejected.
    pub fn admit(&self) -> bool {
        loop {
            let cur = self.cell.load(Ordering::Acquire);
            let mut s = Packed::decode(cur);
            match s.state {
                BreakerState::Closed | BreakerState::HalfOpen => return true,
                BreakerState::Open => {
                    s.rejections = s.rejections.saturating_add(1);
                    let to_half_open = s.rejections >= clamp(self.cfg.cooldown_rejections);
                    if to_half_open {
                        s.state = BreakerState::HalfOpen;
                        s.probe_successes = 0;
                    }
                    let done = self.transition(cur, s, false, || {
                        trail_obs::counter_add("osint.breaker.rejected", 1);
                        if to_half_open {
                            trail_obs::counter_add("osint.breaker.half_open", 1);
                        }
                    });
                    if let Some(r) = done {
                        return r;
                    }
                }
            }
        }
    }

    /// Report that an admitted query completed without a transient
    /// fault (a permanent gap still counts: the feed *answered*).
    pub fn record_success(&self) {
        loop {
            let cur = self.cell.load(Ordering::Acquire);
            let mut s = Packed::decode(cur);
            match s.state {
                BreakerState::Closed => {
                    if s.consecutive_faults == 0 {
                        return;
                    }
                    s.consecutive_faults = 0;
                }
                BreakerState::HalfOpen => {
                    s.probe_successes = s.probe_successes.saturating_add(1);
                    if s.probe_successes >= clamp(self.cfg.half_open_successes) {
                        s = Packed::CLOSED;
                        if self.transition(cur, s, (), || {
                            trail_obs::counter_add("osint.breaker.closed", 1);
                        })
                        .is_some()
                        {
                            return;
                        }
                        continue;
                    }
                }
                // A success can race in after the breaker opened; ignore.
                BreakerState::Open => return,
            }
            if self.transition(cur, s, (), || {}).is_some() {
                return;
            }
        }
    }

    /// Report that an admitted query failed transiently.
    pub fn record_fault(&self) {
        loop {
            let cur = self.cell.load(Ordering::Acquire);
            let mut s = Packed::decode(cur);
            match s.state {
                BreakerState::Closed => {
                    s.consecutive_faults = s.consecutive_faults.saturating_add(1);
                    let opens = s.consecutive_faults >= clamp(self.cfg.failure_threshold);
                    if opens {
                        s = s.opened();
                    }
                    if self
                        .transition(cur, s, (), || {
                            if opens {
                                trail_obs::counter_add("osint.breaker.opened", 1);
                            }
                        })
                        .is_some()
                    {
                        return;
                    }
                }
                BreakerState::HalfOpen => {
                    if self
                        .transition(cur, s.opened(), (), || {
                            trail_obs::counter_add("osint.breaker.opened", 1);
                        })
                        .is_some()
                    {
                        return;
                    }
                }
                BreakerState::Open => return,
            }
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, cooldown_rejections: 4, half_open_successes: 2 }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..2 {
            assert!(b.admit());
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // A success resets the consecutive-fault run.
        b.record_success();
        for _ in 0..2 {
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn trips_open_at_threshold_and_rejects() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            assert!(b.admit());
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit());
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn cooldown_rejections_move_to_half_open() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_fault();
        }
        // 4 rejections serve the cooldown; the 4th flips to Half-Open
        // but is itself rejected.
        for _ in 0..4 {
            assert!(!b.admit());
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit());
    }

    #[test]
    fn probe_successes_reclose() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_fault();
        }
        for _ in 0..4 {
            b.admit();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
    }

    #[test]
    fn probe_fault_reopens_and_restarts_cooldown() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_fault();
        }
        for _ in 0..4 {
            b.admit();
        }
        b.record_success();
        b.record_fault(); // probe fails → back to Open
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown starts over: 4 fresh rejections needed.
        for _ in 0..3 {
            assert!(!b.admit());
            assert_eq!(b.state(), BreakerState::Open);
        }
        assert!(!b.admit());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn default_config_matches_docs() {
        let d = BreakerConfig::default();
        assert_eq!(d.failure_threshold, 5);
        assert_eq!(d.cooldown_rejections, 8);
        assert_eq!(d.half_open_successes, 2);
    }

    #[test]
    fn packed_state_roundtrips() {
        for state in [BreakerState::Closed, BreakerState::Open, BreakerState::HalfOpen] {
            let s = Packed { state, consecutive_faults: 7, rejections: 65535, probe_successes: 3 };
            assert_eq!(Packed::decode(s.encode()), s);
        }
    }

    #[test]
    fn saturating_counters_never_wrap() {
        // failure_threshold above the 16-bit counter domain clamps: the
        // breaker still opens (at 65535) instead of wrapping to 0 and
        // never opening.
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: u32::MAX,
            cooldown_rejections: 1,
            half_open_successes: 1,
        });
        for _ in 0..70_000 {
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    /// The re-close liveness drill from the property suite, run at 1
    /// and 8 threads: after any concurrent barrage of faults, a healed
    /// feed (successes only) re-closes the breaker within the bound
    /// implied by its thresholds.
    #[test]
    fn recloses_after_concurrent_faults_at_1_and_8_threads() {
        for threads in [1usize, 8] {
            let b = Arc::new(CircuitBreaker::new(cfg()));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let b = Arc::clone(&b);
                    scope.spawn(move || {
                        for _ in 0..200 {
                            if b.admit() {
                                b.record_fault();
                            }
                        }
                    });
                }
            });
            // Heal: cooldown + probes healthy calls suffice.
            let bound = cfg().cooldown_rejections + cfg().half_open_successes + 1;
            for _ in 0..bound {
                if b.state() == BreakerState::Closed {
                    break;
                }
                if b.admit() {
                    b.record_success();
                }
            }
            assert_eq!(b.state(), BreakerState::Closed, "wedged at {threads} threads");
        }
    }

    /// Concurrent mixed traffic never panics, never wedges, and the
    /// state stays a legal member of the machine; afterwards the
    /// breaker still follows exact sequential semantics.
    #[test]
    fn concurrent_mixed_traffic_keeps_exact_sequential_semantics_after() {
        let b = Arc::new(CircuitBreaker::new(cfg()));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let b = Arc::clone(&b);
                scope.spawn(move || {
                    for i in 0..500usize {
                        if b.admit() {
                            if (i + t) % 3 == 0 {
                                b.record_fault();
                            } else {
                                b.record_success();
                            }
                        }
                    }
                });
            }
        });
        // Drive to Closed, then replay the sequential unit trajectory.
        let bound = cfg().cooldown_rejections + cfg().half_open_successes + 1;
        for _ in 0..2 * bound {
            if b.state() == BreakerState::Closed {
                break;
            }
            if b.admit() {
                b.record_success();
            }
        }
        b.record_success(); // clear any partial fault run
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..3 {
            assert!(b.admit());
            b.record_fault();
        }
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..4 {
            assert!(!b.admit());
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
