//! GNNExplainer (Ying et al., NeurIPS 2019) — paper Section VII-D,
//! Fig. 10.
//!
//! Learns a soft mask over the edges of the target event's k-hop
//! subgraph that keeps the model's prediction while being sparse and
//! near-binary: minimise
//! `-log p(class | masked graph) + λ₁·Σσ(θ) + λ₂·Σ H(σ(θ))`.
//! The masked forward replaces the neighbour mean with the
//! mask-weighted mean `Σ m_e h_u / (Σ m_e + ε)` (the root term is
//! unmasked — the node itself is always present), whose mask gradient
//! is `⟨∂L/∂agg_v, (h_u − agg_v)⟩ / (Σ m_e + ε)`.

use trail_linalg::Matrix;

use crate::sage::SageModel;
use crate::sampler::Subgraph;

/// Explainer hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExplainerConfig {
    /// Gradient-descent steps.
    pub steps: usize,
    /// Learning rate on the mask logits.
    pub lr: f32,
    /// Sparsity penalty (λ₁).
    pub sparsity: f32,
    /// Mask-entropy penalty (λ₂).
    pub entropy: f32,
}

impl Default for ExplainerConfig {
    fn default() -> Self {
        Self { steps: 120, lr: 0.1, sparsity: 0.02, entropy: 0.05 }
    }
}

/// An explanation: per-edge importances and derived node importances.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Importance per subgraph edge, in `sub.edges` order, in `[0,1]`.
    pub edge_importance: Vec<f32>,
    /// Importance per local node (sum of incident edge importances).
    pub node_importance: Vec<f32>,
    /// The model's probability for the explained class on the fully
    /// masked-in subgraph (sanity anchor).
    pub base_probability: f32,
}

impl Explanation {
    /// Local indices of the top-k most important nodes (excluding the
    /// target itself).
    pub fn top_nodes(&self, target_local: usize, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.node_importance.len())
            .filter(|&i| i != target_local)
            .collect();
        order.sort_by(|&a, &b| {
            self.node_importance[b]
                .partial_cmp(&self.node_importance[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(k);
        order
    }
}

/// Run GNNExplainer for `target_local`'s prediction of `class`.
///
/// `x_sub` holds the features of the subgraph's nodes (local order).
pub fn explain(
    model: &SageModel,
    sub: &Subgraph,
    x_sub: &Matrix,
    target_local: usize,
    class: usize,
    cfg: &ExplainerConfig,
) -> Explanation {
    assert_eq!(x_sub.rows(), sub.len());
    let n_edges = sub.edges.len();
    // Mask logits start around sigmoid(2) ~ 0.88 with a deterministic
    // per-edge jitter to break symmetry.
    let mut theta: Vec<f32> =
        (0..n_edges).map(|e| 2.0 + 0.01 * ((e * 2654435761) % 100) as f32 / 100.0).collect();

    let base_probability = {
        let mask = vec![1.0f32; n_edges];
        let (proba, _) = masked_forward(model, sub, x_sub, &mask);
        proba[(target_local, class)]
    };

    let mut m_adam = vec![(0.0f32, 0.0f32); n_edges];
    for step in 1..=cfg.steps {
        let mask: Vec<f32> = theta.iter().map(|&t| sigmoid(t)).collect();
        let (proba, caches) = masked_forward(model, sub, x_sub, &mask);
        // d(-log p_class)/d logits = softmax - onehot, on the target row.
        let mut d_logits = Matrix::zeros(sub.len(), proba.cols());
        for c in 0..proba.cols() {
            d_logits[(target_local, c)] =
                proba[(target_local, c)] - if c == class { 1.0 } else { 0.0 };
        }
        let mut g_mask = vec![0.0f32; n_edges];
        masked_backward(model, sub, &caches, &mask, &d_logits, &mut g_mask);
        // Regularisers.
        for e in 0..n_edges {
            let m = mask[e];
            let mut g = g_mask[e] + cfg.sparsity;
            // d/dm of H(m) = -ln(m/(1-m)).
            if m > 1e-6 && m < 1.0 - 1e-6 {
                g += cfg.entropy * (-(m / (1.0 - m)).ln());
            }
            // Chain through the sigmoid.
            let g_theta = g * m * (1.0 - m);
            // Adam-lite per-edge update.
            let (ref mut mom, ref mut vel) = m_adam[e];
            *mom = 0.9 * *mom + 0.1 * g_theta;
            *vel = 0.999 * *vel + 0.001 * g_theta * g_theta;
            let mh = *mom / (1.0 - 0.9f32.powi(step as i32));
            let vh = *vel / (1.0 - 0.999f32.powi(step as i32));
            theta[e] -= cfg.lr * mh / (vh.sqrt() + 1e-8);
        }
    }
    let edge_importance: Vec<f32> = theta.iter().map(|&t| sigmoid(t)).collect();
    let mut node_importance = vec![0.0f32; sub.len()];
    for (e, &(a, b)) in sub.edges.iter().enumerate() {
        node_importance[a] += edge_importance[e];
        node_importance[b] += edge_importance[e];
    }
    Explanation { edge_importance, node_importance, base_probability }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

struct LayerCache {
    input: Matrix,
    agg: Matrix,
    denom: Vec<f32>,
    relu_mask: Vec<bool>,
    post_norm: Matrix,
    norms: Vec<f32>,
}

/// Forward pass on the subgraph with mask-weighted aggregation.
/// Returns the softmax probabilities and the per-layer caches.
fn masked_forward(
    model: &SageModel,
    sub: &Subgraph,
    x_sub: &Matrix,
    mask: &[f32],
) -> (Matrix, Vec<LayerCache>) {
    let weights = model.weights();
    let mut h = x_sub.clone();
    let mut caches = Vec::with_capacity(weights.len());
    for (l, (w_root, w_nbr, b)) in weights.iter().enumerate() {
        let (agg, denom) = masked_aggregate(sub, &h, mask);
        let mut y = h.matmul(w_root).expect("root shape");
        y.add_assign(&agg.matmul(w_nbr).expect("nbr shape")).expect("same shape");
        y.add_row_broadcast(b.as_slice()).expect("bias");
        let mut relu_mask = Vec::new();
        let mut norms = Vec::new();
        if model.layer_is_hidden(l) {
            relu_mask = y.as_slice().iter().map(|&v| v > 0.0).collect();
            y.map_inplace(|v| v.max(0.0));
        }
        if model.layer_is_normalised(l) {
            let cols = y.cols();
            for row in y.as_mut_slice().chunks_exact_mut(cols) {
                let n = trail_linalg::vector::norm2(row).max(1e-12);
                for v in row.iter_mut() {
                    *v /= n;
                }
                norms.push(n);
            }
        }
        caches.push(LayerCache {
            input: h.clone(),
            agg,
            denom,
            relu_mask,
            post_norm: y.clone(),
            norms,
        });
        h = y;
    }
    let mut proba = h;
    let k = proba.cols();
    for row in proba.as_mut_slice().chunks_exact_mut(k) {
        trail_linalg::vector::softmax_inplace(row);
    }
    (proba, caches)
}

/// Mask-weighted neighbour-mean aggregation: `Σ m_e h_u / (Σ m_e + ε)`.
fn masked_aggregate(sub: &Subgraph, h: &Matrix, mask: &[f32]) -> (Matrix, Vec<f32>) {
    let d = h.cols();
    let mut out = Matrix::zeros(sub.len(), d);
    let mut denoms = Vec::with_capacity(sub.len());
    for v in 0..sub.len() {
        let mut denom = 1e-6f32;
        let acc = out.row_mut(v);
        for &(u, e) in &sub.adj[v] {
            let m = mask[e];
            denom += m;
            for (a, &x) in acc.iter_mut().zip(h.row(u)) {
                *a += m * x;
            }
        }
        for a in acc.iter_mut() {
            *a /= denom;
        }
        denoms.push(denom);
    }
    (out, denoms)
}

/// Backward through the masked layers, accumulating exact mask
/// gradients (needs the live mask for the neighbour-feature flow).
fn masked_backward(
    model: &SageModel,
    sub: &Subgraph,
    caches: &[LayerCache],
    mask: &[f32],
    d_logits: &Matrix,
    g_mask: &mut [f32],
) {
    let weights = model.weights();
    let mut d_out = d_logits.clone();
    for l in (0..weights.len()).rev() {
        let cache = &caches[l];
        let (w_root, w_nbr, _) = &weights[l];
        let mut d_pre = d_out.clone();
        if model.layer_is_normalised(l) {
            let cols = d_pre.cols();
            for (r, norm) in cache.norms.iter().enumerate() {
                let dot = trail_linalg::vector::dot(d_pre.row(r), cache.post_norm.row(r));
                let y_row: Vec<f32> = cache.post_norm.row(r).to_vec();
                let d_row = d_pre.row_mut(r);
                for c in 0..cols {
                    d_row[c] = (d_row[c] - y_row[c] * dot) / norm;
                }
            }
        }
        if model.layer_is_hidden(l) {
            for (g, &keep) in d_pre.as_mut_slice().iter_mut().zip(&cache.relu_mask) {
                if !keep {
                    *g = 0.0;
                }
            }
        }
        let d_agg = d_pre.matmul_t(w_nbr).expect("d_agg");
        let mut d_h = d_pre.matmul_t(w_root).expect("d_h root");
        for v in 0..sub.len() {
            let denom = cache.denom[v];
            let src = d_agg.row(v);
            for &(u, e) in &sub.adj[v] {
                let mut dot = 0.0f32;
                for ((&g, &hu), &av) in src.iter().zip(cache.input.row(u)).zip(cache.agg.row(v)) {
                    dot += g * (hu - av);
                }
                g_mask[e] += dot / denom;
                let scale = mask[e] / denom;
                let dst = d_h.row_mut(u);
                for (o, &g) in dst.iter_mut().zip(src) {
                    *o += scale * g;
                }
            }
        }
        d_out = d_h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sage::SageConfig;
    use rand::{rngs::StdRng, SeedableRng};
    use trail_graph::{Csr, EdgeKind, GraphStore, NodeKind};

    /// Event with two IOC neighbours: one carries the class-0 signal,
    /// one pushes class 1. A hand-built one-layer model with known
    /// weights makes the ground-truth edge ranking unambiguous:
    /// `logit_c = agg[c] * 4`, signal node = [1,0], noise node = [0,1].
    fn setup() -> (SageModel, Subgraph, Matrix, usize) {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let signal = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let noise = g.upsert_node(NodeKind::Ip, "2.2.2.2");
        g.add_edge(e, signal, EdgeKind::InReport).unwrap();
        g.add_edge(e, noise, EdgeKind::InReport).unwrap();
        let csr = Csr::from_store(&g);

        // Features: event = [0,0], signal = [1,0], noise = [0,1].
        let x = Matrix::from_vec(3, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SageConfig::new(2, 8, 1, 2);
        let mut model = crate::sage::SageModel::new(&mut rng, cfg);
        let w_nbr = Matrix::from_vec(2, 2, vec![4.0, 0.0, 0.0, 4.0]).unwrap();
        model.set_layer_weights(0, Matrix::zeros(2, 2), w_nbr, Matrix::zeros(1, 2));

        let mut rng2 = StdRng::seed_from_u64(6);
        let sub = crate::sampler::sample_k_hop(&mut rng2, &csr, &[trail_graph::NodeId(0)], 2, 0);
        let x_sub = x.gather_rows(&sub.nodes.iter().map(|n| n.index()).collect::<Vec<_>>());
        let target_local = sub.local_of[&trail_graph::NodeId(0)];
        (model, sub, x_sub, target_local)
    }

    #[test]
    fn importances_are_probabilities() {
        let (model, sub, x_sub, target) = setup();
        let expl = explain(&model, &sub, &x_sub, target, 0, &ExplainerConfig::default());
        assert_eq!(expl.edge_importance.len(), sub.edges.len());
        assert!(expl.edge_importance.iter().all(|&m| (0.0..=1.0).contains(&m)));
        // With all edges on, the two classes balance out exactly.
        assert!((expl.base_probability - 0.5).abs() < 1e-4);
    }

    #[test]
    fn signal_edge_outranks_noise_edge() {
        let (model, sub, x_sub, target) = setup();
        let expl = explain(&model, &sub, &x_sub, target, 0, &ExplainerConfig::default());
        // Find local indices of the two IPs.
        let signal_local = sub.local_of[&trail_graph::NodeId(1)];
        let noise_local = sub.local_of[&trail_graph::NodeId(2)];
        assert!(
            expl.node_importance[signal_local] >= expl.node_importance[noise_local],
            "signal {} vs noise {}",
            expl.node_importance[signal_local],
            expl.node_importance[noise_local]
        );
        let top = expl.top_nodes(target, 1);
        assert_eq!(top[0], signal_local);
    }

    #[test]
    fn sparsity_pressure_lowers_mean_mask() {
        let (model, sub, x_sub, target) = setup();
        let lax = explain(
            &model,
            &sub,
            &x_sub,
            target,
            0,
            &ExplainerConfig { sparsity: 0.0, entropy: 0.0, ..Default::default() },
        );
        let tight = explain(
            &model,
            &sub,
            &x_sub,
            target,
            0,
            &ExplainerConfig { sparsity: 1.0, entropy: 0.0, ..Default::default() },
        );
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(mean(&tight.edge_importance) < mean(&lax.edge_importance));
    }
}
