//! IP address IOCs: a from-scratch IPv4 parser plus IPv6 validation.

use serde::{Deserialize, Serialize};

use crate::defang::refang;
use crate::{IocError, Result};

/// A validated IP-address IOC in canonical text form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IpIoc {
    /// Canonical text (dotted quad for v4, lowercased compressed for v6).
    pub text: String,
    /// True for IPv6.
    pub v6: bool,
}

impl IpIoc {
    /// Parse (possibly defanged) text as an IP address.
    pub fn parse(raw: &str) -> Result<Self> {
        let s = refang(raw);
        if let Some(octets) = parse_ipv4(&s) {
            return Ok(Self {
                text: format!("{}.{}.{}.{}", octets[0], octets[1], octets[2], octets[3]),
                v6: false,
            });
        }
        if s.contains(':') {
            if let Ok(v6) = s.parse::<std::net::Ipv6Addr>() {
                return Ok(Self { text: v6.to_string(), v6: true });
            }
        }
        Err(IocError::invalid("ip", raw, "not an IPv4/IPv6 address"))
    }

    /// The four octets of an IPv4 address, if this is one.
    pub fn v4_octets(&self) -> Option<[u8; 4]> {
        if self.v6 {
            None
        } else {
            parse_ipv4(&self.text)
        }
    }

    /// True if the address sits in a private / reserved range
    /// (10/8, 172.16/12, 192.168/16, 127/8, 0/8, 169.254/16).
    /// Reports sometimes leak internal addresses; the pipeline drops them.
    pub fn is_reserved(&self) -> bool {
        match self.v4_octets() {
            Some([10, ..]) | Some([127, ..]) | Some([0, ..]) => true,
            Some([172, b, ..]) if (16..=31).contains(&b) => true,
            Some([192, 168, ..]) | Some([169, 254, ..]) => true,
            Some(_) => false,
            None => self.text == "::1" || self.text.starts_with("fe80") || self.text.starts_with("fc") || self.text.starts_with("fd"),
        }
    }
}

impl std::fmt::Display for IpIoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Strict dotted-quad parser: four decimal octets 0–255, no leading
/// zeros (to avoid octal ambiguity), no surrounding junk.
fn parse_ipv4(s: &str) -> Option<[u8; 4]> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for slot in &mut octets {
        let part = parts.next()?;
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        if part.len() > 1 && part.starts_with('0') {
            return None;
        }
        *slot = part.parse::<u16>().ok().filter(|&v| v <= 255)? as u8;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(octets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_defanged() {
        assert_eq!(IpIoc::parse("198.51.100.7").unwrap().text, "198.51.100.7");
        assert_eq!(IpIoc::parse("1.0.36[.]127").unwrap().text, "1.0.36.127");
    }

    #[test]
    fn rejects_out_of_range_and_junk() {
        for bad in ["256.1.1.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.04", "", "1.2.3.4 x"] {
            assert!(IpIoc::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_ipv6() {
        let ip = IpIoc::parse("2001:db8::1").unwrap();
        assert!(ip.v6);
        assert_eq!(ip.text, "2001:db8::1");
        assert!(IpIoc::parse("::1").unwrap().is_reserved());
    }

    #[test]
    fn reserved_ranges() {
        for r in ["10.0.0.1", "127.0.0.1", "172.16.9.9", "172.31.1.1", "192.168.1.1", "169.254.0.1"] {
            assert!(IpIoc::parse(r).unwrap().is_reserved(), "{r}");
        }
        for p in ["8.8.8.8", "172.32.0.1", "193.168.1.1"] {
            assert!(!IpIoc::parse(p).unwrap().is_reserved(), "{p}");
        }
    }

    #[test]
    fn octets_roundtrip() {
        assert_eq!(IpIoc::parse("1.2.3.4").unwrap().v4_octets(), Some([1, 2, 3, 4]));
        assert_eq!(IpIoc::parse("2001:db8::1").unwrap().v4_octets(), None);
    }
}
