//! Case study: attribute a fresh, never-seen incident report — the
//! paper's Section VII-C walkthrough (an APT38 phishing campaign).
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

use std::sync::Arc;

use trail::attribute::GnnEvalConfig;
use trail::longitudinal::{case_study, StudyConfig};
use trail::system::TrailSystem;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{OsintClient, World, WorldConfig};

fn main() {
    let mut config = WorldConfig::default().scaled(0.25);
    config.seed = 42;
    let world = Arc::new(World::generate(config));
    let client = OsintClient::new(world);
    let cutoff = client.world().config.cutoff_day;
    let system = TrailSystem::build(client, cutoff);
    println!(
        "base TKG: {} events / {} nodes (built at day {cutoff})",
        system.tkg.events.len(),
        system.tkg.graph.node_count()
    );

    let cfg = StudyConfig {
        months: 1,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 48,
            train: trail_gnn::TrainConfig { lr: 2e-2, epochs: 150, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: false,
            label_visible_fraction: 0.7,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 128, code: 48, epochs: 3, ..Default::default() },
        fine_tune: trail_gnn::FineTune::default(),
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let Some(cs) = case_study(&mut rng, system, &cfg, "APT38") else {
        println!("no post-cutoff event available");
        return;
    };

    println!("\n--- fresh report {} ---", cs.report_id);
    println!("ground truth:              {}", cs.true_apt);
    println!("IOCs listed in the report: {}", cs.reported_iocs);
    println!("IOCs after 2-hop enrich:   {}", cs.neighborhood_iocs);
    println!("attributed events @2 hops: {}", cs.events_2hop);
    println!("attributed events @3 hops: {}", cs.events_3hop);
    println!(
        "label propagation verdict:  {}",
        cs.lp_prediction.as_deref().unwrap_or("unattributed (no path to labelled events)")
    );
    println!(
        "GNN, neighbours masked:     {} ({:.0}% confidence)",
        cs.gnn_masked.0,
        100.0 * cs.gnn_masked.1
    );
    println!(
        "GNN, neighbours visible:    {} ({:.0}% confidence)",
        cs.gnn_visible.0,
        100.0 * cs.gnn_visible.1
    );
    println!(
        "\npaper observation 3: IOCs viewed as a group in the knowledge graph\n\
         describe APT behaviour well enough to be used for attribution."
    );
}
