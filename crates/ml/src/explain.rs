//! Model explanations (paper Section VII-D, Fig. 9).
//!
//! The paper uses SHAP beeswarm plots over its XGB URL classifier. We
//! provide the same artefact via two complementary techniques:
//!
//! * **Additive path decompositions** (Saabas): for trees we walk each
//!   prediction path and attribute the change in node value across every
//!   split to the split feature. For a single tree this is the exact
//!   quantity TreeSHAP approximates on balanced data; summed over an
//!   ensemble it yields per-sample, per-feature signed contributions —
//!   exactly what a beeswarm plots.
//! * **Permutation importance**: model-agnostic global importances used
//!   to sanity-check the decomposition ranking.

use rand::seq::SliceRandom;
use rand::Rng;
use trail_linalg::Matrix;

use crate::forest::RandomForest;
use crate::gbt::GradientBoostedTrees;
use crate::metrics::accuracy;
use crate::tree::{DecisionTree, Node};
use crate::Classifier;

/// One beeswarm point: a sample's value of a feature and that feature's
/// signed contribution to the explained class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeeswarmPoint {
    /// Feature index.
    pub feature: usize,
    /// Raw feature value of the sample.
    pub value: f32,
    /// Signed contribution to the class score.
    pub contribution: f32,
}

/// Beeswarm data for one class: the top-k features by mean absolute
/// contribution, with every sample's point for each.
#[derive(Debug, Clone)]
pub struct Beeswarm {
    /// Explained class.
    pub class: usize,
    /// `(feature index, mean |contribution|)`, descending.
    pub top_features: Vec<(usize, f32)>,
    /// All points, grouped feature-major in `top_features` order.
    pub points: Vec<BeeswarmPoint>,
}

/// Per-feature contributions of a single CART tree to `class`'s
/// probability for one row. Returns `(bias, contributions)`.
pub fn tree_contributions(tree: &DecisionTree, row: &[f32], class: usize) -> (f32, Vec<f32>) {
    let mut contrib = vec![0.0f32; row.len()];
    let path = tree.decision_path(row);
    let nodes = tree.nodes();
    let bias = nodes[path[0]].proba()[class];
    let mut current = bias;
    for window in path.windows(2) {
        let (parent, child) = (window[0], window[1]);
        if let Node::Split { feature, .. } = &nodes[parent] {
            let next = nodes[child].proba()[class];
            contrib[*feature as usize] += next - current;
            current = next;
        }
    }
    (bias, contrib)
}

/// Forest-averaged contributions for one row and class.
pub fn forest_contributions(forest: &RandomForest, row: &[f32], class: usize) -> (f32, Vec<f32>) {
    let trees = forest.trees();
    let mut total = vec![0.0f32; row.len()];
    let mut bias = 0.0f32;
    for tree in trees {
        let (b, c) = tree_contributions(tree, row, class);
        bias += b;
        for (t, v) in total.iter_mut().zip(c) {
            *t += v;
        }
    }
    let k = 1.0 / trees.len().max(1) as f32;
    bias *= k;
    for t in &mut total {
        *t *= k;
    }
    (bias, total)
}

/// Build beeswarm data for `class` from GBT margin contributions over
/// the sample rows of `x`.
pub fn gbt_beeswarm(gbt: &GradientBoostedTrees, x: &Matrix, class: usize, top_k: usize) -> Beeswarm {
    let n_features = x.cols();
    let mut mean_abs = vec![0.0f32; n_features];
    let mut all: Vec<Vec<f32>> = Vec::with_capacity(x.rows());
    for row in x.rows_iter() {
        let (_, c) = gbt.margin_contributions(row, class);
        for (m, &v) in mean_abs.iter_mut().zip(&c) {
            *m += v.abs();
        }
        all.push(c);
    }
    let n = x.rows().max(1) as f32;
    for m in &mut mean_abs {
        *m /= n;
    }
    let mut ranked: Vec<(usize, f32)> = mean_abs.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked.truncate(top_k);
    let mut points = Vec::with_capacity(ranked.len() * x.rows());
    for &(f, _) in &ranked {
        for (r, contribs) in all.iter().enumerate() {
            points.push(BeeswarmPoint { feature: f, value: x[(r, f)], contribution: contribs[f] });
        }
    }
    Beeswarm { class, top_features: ranked, points }
}

/// Permutation importance: accuracy drop when each feature column is
/// shuffled. Only features in `candidates` are tested (pass all columns
/// for small models; a subset keeps wide encoders tractable).
pub fn permutation_importance<C: Classifier, R: Rng + ?Sized>(
    rng: &mut R,
    model: &C,
    x: &Matrix,
    y: &[u16],
    candidates: &[usize],
) -> Vec<(usize, f64)> {
    let baseline = accuracy(y, &model.predict(x));
    let mut out = Vec::with_capacity(candidates.len());
    for &f in candidates {
        let mut xp = x.clone();
        // Shuffle column f across rows.
        let mut col: Vec<f32> = (0..x.rows()).map(|r| x[(r, f)]).collect();
        col.shuffle(rng);
        for (r, v) in col.into_iter().enumerate() {
            xp[(r, f)] = v;
        }
        let dropped = accuracy(y, &model.predict(&xp));
        out.push((f, baseline - dropped));
    }
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::ForestConfig;
    use crate::gbt::GbtConfig;
    use crate::tree::TreeConfig;
    use rand::{rngs::StdRng, SeedableRng};

    /// Class depends only on feature 0; feature 1 is noise.
    fn one_informative(n: usize) -> (Matrix, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(21);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            rows.extend_from_slice(&[a, b]);
            y.push((a > 0.0) as u16);
        }
        (Matrix::from_vec(n, 2, rows).unwrap(), y)
    }

    #[test]
    fn tree_contributions_sum_to_leaf_probability() {
        let (x, y) = one_informative(100);
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let tree = DecisionTree::fit(&mut rng, &x, &y, &idx, 2, &TreeConfig::default());
        for r in 0..5 {
            let row = x.row(r);
            let (bias, contrib) = tree_contributions(&tree, row, 1);
            let total = bias + contrib.iter().sum::<f32>();
            let leaf = tree.predict_proba_row(row)[1];
            assert!((total - leaf).abs() < 1e-5);
        }
    }

    #[test]
    fn informative_feature_dominates_tree_explanations() {
        let (x, y) = one_informative(200);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = ForestConfig { n_trees: 10, ..Default::default() };
        let rf = RandomForest::fit(&mut rng, &x, &y, 2, &cfg);
        let mut mass = [0.0f32; 2];
        for r in 0..x.rows() {
            let (_, c) = forest_contributions(&rf, x.row(r), 1);
            mass[0] += c[0].abs();
            mass[1] += c[1].abs();
        }
        assert!(mass[0] > mass[1] * 3.0, "{mass:?}");
    }

    #[test]
    fn gbt_contributions_reconstruct_margin() {
        let (x, y) = one_informative(150);
        let mut rng = StdRng::seed_from_u64(3);
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 2, &GbtConfig { n_rounds: 8, ..Default::default() });
        for r in 0..5 {
            let row = x.row(r);
            let (bias, contrib) = gbt.margin_contributions(row, 1);
            let total = bias + contrib.iter().sum::<f32>();
            let margin = gbt.margins_row(row)[1];
            assert!((total - margin).abs() < 1e-3, "{total} vs {margin}");
        }
    }

    #[test]
    fn beeswarm_ranks_informative_feature_first() {
        let (x, y) = one_informative(150);
        let mut rng = StdRng::seed_from_u64(4);
        let gbt = GradientBoostedTrees::fit(&mut rng, &x, &y, 2, &GbtConfig { n_rounds: 8, ..Default::default() });
        let bs = gbt_beeswarm(&gbt, &x, 1, 2);
        assert_eq!(bs.top_features[0].0, 0);
        assert_eq!(bs.points.len(), 2 * x.rows());
        // Positive feature values push toward class 1.
        let pos_corr: f32 = bs
            .points
            .iter()
            .filter(|p| p.feature == 0)
            .map(|p| p.value.signum() * p.contribution.signum())
            .sum();
        assert!(pos_corr > 0.0);
    }

    #[test]
    fn permutation_importance_finds_informative_feature() {
        let (x, y) = one_informative(200);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = ForestConfig { n_trees: 10, ..Default::default() };
        let rf = RandomForest::fit(&mut rng, &x, &y, 2, &cfg);
        let imp = permutation_importance(&mut rng, &rf, &x, &y, &[0, 1]);
        assert_eq!(imp[0].0, 0);
        assert!(imp[0].1 > 0.2, "{imp:?}");
        assert!(imp[1].1.abs() < 0.1, "{imp:?}");
    }
}
