#!/usr/bin/env bash
# Tier-1 verification gate: everything a PR must keep green.
# Run from the repository root.
#
#   scripts/verify.sh            tier-1 gate
#   scripts/verify.sh --chaos    tier-1 gate + deterministic chaos tier
#
# The chaos tier replays the seeded fault drills of tests/chaos_test.rs
# (fixed seeds 1, 4 and 6: survivable feed with mid-study kills, fully
# dead feed, snapshot corruption) and smoke-checks that `repro --resume`
# rejects a corrupted checkpoint cleanly instead of loading it.
set -euo pipefail
cd "$(dirname "$0")/.."

run_chaos=0
for arg in "$@"; do
  case "$arg" in
    --chaos) run_chaos=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== tests (ignored tier: overhead budget + large-scale reconciliation) =="
cargo test -q --workspace -- --include-ignored

echo "== quickstart smoke =="
cargo run --release --example quickstart >/dev/null

if cargo clippy --version >/dev/null 2>&1; then
  echo "== clippy =="
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== clippy == (component unavailable on this toolchain; skipped)"
fi

if cargo fmt --version >/dev/null 2>&1; then
  echo "== rustfmt =="
  cargo fmt --all -- --check
else
  echo "== rustfmt == (component unavailable on this toolchain; skipped)"
fi

if [ "$run_chaos" -eq 1 ]; then
  echo "== chaos tier: seeded fault drills (seeds 1, 4, 6) =="
  cargo test -q --test chaos_test

  echo "== chaos tier: corrupted-snapshot resume smoke =="
  smoke_dir="$(mktemp -d)"
  trap 'rm -rf "$smoke_dir"' EXIT
  printf 'TSC1 this is not a valid checkpoint payload' > "$smoke_dir/study.ckpt"
  set +e
  smoke_out="$(cargo run --release -p trail-bench --bin repro -- fig8 --quick --scale 0.05 \
    --resume "$smoke_dir" 2>&1)"
  smoke_status=$?
  set -e
  if [ "$smoke_status" -eq 0 ]; then
    echo "FAIL: repro --resume accepted a corrupted checkpoint" >&2
    exit 1
  fi
  if printf '%s' "$smoke_out" | grep -q 'panicked'; then
    echo "FAIL: corrupted checkpoint caused a panic instead of a typed error" >&2
    printf '%s\n' "$smoke_out" >&2
    exit 1
  fi
  echo "corrupted checkpoint rejected cleanly (exit $smoke_status)"
fi

echo "tier-1 gate: OK"
