//! `repro` — regenerate every table and figure of the TRAIL paper.
//!
//! ```text
//! repro <experiment> [--scale S] [--seed N] [--folds K] [--faults P]
//!       [--resume DIR] [--chaos SEED] [--incremental] [--quick] [--trace]
//!
//! experiments:
//!   table2  table3  table4  fig3  fig4  fig7  fig8  fig9  fig10
//!   sec5    case    chaos   quant   serve-bench   stream-bench
//!   scale-bench   all
//! ```
//!
//! `scale-bench` exercises the paper-scale ingest path: one world is
//! ingested sequentially and then shard-parallel (8 hash shards) at
//! 1/2/8 worker threads; each sharded build must be bitwise-identical
//! to the sequential reference with an exactly-equal ingest taxonomy.
//! It also audits the compact u32 CSR against a pointer-width
//! reference layout and reports adjacency bytes/node. Results land in
//! `BENCH_scale.json` plus a `[scale-summary]` line consumed by
//! `verify.sh --perf`; the run exits non-zero if any equality
//! invariant breaks (see DESIGN.md §15).
//!
//! `--sampled CAP` switches GNN training to the opt-in neighbor-
//! sampled mini-batch path (capped k-hop subgraph of the supervised
//! events, CAP=0 for hop-limited but uncapped). Prediction always
//! runs on the full graph; accuracy is epsilon-close to the exact
//! protocol, not bitwise-identical.
//!
//! `quant` (or `--quant`) trains one Table-IV fold and compares f32
//! inference against the i8-quantized forward path: max-abs logit
//! error, argmax agreement and test accuracy on the held-out events,
//! and min-of-N per-forward wall clock, all recorded under the `quant`
//! taxonomy in `BENCH_repro.json`.
//!
//! `serve-bench` trains on every event, freezes the stack into a TSB1
//! `ServeBundle`, and replays a seeded query mix at several worker-pool
//! widths through the read-only serving runtime: p50/p99 latency and
//! throughput per level land in `BENCH_serve.json`, and the run exits
//! non-zero if rankings differ across concurrency levels or the
//! request counters fail to reconcile (see DESIGN.md §12).
//!
//! `stream-bench` pushes every post-cutoff report through the
//! streaming runtime one event at a time with roughly-monthly ticks,
//! contrasts the amortized per-event cost against a full input rebuild
//! per event, and re-runs the stream in micro-batches of 64 to check
//! the two executions land on bitwise-identical TKG and model
//! fingerprints. It also measures the TWL1 write-ahead-log append
//! cost per fsync policy and proves the log scans back equal
//! (`[wal-summary]`, gated on `recovered_equal`). The run report
//! lands in `BENCH_stream.json`; the run exits non-zero on
//! divergence, a ledger that fails to reconcile, or a recovery
//! mismatch (see DESIGN.md §13–14).
//!
//! `--trace` pretty-prints the hierarchical span tree (plus counters
//! and histograms) collected by `trail-obs` after the run. `--quick`
//! also switches stage reporting to machine-parseable `[stage]` lines
//! and suppresses the free-form setup banners.
//!
//! `fig7` and `fig8` share one longitudinal run (`fig7` is the first
//! month's confusion matrix of the same study). With `--incremental`
//! the study's per-window inputs come from the cached path (CSR
//! delta-merge, per-node code cache, one reusable input matrix) —
//! same figures bit for bit, cheaper window preparation; per-window
//! prep/total seconds land in `BENCH_repro.json` either way. With
//! `--resume DIR` they run the crash-safe study instead: a checkpoint
//! is written to DIR after every window, and an existing checkpoint
//! there resumes the run — the output is bitwise-identical to an
//! uninterrupted run.
//!
//! `--chaos SEED` (or the `chaos` experiment) runs the deterministic
//! fault drill: a seeded plan injects transient faults and analysis
//! gaps, arms the OSINT circuit breaker, kills the study at the plan's
//! window boundaries, resumes it, and verifies checkpoint corruption
//! is rejected. It then drills the durability layer: the WAL is cut
//! at the plan's byte offsets (mid-append, mid-rotation) and recovery
//! must replay the durable prefix bitwise; a flipped byte in a sealed
//! segment must surface as a typed error; a half-written re-frozen
//! bundle must be refused while the survivor still loads; and two
//! bundle hot-swaps under concurrent traffic must keep the serve
//! counter tree reconciling exactly. Exits non-zero if any invariant
//! fails.
//!
//! Every run also writes `BENCH_repro.json` into the working
//! directory: per-stage wall-clock seconds plus run metadata (thread
//! count, scale, graph size), for mechanical perf comparison across
//! commits.

use trail_bench::{BenchRecorder, RunOptions};

/// Every allocation in the run bumps a relaxed counter (one atomic
/// add over the system allocator — noise-level overhead), so the
/// `allocations` field the longitudinal study records in
/// `BENCH_repro.json` is a real measurement rather than 0.
#[global_allocator]
static ALLOC: trail_obs::alloc::CountingAllocator = trail_obs::alloc::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = String::from("all");
    let mut opts = RunOptions::default();
    let mut trace = false;
    let mut chaos_seed: Option<u64> = None;
    let mut resume_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chaos" => {
                i += 1;
                chaos_seed =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage));
                experiment = String::from("chaos");
            }
            "--resume" => {
                i += 1;
                resume_dir = Some(args.get(i).cloned().unwrap_or_else(usage));
            }
            "--scale" => {
                i += 1;
                opts.scale = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--folds" => {
                i += 1;
                opts.folds = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--faults" => {
                i += 1;
                opts.transient_fault_prob =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage);
            }
            "--sampled" => {
                i += 1;
                opts.sampled_neighbor_cap =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(usage));
            }
            "--quant" => experiment = String::from("quant"),
            "--incremental" => opts.incremental = true,
            "--quick" => opts.quick = true,
            "--trace" => trace = true,
            flag if flag.starts_with("--") => usage(),
            name => experiment = name.to_owned(),
        }
        i += 1;
    }

    let mut rec = BenchRecorder::new();
    rec.set_machine_readable(opts.quick);
    rec.set_meta("experiment", experiment.as_str());
    rec.set_meta("obs_enabled", trail_obs::enabled());
    rec.set_meta("threads", trail_linalg::pool::num_threads() as u64);
    rec.set_meta("scale", opts.scale as f64);
    rec.set_meta("seed", opts.seed);
    rec.set_meta("folds", opts.folds as u64);
    rec.set_meta("quick", opts.quick);
    rec.set_meta("faults", opts.transient_fault_prob as f64);

    // scale-bench builds the world itself (it times several competing
    // ingest paths); dispatch it before the default system build.
    if experiment == "scale-bench" || experiment == "scale" {
        let total = std::time::Instant::now();
        let ok = trail_bench::scale_bench(&opts, &mut rec);
        rec.record("total", total.elapsed().as_secs_f64());
        match rec.write_json("BENCH_repro.json") {
            Ok(()) => println!("[bench] stage timings written to BENCH_repro.json"),
            Err(e) => eprintln!("[bench] could not write BENCH_repro.json: {e}"),
        }
        if trace {
            println!("\n=== trace: span tree, counters, histograms ===");
            print!("{}", trail_obs::snapshot().render_tree());
        }
        println!("\n[done] total {:?}", total.elapsed());
        std::process::exit(if ok { 0 } else { 1 });
    }

    // The chaos drill builds its own fault-injected world; dispatch it
    // before the default (fault-free) system build.
    if experiment == "chaos" {
        let total = std::time::Instant::now();
        let ok = trail_bench::chaos(&opts, chaos_seed.unwrap_or(opts.seed), &mut rec);
        rec.record("total", total.elapsed().as_secs_f64());
        match rec.write_json("BENCH_repro.json") {
            Ok(()) => println!("[bench] stage timings written to BENCH_repro.json"),
            Err(e) => eprintln!("[bench] could not write BENCH_repro.json: {e}"),
        }
        if trace {
            println!("\n=== trace: span tree, counters, histograms ===");
            print!("{}", trail_obs::snapshot().render_tree());
        }
        println!("\n[done] total {:?}", total.elapsed());
        std::process::exit(if ok { 0 } else { 1 });
    }

    let needs_embeddings =
        matches!(experiment.as_str(), "table4" | "fig10" | "ablations" | "quant" | "all");
    let total = std::time::Instant::now();
    let sys = rec.time("setup_tkg", || opts.build_system());
    rec.set_meta("events", sys.tkg.events.len() as u64);
    rec.set_meta("nodes", sys.tkg.graph.node_count() as u64);
    rec.set_meta("edges", sys.tkg.graph.edge_count() as u64);
    rec.record_taxonomy("setup_tkg", sys.ingest_stats.to_json());
    let embeddings = if needs_embeddings {
        let t = std::time::Instant::now();
        let mut rng = opts.rng();
        let (emb, _) = rec.time("autoencoders", || {
            trail::embed::train_autoencoders(&mut rng, &sys.tkg, &opts.ae_settings())
        });
        if !opts.quick {
            println!("[setup] autoencoders trained in {:?}", t.elapsed());
        }
        Some(emb)
    } else {
        None
    };

    match experiment.as_str() {
        "table2" => rec.time("table2", || trail_bench::table2(&sys)),
        "sec5" => rec.time("sec5", || trail_bench::sec5(&sys)),
        "fig3" => rec.time("fig3", || trail_bench::fig3(&sys)),
        "fig4" => rec.time("fig4", || trail_bench::fig4(&sys)),
        "table3" => rec.time("table3", || trail_bench::table3(&sys, &opts)),
        "table4" => trail_bench::table4(&sys, &opts, embeddings.as_ref().expect("built"), &mut rec),
        "fig9" => rec.time("fig9", || trail_bench::fig9(&sys, &opts)),
        "ablations" => rec.time("ablations", || {
            trail_bench::ablations(&sys, &opts, embeddings.as_ref().expect("built"))
        }),
        "fig10" => rec.time("fig10", || {
            trail_bench::fig10(&sys, &opts, embeddings.as_ref().expect("built"))
        }),
        "quant" => trail_bench::quant(&sys, &opts, embeddings.as_ref().expect("built"), &mut rec),
        "serve-bench" | "serve" => {
            let ok = trail_bench::serve_bench(&sys, &opts, &mut rec);
            rec.record("total", total.elapsed().as_secs_f64());
            match rec.write_json("BENCH_repro.json") {
                Ok(()) => println!("[bench] stage timings written to BENCH_repro.json"),
                Err(e) => eprintln!("[bench] could not write BENCH_repro.json: {e}"),
            }
            if trace {
                println!("\n=== trace: span tree, counters, histograms ===");
                print!("{}", trail_obs::snapshot().render_tree());
            }
            println!("\n[done] total {:?}", total.elapsed());
            std::process::exit(if ok { 0 } else { 1 });
        }
        "stream-bench" | "stream" => {
            let ok = trail_bench::stream_bench(sys, &opts, &mut rec);
            rec.record("total", total.elapsed().as_secs_f64());
            match rec.write_json("BENCH_repro.json") {
                Ok(()) => println!("[bench] stage timings written to BENCH_repro.json"),
                Err(e) => eprintln!("[bench] could not write BENCH_repro.json: {e}"),
            }
            if trace {
                println!("\n=== trace: span tree, counters, histograms ===");
                print!("{}", trail_obs::snapshot().render_tree());
            }
            println!("\n[done] total {:?}", total.elapsed());
            std::process::exit(if ok { 0 } else { 1 });
        }
        "fig7" | "fig8" => {
            let t = std::time::Instant::now();
            match &resume_dir {
                Some(dir) => {
                    if opts.incremental {
                        eprintln!(
                            "[study] --incremental is ignored with --resume \
                             (checkpointed runs rebuild each window)"
                        );
                    }
                    trail_bench::fig7_fig8_resumable(
                        sys.client,
                        &opts,
                        std::path::Path::new(dir),
                        &mut rec,
                    )
                }
                None => trail_bench::fig7_fig8(sys, &opts, &mut rec),
            }
            rec.record("fig7_fig8", t.elapsed().as_secs_f64());
        }
        "case" => rec.time("case", || trail_bench::case(sys, &opts)),
        "all" => {
            let emb = embeddings.as_ref().expect("built");
            rec.time("table2", || trail_bench::table2(&sys));
            rec.time("sec5", || trail_bench::sec5(&sys));
            rec.time("fig3", || trail_bench::fig3(&sys));
            rec.time("fig4", || trail_bench::fig4(&sys));
            rec.time("table3", || trail_bench::table3(&sys, &opts));
            trail_bench::table4(&sys, &opts, emb, &mut rec);
            rec.time("fig9", || trail_bench::fig9(&sys, &opts));
            rec.time("fig10", || trail_bench::fig10(&sys, &opts, emb));
            // The longitudinal experiments consume systems of their own.
            rec.time("case", || trail_bench::case(opts.build_system(), &opts));
            let t = std::time::Instant::now();
            trail_bench::fig7_fig8(opts.build_system(), &opts, &mut rec);
            rec.record("fig7_fig8", t.elapsed().as_secs_f64());
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            usage::<()>();
        }
    }
    rec.record("total", total.elapsed().as_secs_f64());
    match rec.write_json("BENCH_repro.json") {
        Ok(()) => println!("[bench] stage timings written to BENCH_repro.json"),
        Err(e) => eprintln!("[bench] could not write BENCH_repro.json: {e}"),
    }
    if trace {
        println!("\n=== trace: span tree, counters, histograms ===");
        print!("{}", trail_obs::snapshot().render_tree());
    }
    println!("\n[done] total {:?}", total.elapsed());
}

fn usage<T>() -> T {
    eprintln!(
        "usage: repro <table2|table3|table4|fig3|fig4|fig7|fig8|fig9|fig10|sec5|case|chaos|ablations|quant|serve-bench|stream-bench|scale-bench|all> \
         [--scale S] [--seed N] [--folds K] [--faults P] [--resume DIR] [--chaos SEED] [--sampled CAP] [--incremental] [--quant] [--quick] [--trace]"
    );
    std::process::exit(2);
}
