//! ML-substrate micro-benchmarks: feature encoding, SMOTE, tree
//! ensembles and the MLP on IOC-shaped data.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trail_ioc::analysis::UrlAnalysis;
use trail_ioc::features::UrlEncoder;
use trail_ioc::url::UrlIoc;
use trail_linalg::Matrix;
use trail_ml::dataset::Dataset;
use trail_ml::forest::{ForestConfig, RandomForest};
use trail_ml::gbt::{GbtConfig, GradientBoostedTrees};
use trail_ml::nn::{Mlp, MlpConfig};
use trail_ml::smote::{smote, SmoteConfig};
use trail_ml::Classifier;

/// IOC-shaped synthetic data: mostly one-hot with a weak class signal.
fn ioc_like(n: usize, dims: usize, classes: u16, seed: u64) -> (Matrix, Vec<u16>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, dims);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let class = rng.gen_range(0..classes);
        if rng.gen::<f32>() < 0.6 {
            x[(r, (class as usize * 13) % dims)] = 1.0;
        }
        for _ in 0..12 {
            let c = rng.gen_range(0..dims);
            x[(r, c)] = 1.0;
        }
        y.push(class);
    }
    (x, y)
}

fn bench_encoding(c: &mut Criterion) {
    let encoder = UrlEncoder::default();
    let url = UrlIoc::parse("http://a.b.example:8080/x/y/load.php?k=v").unwrap();
    let analysis = UrlAnalysis {
        alive: true,
        file_type: Some("text/html".into()),
        file_class: Some("html".into()),
        http_code: Some(200),
        encoding: Some("gzip".into()),
        server: Some("nginx/1.18.0".into()),
        server_os: Some("linux".into()),
        services: vec!["http".into(), "ssh".into()],
        header_flags: vec!["hsts".into()],
        resolved_ips: vec![],
    };
    c.bench_function("url_feature_encode_1517d", |b| {
        b.iter(|| std::hint::black_box(encoder.encode(&url, &analysis).len()))
    });
}

fn bench_models(c: &mut Criterion) {
    let (x, y) = ioc_like(1500, 507, 22, 3);
    let mut group = c.benchmark_group("classical_models");
    group.sample_size(10);
    group.bench_function("gbt_fit_1500x507", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let cfg = GbtConfig { n_rounds: 4, colsample: 0.2, ..Default::default() };
            std::hint::black_box(GradientBoostedTrees::fit(&mut rng, &x, &y, 22, &cfg).n_rounds())
        })
    });
    group.bench_function("forest_fit_1500x507", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let cfg = ForestConfig { n_trees: 8, ..Default::default() };
            std::hint::black_box(RandomForest::fit(&mut rng, &x, &y, 22, &cfg).n_trees())
        })
    });
    group.bench_function("mlp_fit_1500x507", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let cfg = MlpConfig { hidden: vec![64], epochs: 2, ..MlpConfig::small() };
            let mlp = Mlp::fit(&mut rng, &x, &y, 22, &cfg);
            std::hint::black_box(mlp.n_classes())
        })
    });
    group.bench_function("smote_1500x507", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let data = Dataset::new(x.clone(), y.clone(), 22);
            std::hint::black_box(smote(&mut rng, &data, SmoteConfig::default()).len())
        })
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let (x, y) = ioc_like(1500, 507, 22, 5);
    let mut rng = StdRng::seed_from_u64(1);
    let gbt = GradientBoostedTrees::fit(
        &mut rng,
        &x,
        &y,
        22,
        &GbtConfig { n_rounds: 6, colsample: 0.2, ..Default::default() },
    );
    c.bench_function("gbt_predict_1500", |b| {
        b.iter(|| std::hint::black_box(gbt.predict(&x).len()))
    });
}

criterion_group!(benches, bench_encoding, bench_models, bench_inference);
criterion_main!(benches);
