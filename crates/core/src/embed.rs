//! Autoencoder projection and GNN input assembly (paper Section VI-C).
//!
//! URLs, IPs and domains have different widths (1,517 / 507 / 115), so
//! one autoencoder per type projects them into a common 64-dim code
//! space (Eq. 5). The GNN's per-node input is then
//! `[code | node-kind one-hot | visible-label one-hot]`, implementing
//! the paper's protocol where train-fold event labels are visible
//! features and evaluation-fold labels are masked.

use rand::Rng;
use trail_graph::{NodeId, NodeKind};
use trail_ioc::IocKind;
use trail_linalg::Matrix;
use trail_ml::nn::autoencoder::{Autoencoder, AutoencoderConfig};
use trail_ml::nn::Adam;

use crate::sparse::{densify, SparseRef};
use crate::tkg::Tkg;

/// Per-node code vectors for every featured IOC node.
pub struct NodeEmbeddings {
    /// Code per graph node (zero rows for nodes without features).
    pub codes: Matrix,
    /// Code width.
    pub code_dim: usize,
}

/// Per-kind feature standardisation fitted directly on the sparse
/// store (zeros included, as densification would produce). Without
/// this, wide-range lexical columns (URL length, ages) dominate the
/// autoencoder's MSE and the codes under-represent the one-hot
/// behavioural blocks.
pub struct SparseScaler {
    means: Vec<f32>,
    inv_stds: Vec<f32>,
}

/// Running moments for [`SparseScaler`] fitting, accumulated row by
/// row. `extend`-ing stats with rows `A` and then rows `B` performs the
/// exact f64 additions of a single [`SparseScaler::fit`] over `A ++ B`,
/// so a scaler finalised from incrementally-extended stats is bitwise
/// identical to one refit from scratch — the property the incremental
/// study leans on when new nodes only ever append to the featured set.
pub struct ScalerStats {
    count: u64,
    sums: Vec<f64>,
    sumsq: Vec<f64>,
}

impl ScalerStats {
    /// Empty stats over `dims` columns.
    pub fn new(dims: usize) -> Self {
        Self { count: 0, sums: vec![0.0; dims], sumsq: vec![0.0; dims] }
    }

    /// Rows accumulated so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Accumulate featured rows in the given order.
    pub fn extend(&mut self, featured: &[(NodeId, SparseRef<'_>)]) {
        for (_, sv) in featured {
            for &(i, v) in sv.entries {
                self.sums[i as usize] += v as f64;
                self.sumsq[i as usize] += (v as f64) * (v as f64);
            }
        }
        self.count += featured.len() as u64;
    }

    /// Finalise into a scaler with [`SparseScaler::fit`]'s arithmetic.
    pub fn finalize(&self) -> SparseScaler {
        let n = self.count.max(1) as f64;
        let means: Vec<f32> = self.sums.iter().map(|&s| (s / n) as f32).collect();
        let inv_stds: Vec<f32> = self
            .sumsq
            .iter()
            .zip(&means)
            .map(|(&sq, &m)| {
                let var = (sq / n) as f32 - m * m;
                if var > 1e-8 {
                    1.0 / var.sqrt()
                } else {
                    1.0
                }
            })
            .collect();
        SparseScaler { means, inv_stds }
    }
}

impl SparseScaler {
    /// Fit over the featured rows of one kind.
    pub fn fit(featured: &[(NodeId, SparseRef<'_>)], dims: usize) -> Self {
        let mut stats = ScalerStats::new(dims);
        stats.extend(featured);
        stats.finalize()
    }

    /// Fingerprint of the fitted transform. Two scalers with the same
    /// fingerprint standardise every input identically; the code cache
    /// keys rows on it so a changed transform invalidates everything.
    pub fn fingerprint(&self) -> u64 {
        let mut b = Vec::with_capacity((self.means.len() + self.inv_stds.len()) * 4);
        for &m in &self.means {
            b.extend_from_slice(&m.to_bits().to_le_bytes());
        }
        for &s in &self.inv_stds {
            b.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        trail_graph::persist::fnv1a_bytes(&b)
    }

    /// Standardise a densified batch in place (row-parallel over the
    /// shared pool; per-row arithmetic is unchanged).
    pub fn transform_inplace(&self, x: &mut Matrix) {
        let d = x.cols();
        assert_eq!(d, self.means.len());
        let (means, inv_stds) = (&self.means, &self.inv_stds);
        trail_linalg::pool::parallel_for_rows(x.as_mut_slice(), d, 64, |_, band| {
            for row in band.chunks_exact_mut(d) {
                for ((v, &m), &is) in row.iter_mut().zip(means).zip(inv_stds) {
                    *v = (*v - m) * is;
                }
            }
        });
    }
}

/// Train the three per-type autoencoders and produce node codes.
///
/// Minibatches are densified from the sparse store, so peak memory is
/// `batch x dims` rather than `n x dims`.
pub fn train_autoencoders<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    cfg: &AutoencoderConfig,
) -> (NodeEmbeddings, Vec<Autoencoder>) {
    let (emb, encoders, _) = train_autoencoders_with_scalers(rng, tkg, cfg);
    (emb, encoders)
}

/// [`train_autoencoders`], additionally returning the per-kind scalers
/// fitted on the training snapshot. The longitudinal study freezes
/// these so later windows standardise (and therefore encode) existing
/// nodes identically, which is what lets cached code rows be reused.
pub fn train_autoencoders_with_scalers<R: Rng + ?Sized>(
    rng: &mut R,
    tkg: &Tkg,
    cfg: &AutoencoderConfig,
) -> (NodeEmbeddings, Vec<Autoencoder>, Vec<SparseScaler>) {
    let mut encoders = Vec::with_capacity(3);
    let mut scalers = Vec::with_capacity(3);
    for kind in IocKind::ALL {
        let dims = Tkg::dims_of(kind);
        let featured = tkg.featured_nodes(kind);
        let scaler = SparseScaler::fit(&featured, dims);
        let mut ae = Autoencoder::new(rng, dims, cfg);
        if !featured.is_empty() {
            train_on_sparse(rng, &mut ae, &scaler, &featured, dims, cfg);
        }
        encoders.push(ae);
        scalers.push(scaler);
    }
    let embeddings = compute_codes_with(tkg, &encoders, &scalers, cfg.batch_size);
    (embeddings, encoders, scalers)
}

/// [`compute_codes`] with explicit (typically frozen) scalers.
pub fn compute_codes_with(
    tkg: &Tkg,
    encoders: &[Autoencoder],
    scalers: &[SparseScaler],
    batch_size: usize,
) -> NodeEmbeddings {
    let code_dim = encoders.first().map_or(0, |ae| ae.code_dim());
    let n = tkg.graph.node_count();
    let mut codes = Matrix::zeros(n, code_dim);
    for ((kind, ae), scaler) in IocKind::ALL.iter().zip(encoders).zip(scalers) {
        let dims = Tkg::dims_of(*kind);
        let featured = tkg.featured_nodes(*kind);
        // Batches are independent at inference time, so the
        // densify + scale + encode pipeline fans out across the pool;
        // only the write-back into the interleaved `codes` rows stays
        // sequential.
        let chunks: Vec<&[(NodeId, SparseRef<'_>)]> =
            featured.chunks(batch_size.max(1)).collect();
        let encoded: Vec<Matrix> = trail_linalg::pool::parallel_map(chunks.len(), |ci| {
            let rows: Vec<SparseRef<'_>> = chunks[ci].iter().map(|&(_, sv)| sv).collect();
            let mut dense = densify(&rows, dims);
            scaler.transform_inplace(&mut dense);
            ae.encode(&dense)
        });
        for (chunk, enc) in chunks.iter().zip(&encoded) {
            for (i, &(node, _)) in chunk.iter().enumerate() {
                codes.row_mut(node.index()).copy_from_slice(enc.row(i));
            }
        }
    }
    NodeEmbeddings { codes, code_dim }
}

/// Encode every featured node with already-trained encoders. Re-run
/// after the TKG grows (monthly updates): new nodes get codes without
/// retraining the autoencoders.
pub fn compute_codes(tkg: &Tkg, encoders: &[Autoencoder], batch_size: usize) -> NodeEmbeddings {
    // Refit the scalers on the current feature store (cheap: one sparse
    // pass) so codes stay consistent as the TKG grows.
    let scalers: Vec<SparseScaler> = IocKind::ALL
        .iter()
        .map(|&kind| SparseScaler::fit(&tkg.featured_nodes(kind), Tkg::dims_of(kind)))
        .collect();
    compute_codes_with(tkg, encoders, &scalers, batch_size)
}

/// Incrementally maintained node codes, keyed per row on the feature
/// content fingerprint.
///
/// Feature writes are first-write-wins and the study freezes the base
/// scalers, so a node's code is immutable once computed: each refresh
/// only encodes rows whose fingerprint is missing or changed (new
/// nodes, or the rare defensive re-write). Any change the cache cannot
/// absorb — different code width, different scaler transform, a
/// shrinking graph — triggers a transparent full rebuild, so a refresh
/// is always bitwise-identical to [`compute_codes_with`] on the same
/// inputs.
pub struct CodeCache {
    codes: Matrix,
    code_dim: usize,
    row_fp: Vec<u64>,
    cached: Vec<bool>,
    scaler_fp: u64,
    /// Times the cache threw everything away and rebuilt.
    pub full_rebuilds: u64,
    /// Featured rows served from cache across all refreshes.
    pub rows_reused: u64,
    /// Featured rows (re-)encoded across all refreshes.
    pub rows_recomputed: u64,
}

impl Default for CodeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CodeCache {
    /// An empty cache; the first refresh performs a full build.
    pub fn new() -> Self {
        Self {
            codes: Matrix::zeros(0, 0),
            code_dim: 0,
            row_fp: Vec::new(),
            cached: Vec::new(),
            scaler_fp: 0,
            full_rebuilds: 0,
            rows_reused: 0,
            rows_recomputed: 0,
        }
    }

    /// The cached per-node code matrix (one row per graph node).
    pub fn codes(&self) -> &Matrix {
        &self.codes
    }

    /// Code width.
    pub fn code_dim(&self) -> usize {
        self.code_dim
    }

    /// Bring the cache up to date with the TKG. After this returns,
    /// `codes()` equals `compute_codes_with(tkg, encoders, scalers,
    /// batch_size).codes` bit for bit. Returns the row indices written
    /// this refresh so callers maintaining derived matrices (the
    /// study's reusable GNN input) know which rows to resync.
    pub fn refresh(
        &mut self,
        tkg: &Tkg,
        encoders: &[Autoencoder],
        scalers: &[SparseScaler],
        batch_size: usize,
    ) -> Vec<usize> {
        let mut written = Vec::new();
        let code_dim = encoders.first().map_or(0, |ae| ae.code_dim());
        let n = tkg.graph.node_count();
        let mut scaler_fp = 0xcbf2_9ce4_8422_2325u64;
        for s in scalers {
            scaler_fp ^= s.fingerprint();
            scaler_fp = scaler_fp.wrapping_mul(0x0100_0000_01b3);
        }
        if code_dim != self.code_dim || scaler_fp != self.scaler_fp || n < self.row_fp.len() {
            // The transform changed or nodes vanished: cached rows are
            // unusable, start over.
            self.codes = Matrix::zeros(n, code_dim);
            self.row_fp = vec![0; n];
            self.cached = vec![false; n];
            self.code_dim = code_dim;
            self.scaler_fp = scaler_fp;
            self.full_rebuilds += 1;
        } else if n > self.row_fp.len() {
            let mut grown = Matrix::zeros(n, code_dim);
            for i in 0..self.codes.rows() {
                grown.row_mut(i).copy_from_slice(self.codes.row(i));
            }
            self.codes = grown;
            self.row_fp.resize(n, 0);
            self.cached.resize(n, false);
        }
        for ((kind, ae), scaler) in IocKind::ALL.iter().zip(encoders).zip(scalers) {
            let dims = Tkg::dims_of(*kind);
            let featured = tkg.featured_nodes(*kind);
            let mut dirty: Vec<(NodeId, SparseRef<'_>, u64)> = Vec::new();
            for &(node, sv) in &featured {
                let fp = sv.fingerprint();
                let i = node.index();
                if !self.cached[i] || self.row_fp[i] != fp {
                    dirty.push((node, sv, fp));
                }
            }
            self.rows_reused += (featured.len() - dirty.len()) as u64;
            self.rows_recomputed += dirty.len() as u64;
            if dirty.is_empty() {
                continue;
            }
            // Same densify + scale + encode pipeline as the full build;
            // every step is row-local, so encoding only the dirty rows
            // (in whatever chunking) reproduces the full-batch bits.
            let chunks: Vec<&[(NodeId, SparseRef<'_>, u64)]> =
                dirty.chunks(batch_size.max(1)).collect();
            let encoded: Vec<Matrix> = trail_linalg::pool::parallel_map(chunks.len(), |ci| {
                let rows: Vec<SparseRef<'_>> =
                    chunks[ci].iter().map(|&(_, sv, _)| sv).collect();
                let mut dense = densify(&rows, dims);
                scaler.transform_inplace(&mut dense);
                ae.encode(&dense)
            });
            for (chunk, enc) in chunks.iter().zip(&encoded) {
                for (i, &(node, _, fp)) in chunk.iter().enumerate() {
                    self.codes.row_mut(node.index()).copy_from_slice(enc.row(i));
                    self.row_fp[node.index()] = fp;
                    self.cached[node.index()] = true;
                    written.push(node.index());
                }
            }
        }
        written
    }
}

/// Minibatch SGD over the sparse store. Batches update shared weights
/// and therefore run in sequence, but the per-batch forward/backward
/// is pool-parallel throughout: `densify`, the scaler, and every
/// matmul inside `train_batch` submit row bands to the shared pool.
fn train_on_sparse<R: Rng + ?Sized>(
    rng: &mut R,
    ae: &mut Autoencoder,
    scaler: &SparseScaler,
    featured: &[(NodeId, SparseRef<'_>)],
    dims: usize,
    cfg: &AutoencoderConfig,
) {
    use rand::seq::SliceRandom;
    let mut adam = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..featured.len()).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let rows: Vec<SparseRef<'_>> = chunk.iter().map(|&i| featured[i].1).collect();
            let mut dense = densify(&rows, dims);
            scaler.transform_inplace(&mut dense);
            ae.train_batch(&dense, &mut adam);
        }
    }
}

/// Width of the assembled GNN input:
/// `code + 5 (node kind) + n_classes (visible label)`.
pub fn gnn_input_dim(code_dim: usize, n_classes: usize) -> usize {
    code_dim + 5 + n_classes
}

/// Assemble the GNN input matrix.
///
/// `visible` lists the event nodes whose labels the model may see
/// (train-fold events per the paper's protocol).
pub fn assemble_gnn_input(
    tkg: &Tkg,
    embeddings: &NodeEmbeddings,
    visible: &[(NodeId, u16)],
) -> Matrix {
    assemble_gnn_input_from(tkg, &embeddings.codes, embeddings.code_dim, visible)
}

/// [`assemble_gnn_input`] over a borrowed code matrix (the incremental
/// study assembles from its [`CodeCache`] without cloning the codes).
pub fn assemble_gnn_input_from(
    tkg: &Tkg,
    codes: &Matrix,
    code: usize,
    visible: &[(NodeId, u16)],
) -> Matrix {
    let n = tkg.graph.node_count();
    let k = tkg.n_classes();
    let mut x = Matrix::zeros(n, gnn_input_dim(code, k));
    for (id, rec) in tkg.graph.iter_nodes() {
        let row = x.row_mut(id.index());
        row[..code].copy_from_slice(codes.row(id.index()));
        row[code + rec.kind.index()] = 1.0;
    }
    for &(node, label) in visible {
        debug_assert_eq!(tkg.graph.node(node).kind, NodeKind::Event);
        x[(node.index(), code + 5 + label as usize)] = 1.0;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::AptRegistry;
    use crate::sparse::SparseVec;
    use trail_graph::EdgeKind;

    fn tkg_with_features() -> Tkg {
        let mut tkg = Tkg::new(AptRegistry::new(3));
        let e = tkg.graph.upsert_node(NodeKind::Event, "r0");
        let ip = tkg.graph.upsert_node(NodeKind::Ip, "1.1.1.1");
        tkg.graph.add_edge(e, ip, EdgeKind::InReport).unwrap();
        tkg.add_event(e, "r0", 1, 2);
        // Two IPs with *different* features: standardisation maps a
        // lone sample to the zero vector, so variety is required for a
        // non-trivial code.
        let ip2 = tkg.graph.upsert_node(NodeKind::Ip, "2.2.2.2");
        for (node, slot, v) in [(ip, 0usize, 1.0f32), (ip2, 3, 4.0)] {
            let mut dense = vec![0.0f32; Tkg::dims_of(IocKind::Ip)];
            dense[slot] = v;
            dense[506] = 2.5 + v;
            tkg.set_features(node, SparseVec::from_dense(&dense));
        }
        tkg
    }

    #[test]
    fn scaler_stats_extend_matches_one_shot_fit() {
        let tkg = tkg_with_features();
        let featured = tkg.featured_nodes(IocKind::Ip);
        let dims = Tkg::dims_of(IocKind::Ip);
        assert_eq!(featured.len(), 2);
        let full = SparseScaler::fit(&featured, dims);
        let mut stats = ScalerStats::new(dims);
        stats.extend(&featured[..1]);
        stats.extend(&featured[1..]);
        assert_eq!(stats.count(), 2);
        let incremental = stats.finalize();
        assert_eq!(full.fingerprint(), incremental.fingerprint());
        assert_eq!(full.means, incremental.means);
        assert_eq!(full.inv_stds, incremental.inv_stds);
    }

    #[test]
    fn code_cache_refresh_matches_full_compute() {
        let mut tkg = tkg_with_features();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let cfg = AutoencoderConfig { hidden: 8, code: 4, epochs: 2, batch_size: 4, lr: 1e-3 };
        let (_, encoders, scalers) = train_autoencoders_with_scalers(&mut rng, &tkg, &cfg);

        let mut cache = CodeCache::new();
        cache.refresh(&tkg, &encoders, &scalers, cfg.batch_size);
        let full = compute_codes_with(&tkg, &encoders, &scalers, cfg.batch_size);
        assert_eq!(cache.codes().as_slice(), full.codes.as_slice());
        assert_eq!(cache.full_rebuilds, 1);

        // Grow the graph: a new featured IP appears. Only that row may
        // be encoded; existing rows come from cache, and the result
        // still matches a from-scratch build bit for bit.
        let ip3 = tkg.graph.upsert_node(NodeKind::Ip, "3.3.3.3");
        let mut dense = vec![0.0f32; Tkg::dims_of(IocKind::Ip)];
        dense[7] = 2.0;
        dense[506] = 9.5;
        tkg.set_features(ip3, SparseVec::from_dense(&dense));
        let reused_before = cache.rows_reused;
        cache.refresh(&tkg, &encoders, &scalers, cfg.batch_size);
        let full2 = compute_codes_with(&tkg, &encoders, &scalers, cfg.batch_size);
        assert_eq!(cache.codes().as_slice(), full2.codes.as_slice());
        assert_eq!(cache.full_rebuilds, 1, "growth must not trigger a rebuild");
        assert!(cache.rows_reused > reused_before);

        // A different scaler transform invalidates everything.
        let refit: Vec<SparseScaler> = IocKind::ALL
            .iter()
            .map(|&k| SparseScaler::fit(&tkg.featured_nodes(k), Tkg::dims_of(k)))
            .collect();
        cache.refresh(&tkg, &encoders, &refit, cfg.batch_size);
        let full3 = compute_codes_with(&tkg, &encoders, &refit, cfg.batch_size);
        assert_eq!(cache.codes().as_slice(), full3.codes.as_slice());
        assert_eq!(cache.full_rebuilds, 2);
    }

    #[test]
    fn autoencoders_produce_codes_for_featured_nodes() {
        let tkg = tkg_with_features();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        let cfg = AutoencoderConfig { hidden: 8, code: 4, epochs: 2, batch_size: 4, lr: 1e-3 };
        let (emb, encoders) = train_autoencoders(&mut rng, &tkg, &cfg);
        assert_eq!(encoders.len(), 3);
        assert_eq!(emb.codes.shape(), (3, 4));
        // The event node (no features) stays zero; the IP node does not.
        let ip = tkg.graph.find_node(NodeKind::Ip, "1.1.1.1").unwrap();
        let e = tkg.graph.find_node(NodeKind::Event, "r0").unwrap();
        assert!(emb.codes.row(e.index()).iter().all(|&v| v == 0.0));
        assert!(emb.codes.row(ip.index()).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gnn_input_layout() {
        let tkg = tkg_with_features();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(42);
        let cfg = AutoencoderConfig { hidden: 8, code: 4, epochs: 1, batch_size: 4, lr: 1e-3 };
        let (emb, _) = train_autoencoders(&mut rng, &tkg, &cfg);
        let e = tkg.graph.find_node(NodeKind::Event, "r0").unwrap();
        let x = assemble_gnn_input(&tkg, &emb, &[(e, 2)]);
        assert_eq!(x.cols(), gnn_input_dim(4, 3));
        // Kind one-hot: event = index 0 of the kind block.
        assert_eq!(x[(e.index(), 4)], 1.0);
        // Visible label 2 set in the label block.
        assert_eq!(x[(e.index(), 4 + 5 + 2)], 1.0);
        // Masked variant: label block all zero.
        let x_masked = assemble_gnn_input(&tkg, &emb, &[]);
        for c in 0..3 {
            assert_eq!(x_masked[(e.index(), 4 + 5 + c)], 0.0);
        }
    }
}
