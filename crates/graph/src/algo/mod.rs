//! Graph algorithms backing the paper's Section V analysis:
//! connected components, BFS traversals (k-hop neighbourhoods,
//! diameter estimation) and ego-net extraction.

pub mod bfs;
pub mod components;
pub mod egonet;

pub use bfs::{bfs_distances, diameter_double_sweep, k_hop};
pub use components::{ComponentSummary, connected_components};
pub use egonet::{ego_net, EgoNet};
