//! Report collection and APT tag resolution (paper Section IV-A).
//!
//! The collector searches the exchange for tagged reports, maps free-
//! form tags (names and aliases) onto canonical APT identities, drops
//! reports whose tags point at more than one APT ("to avoid downloading
//! IOC dumps that are unrelated or relate to multiple incidents"), and
//! parses the surviving indicator lists.

use trail_ioc::report::{ParsedReport, RawReport};
use trail_osint::profile::{aliases, APT_NAMES};

/// The canonical APT label space: index = label id.
#[derive(Debug, Clone)]
pub struct AptRegistry {
    names: Vec<String>,
}

impl AptRegistry {
    /// Registry over the first `n` canonical APTs.
    pub fn new(n: usize) -> Self {
        Self { names: APT_NAMES.iter().take(n).map(|s| (*s).to_owned()).collect() }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Class names in label order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Name of a label.
    pub fn name(&self, label: u16) -> &str {
        &self.names[label as usize]
    }

    /// Resolve a tag (canonical or alias, case-insensitive) to a label.
    pub fn resolve(&self, tag: &str) -> Option<u16> {
        let t = tag.to_ascii_lowercase();
        self.names.iter().position(|n| {
            n.to_ascii_lowercase() == t
                || aliases(n).iter().any(|a| a.to_ascii_lowercase() == t)
        }).map(|i| i as u16)
    }
}

/// A collected event: parsed report plus its resolved APT label.
#[derive(Debug, Clone)]
pub struct CollectedEvent {
    /// Parsed report (validated IOCs).
    pub report: ParsedReport,
    /// Resolved APT label.
    pub apt: u16,
}

/// Outcome statistics of a collection pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Reports kept.
    pub kept: usize,
    /// Reports dropped: no tag resolved to a known APT.
    pub unresolved: usize,
    /// Reports dropped: tags resolved to multiple different APTs.
    pub conflicting: usize,
    /// Indicators rejected during parsing across kept reports.
    pub rejected_indicators: usize,
}

/// Filter and parse raw reports against the registry.
pub fn collect(reports: &[RawReport], registry: &AptRegistry) -> (Vec<CollectedEvent>, CollectStats) {
    collect_iter(reports, registry)
}

/// [`collect`] over any borrowed report stream — e.g. the zero-clone
/// [`trail_osint::OsintClient::reports_before`] view — so collection
/// never forces the raw report set to be materialised twice.
pub fn collect_iter<'a>(
    reports: impl IntoIterator<Item = &'a RawReport>,
    registry: &AptRegistry,
) -> (Vec<CollectedEvent>, CollectStats) {
    let reports = reports.into_iter();
    let mut out = Vec::with_capacity(reports.size_hint().0);
    let mut stats = CollectStats::default();
    for raw in reports {
        let mut labels: Vec<u16> = raw.tags.iter().filter_map(|t| registry.resolve(t)).collect();
        labels.sort_unstable();
        labels.dedup();
        match labels.as_slice() {
            [] => stats.unresolved += 1,
            [one] => {
                let parsed = raw.parse();
                stats.rejected_indicators += parsed.rejected.len();
                stats.kept += 1;
                out.push(CollectedEvent { report: parsed, apt: *one });
            }
            _ => stats.conflicting += 1,
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_ioc::report::RawIndicator;

    fn raw(id: &str, tags: &[&str]) -> RawReport {
        RawReport {
            id: id.into(),
            created_day: 10,
            tags: tags.iter().map(|s| (*s).to_owned()).collect(),
            indicators: vec![RawIndicator {
                indicator_type: "IPv4".into(),
                indicator: "198.51.100.7".into(),
            }],
        }
    }

    #[test]
    fn resolves_names_and_aliases() {
        let reg = AptRegistry::new(22);
        assert_eq!(reg.resolve("APT28"), Some(0));
        assert_eq!(reg.resolve("sofacy"), Some(0));
        assert_eq!(reg.resolve("LAZARUS"), reg.resolve("APT38"));
        assert_eq!(reg.resolve("unknown-group"), None);
    }

    #[test]
    fn multi_apt_tags_are_dropped() {
        let reg = AptRegistry::new(22);
        let reports = vec![
            raw("a", &["APT28"]),
            raw("b", &["APT28", "fancy-bear"]), // same APT twice: kept
            raw("c", &["APT28", "APT29"]),      // conflict: dropped
            raw("d", &["not-an-apt"]),          // unresolved: dropped
        ];
        let (events, stats) = collect(&reports, &reg);
        assert_eq!(events.len(), 2);
        assert_eq!(stats, CollectStats { kept: 2, unresolved: 1, conflicting: 1, rejected_indicators: 0 });
        assert_eq!(events[0].apt, 0);
    }

    #[test]
    fn registry_size_limits_classes() {
        let reg = AptRegistry::new(2);
        assert_eq!(reg.len(), 2);
        // APT27 is index 2 in APT_NAMES: out of this registry.
        assert_eq!(reg.resolve("APT27"), None);
    }

    #[test]
    fn rejected_indicator_counting() {
        let reg = AptRegistry::new(22);
        let mut r = raw("a", &["APT28"]);
        r.indicators.push(RawIndicator { indicator_type: "URL".into(), indicator: "javascript:x()".into() });
        let (_, stats) = collect(&[r], &reg);
        assert_eq!(stats.rejected_indicators, 1);
    }
}
