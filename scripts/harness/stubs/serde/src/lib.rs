//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on ~50 types but never
//! serializes them generically — all JSON output goes through
//! `serde_json::Value` built by hand, and all binary persistence uses the
//! repo's own TKG2/TSC1 framing. So the traits here are empty markers with
//! blanket impls, and the derive macros (re-exported from the stub
//! `serde_derive`) expand to nothing.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Mirror of serde's `de` module for `use serde::de::...` paths.
pub mod de {
    pub use super::Deserialize;
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

pub use serde_derive::{Deserialize, Serialize};
