//! Kill-at-any-byte WAL recovery drills (the PR 9 acceptance gate).
//!
//! The contract under test: a [`DurableStream`] killed at *any* byte
//! boundary of its TWL1 log — mid-payload, mid-header, mid-rotation,
//! between records — recovers by truncating at the first torn record
//! and replaying the durable prefix into a runtime whose TKG and
//! model fingerprints, budget ledger and tick count are bitwise
//! identical to the uninterrupted run's state after exactly that
//! prefix. The drills run under the PR 4 chaos harness (breaker-armed
//! client, seeded transient faults), mirroring
//! `tests/stream_equivalence_test.rs`: recovery builds a *fresh*
//! world/client/runtime, exactly like a restarted process.
//!
//! Two sweeps split the cost: a scan-level sweep cuts the log at
//! every single byte offset and checks the recovered record prefix
//! (cheap — no model training), and a replay-level sweep re-trains a
//! runtime at structurally hostile offsets (mid-header, mid-payload,
//! the segment boundary, a torn final record, and the `ChaosPlan`'s
//! seeded cut points) and compares full state — including pushing the
//! *rest* of the schedule after one recovery to prove the resumed
//! stream converges on the uninterrupted run's final bits.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use rand::rngs::StdRng;
use rand::SeedableRng;

use trail::attribute::GnnEvalConfig;
use trail::longitudinal::StudyConfig;
use trail::stream::wal::{self, DurableStream, FsyncPolicy, WalConfig, WalError};
use trail::stream::{AsofPolicy, StreamConfig, StreamRuntime};
use trail::system::TrailSystem;
use trail_gnn::{FineTune, TrainConfig};
use trail_ioc::report::RawReport;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{ChaosPlan, CircuitBreaker, OsintClient, World, WorldConfig, DAYS_PER_MONTH};

const WORLD_SEED: u64 = 123;
const RNG_SEED: u64 = 7;
/// Seed 1: survivable feed (55 % transient faults) — the same plan the
/// PR 4 chaos suite pins.
const CHAOS_SEED: u64 = 1;

/// Serialize tests that touch the process-global `trail_obs` registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    trail_obs::set_enabled(true);
    trail_obs::reset();
    g
}

/// A breaker-armed client over a tiny world perturbed by `plan`.
fn chaos_client(plan: &ChaosPlan, world_seed: u64) -> OsintClient {
    let mut cfg = WorldConfig::tiny(world_seed);
    plan.apply(&mut cfg);
    let mut client = OsintClient::new(Arc::new(World::generate(cfg)));
    client.set_breaker(Arc::new(CircuitBreaker::default()));
    client
}

fn study_cfg() -> StudyConfig {
    StudyConfig {
        months: 2,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 12,
            train: TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
        fine_tune: FineTune { lr: 0.01, epochs: 3 },
    }
}

/// A fresh runtime + the full schedule, exactly like a process start:
/// new world, new client, new breaker, same seeds.
fn fresh_runtime(plan: &ChaosPlan) -> (StreamRuntime, Vec<RawReport>) {
    let client = chaos_client(plan, WORLD_SEED);
    let cutoff = client.world().config.cutoff_day;
    let horizon = client.world().config.horizon_day();
    let schedule = client.stream_reports(cutoff, horizon);
    let sys = TrailSystem::build(client, cutoff);
    let cfg = StreamConfig {
        study: study_cfg(),
        asof: AsofPolicy::WindowEnd { origin: cutoff, stride: DAYS_PER_MONTH },
        // Auto-ticks fire during replay exactly as they fired live.
        tick_every: Some(4),
        budget_us: u64::MAX,
    };
    (StreamRuntime::new(StdRng::seed_from_u64(RNG_SEED), sys, cfg), schedule)
}

/// Small segments so cuts land mid-rotation as well as mid-record.
fn wal_cfg(dir: &Path) -> WalConfig {
    WalConfig { dir: dir.to_path_buf(), segment_bytes: 256, fsync: FsyncPolicy::Always }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trail-walrec-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Segment files in index order (the names sort).
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".twl"))
        })
        .collect();
    segs.sort();
    segs
}

fn log_len(dir: &Path) -> u64 {
    segments(dir).iter().map(|p| std::fs::metadata(p).unwrap().len()).sum()
}

fn copy_log(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Simulate a kill with exactly `keep` bytes durable: truncate the
/// segment holding the boundary, remove segments after it.
fn cut_log_at(dir: &Path, keep: u64) {
    let mut remaining = keep;
    let segs = segments(dir);
    for (i, path) in segs.iter().enumerate() {
        let len = std::fs::metadata(path).unwrap().len();
        if remaining >= len {
            remaining -= len;
            continue;
        }
        let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
        f.set_len(remaining).unwrap();
        for later in &segs[i + 1..] {
            std::fs::remove_file(later).ok();
        }
        return;
    }
}

/// Everything that must be bitwise-identical between an uninterrupted
/// run and a recovered one: graph bits, model bits, the full budget
/// ledger and the tick counter.
type State = (u64, u64, trail::stream::BudgetLedger, u32);

fn state_of(rt: &StreamRuntime) -> State {
    (rt.tkg_fingerprint(), rt.model_fingerprint(), rt.ledger(), rt.ticks_fired())
}

#[test]
fn recovery_is_bitwise_identical_at_any_kill_offset() {
    let _g = obs_lock();
    let plan = ChaosPlan::from_seed(CHAOS_SEED);
    let root = tmp_dir("any-offset");
    let ref_dir = root.join("reference");

    // Uninterrupted reference run, capturing the state after every
    // push and the log's byte length after every append.
    let (rt, schedule) = fresh_runtime(&plan);
    assert!(schedule.len() >= 10, "tiny world too small to drill ({})", schedule.len());
    let mut drt = DurableStream::create(wal_cfg(&ref_dir), rt).unwrap();
    let mut states: Vec<State> = vec![state_of(drt.runtime())];
    let mut ends: Vec<u64> = Vec::with_capacity(schedule.len());
    for r in &schedule {
        drt.push(r).unwrap();
        states.push(state_of(drt.runtime()));
        ends.push(log_len(&ref_dir));
    }
    let total = *ends.last().unwrap();
    let n_segs = segments(&ref_dir).len();
    assert!(n_segs > 2, "need several segments to cover rotation kills (got {n_segs})");
    assert_eq!(drt.wal().records(), schedule.len() as u64);

    // Scan sweep: cut the log at EVERY byte offset (working downwards
    // on one scratch copy — cuts only ever shrink it) and check the
    // recovered prefix against the append ledger. `wal::scan` is
    // read-only, so the scratch log stays valid between cuts.
    let sweep = root.join("sweep");
    copy_log(&ref_dir, &sweep);
    for keep in (0..=total).rev() {
        cut_log_at(&sweep, keep);
        let (recovered, rep) = wal::scan(&sweep).unwrap_or_else(|e| {
            panic!("scan after cut at byte {keep} errored: {e}");
        });
        let expect = ends.partition_point(|&e| e <= keep);
        assert_eq!(
            rep.records as usize, expect,
            "cut at byte {keep}: recovered {} records, durable prefix is {expect}",
            rep.records
        );
        let torn = keep != 0 && ends.binary_search(&keep).is_err();
        assert_eq!(rep.tear.is_some(), torn, "cut at byte {keep}: tear mis-detected");
        assert_eq!(recovered.len(), expect);
        // Full content equality, sampled (the length check above runs
        // at every offset; record content can only change at record
        // granularity).
        if keep % 64 == 0 || !torn {
            assert_eq!(recovered[..], schedule[..expect], "cut at byte {keep}: content");
        }
    }

    // Replay sweep: full recovery (fresh world + client + runtime,
    // truncate-at-tear, replay) at structurally hostile offsets plus
    // the plan's seeded cut points.
    let m = ends[schedule.len() / 2];
    let seg0 = std::fs::metadata(&segments(&ref_dir)[0]).unwrap().len();
    let mut cuts = vec![
        m + 7,          // mid-header of the next record
        m + 30,         // mid-payload
        seg0,           // exactly at the first rotation boundary
        total - 2,      // torn final record
    ];
    cuts.extend(plan.wal_cut_points.iter().map(|&c| c % (total + 1)));
    for &keep in &cuts {
        let dir = root.join(format!("cut-{keep}"));
        copy_log(&ref_dir, &dir);
        cut_log_at(&dir, keep);
        let before = trail_obs::snapshot();
        let (rec, report) = DurableStream::recover(wal_cfg(&dir), fresh_runtime(&plan).0)
            .unwrap_or_else(|e| panic!("recovery after cut at byte {keep} errored: {e}"));
        let k = report.records as usize;
        assert_eq!(k, ends.partition_point(|&e| e <= keep), "cut {keep}: prefix length");
        assert_eq!(
            state_of(rec.runtime()),
            states[k],
            "cut at byte {keep}: recovered state diverges after {k} events"
        );
        // The obs ledger reconciles with the recovery report.
        let delta = trail_obs::snapshot().delta_since(&before);
        assert_eq!(delta.counter("stream.wal.recovered"), k as u64);
        drop(rec);
    }

    // Continue-after-recovery: recover from the mid-payload cut, push
    // the rest of the schedule, and land on the uninterrupted run's
    // final bits — crash, recover, resume is indistinguishable from
    // never crashing.
    let dir = root.join("resume");
    copy_log(&ref_dir, &dir);
    cut_log_at(&dir, m + 30);
    let (mut resumed, report) =
        DurableStream::recover(wal_cfg(&dir), fresh_runtime(&plan).0).unwrap();
    let k = report.records as usize;
    assert!(k < schedule.len());
    for r in &schedule[k..] {
        resumed.push(r).unwrap();
    }
    assert_eq!(state_of(resumed.runtime()), states[schedule.len()]);
    assert_eq!(resumed.wal().records(), schedule.len() as u64);
    // And the resumed log recovers the full schedule in turn.
    let (recovered, rep) = wal::scan(&dir).unwrap();
    assert!(rep.tear.is_none());
    assert_eq!(recovered[..], schedule[..]);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sealed_segment_corruption_is_a_typed_error_not_a_truncation() {
    let _g = obs_lock();
    let plan = ChaosPlan::from_seed(CHAOS_SEED);
    let root = tmp_dir("sealed");
    let ref_dir = root.join("reference");
    let (rt, schedule) = fresh_runtime(&plan);
    let mut drt = DurableStream::create(wal_cfg(&ref_dir), rt).unwrap();
    for r in &schedule {
        drt.push(r).unwrap();
    }
    assert!(segments(&ref_dir).len() > 1, "drill needs a sealed segment");

    for &off in &plan.wal_corrupt_offsets {
        let dir = root.join(format!("flip-{off:x}"));
        copy_log(&ref_dir, &dir);
        let seg = segments(&dir)[0].clone();
        let mut bytes = std::fs::read(&seg).unwrap();
        let p = (off % bytes.len() as u64) as usize;
        bytes[p] ^= 0x08;
        std::fs::write(&seg, &bytes).unwrap();
        // A sealed segment is never truncated: damage there is not a
        // torn tail but lost history, and recovery must refuse loudly
        // rather than silently replay a hole.
        match wal::scan(&dir) {
            Err(WalError::CorruptSealed { segment: 0, .. }) => {}
            other => panic!(
                "flip at sealed byte {p}: expected CorruptSealed, got {:?}",
                other.map(|(r, rep)| (r.len(), rep))
            ),
        }
        match DurableStream::recover(wal_cfg(&dir), fresh_runtime(&plan).0) {
            Err(WalError::CorruptSealed { segment: 0, .. }) => {}
            Err(e) => panic!("flip at sealed byte {p}: wrong error {e}"),
            Ok(_) => panic!("flip at sealed byte {p}: recovery loaded corrupt history"),
        }
    }
    std::fs::remove_dir_all(&root).ok();
}
