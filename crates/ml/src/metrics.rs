//! Evaluation metrics: accuracy, balanced accuracy, confusion matrix.
//!
//! The paper reports accuracy and balanced accuracy everywhere, "the
//! latter being especially relevant given the imbalanced nature of our
//! dataset" (Section VII-A), plus the Fig. 7 confusion matrix.

/// Fraction of predictions equal to the truth.
pub fn accuracy(truth: &[u16], pred: &[u16]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Macro-averaged recall: mean over classes (with support) of the
/// per-class recall. Robust to imbalance.
pub fn balanced_accuracy(truth: &[u16], pred: &[u16], n_classes: usize) -> f64 {
    assert_eq!(truth.len(), pred.len());
    let mut support = vec![0usize; n_classes];
    let mut hits = vec![0usize; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        support[t as usize] += 1;
        if t == p {
            hits[t as usize] += 1;
        }
    }
    let mut sum = 0.0;
    let mut classes = 0;
    for c in 0..n_classes {
        if support[c] > 0 {
            sum += hits[c] as f64 / support[c] as f64;
            classes += 1;
        }
    }
    if classes == 0 {
        0.0
    } else {
        sum / classes as f64
    }
}

/// Mean and (population) standard deviation of a set of fold scores,
/// for the `acc ± std` cells of Tables III/IV.
pub fn mean_std(scores: &[f64]) -> (f64, f64) {
    if scores.is_empty() {
        return (0.0, 0.0);
    }
    let n = scores.len() as f64;
    let mean = scores.iter().sum::<f64>() / n;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// A confusion matrix: `counts[truth][pred]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from parallel truth/prediction slices.
    pub fn from_predictions(truth: &[u16], pred: &[u16], n_classes: usize) -> Self {
        assert_eq!(truth.len(), pred.len());
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&t, &p) in truth.iter().zip(pred) {
            counts[t as usize][p as usize] += 1;
        }
        Self { counts }
    }

    /// Rebuild from a square counts table (the checkpoint load path).
    pub fn from_counts(counts: Vec<Vec<usize>>) -> Self {
        let k = counts.len();
        assert!(counts.iter().all(|row| row.len() == k), "counts must be square");
        Self { counts }
    }

    /// Count at `(truth, pred)`.
    pub fn get(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth][pred]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Row-normalised recall matrix.
    pub fn recall_matrix(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let total: usize = row.iter().sum();
                row.iter()
                    .map(|&c| if total == 0 { 0.0 } else { c as f64 / total as f64 })
                    .collect()
            })
            .collect()
    }

    /// Per-class recall (diagonal of [`Self::recall_matrix`]).
    pub fn per_class_recall(&self) -> Vec<f64> {
        self.recall_matrix().iter().enumerate().map(|(i, row)| row[i]).collect()
    }

    /// Render as an aligned text table restricted to classes with
    /// support, using the provided class names.
    pub fn render(&self, names: &[&str]) -> String {
        let active: Vec<usize> =
            (0..self.n_classes()).filter(|&c| self.counts[c].iter().sum::<usize>() > 0 || self.counts.iter().any(|r| r[c] > 0)).collect();
        let mut out = String::new();
        out.push_str(&format!("{:>10} |", "truth\\pred"));
        for &c in &active {
            out.push_str(&format!("{:>9}", names.get(c).copied().unwrap_or("?")));
        }
        out.push('\n');
        for &t in &active {
            if self.counts[t].iter().sum::<usize>() == 0 {
                continue;
            }
            out.push_str(&format!("{:>10} |", names.get(t).copied().unwrap_or("?")));
            for &p in &active {
                out.push_str(&format!("{:>9}", self.counts[t][p]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn balanced_accuracy_ignores_imbalance() {
        // 9 of class 0 (all right), 1 of class 1 (wrong):
        // plain acc = 0.9, balanced = (1.0 + 0.0)/2 = 0.5.
        let truth = [0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let pred = [0; 10];
        assert!((accuracy(&truth, &pred) - 0.9).abs() < 1e-12);
        assert!((balanced_accuracy(&truth, &pred, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_accuracy_skips_absent_classes() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 0];
        // Class 2 absent: average over classes 0 and 1 only.
        assert!((balanced_accuracy(&truth, &pred, 3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_counts_and_recall() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        assert_eq!(cm.get(0, 0), 1);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 0), 1);
        assert_eq!(cm.get(1, 1), 2);
        let recall = cm.per_class_recall();
        assert!((recall[0] - 0.5).abs() < 1e-12);
        assert!((recall[1] - 2.0 / 3.0).abs() < 1e-12);
        let rendered = cm.render(&["A", "B"]);
        assert!(rendered.contains('A') && rendered.contains('B'));
    }

    #[test]
    fn render_skips_classes_without_any_mass() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0], &[0, 2], 4);
        let rendered = cm.render(&["A", "B", "C", "D"]);
        // Class B (no truth, no predictions) is filtered; C appears as a
        // prediction column target.
        assert!(rendered.contains('A') && rendered.contains('C'));
        assert!(!rendered.contains('B'));
        assert!(!rendered.contains('D'));
    }

    #[test]
    fn recall_matrix_rows_sum_to_one_for_supported_classes() {
        let cm = ConfusionMatrix::from_predictions(&[0, 0, 1], &[0, 1, 1], 2);
        for row in cm.recall_matrix() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_std_of_folds() {
        let (m, s) = mean_std(&[0.8, 0.9]);
        assert!((m - 0.85).abs() < 1e-12);
        assert!((s - 0.05).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
