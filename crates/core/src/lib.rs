//! # TRAIL — knowledge-graph APT attribution
//!
//! A from-scratch reproduction of *"TRAIL: A Knowledge Graph-based
//! Approach for Attributing Advanced Persistent Threats"* (ICDE 2025).
//!
//! The system ingests attributed incident reports from an OSINT
//! exchange, validates and enriches their network IOCs (passive DNS,
//! geo-IP, header probes), and merges everything into the TRAIL
//! Knowledge Graph (TKG). Three analysis families then attribute
//! events to APTs: per-IOC classical ML, label propagation over the
//! graph, and a GraphSAGE GNN combining features with topology.
//!
//! ```no_run
//! use std::sync::Arc;
//! use trail::system::TrailSystem;
//! use trail_osint::{OsintClient, World, WorldConfig};
//!
//! let world = Arc::new(World::generate(WorldConfig::default()));
//! let client = OsintClient::new(world);
//! let cutoff = client.world().config.cutoff_day;
//! let system = TrailSystem::build(client, cutoff);
//! println!("{}", system.tkg.stats_table());
//! ```
//!
//! Module map (paper section in parentheses):
//! * [`collector`] — report search + APT alias resolution (§IV-A).
//! * [`enrich`] — two-hop IOC enrichment (§IV-A/B).
//! * [`tkg`] — the knowledge graph + feature store (§IV-C, §V).
//! * [`sparse`] — sparse feature vectors backing the store.
//! * [`attribute`] — Table III / Table IV attribution pipelines (§VI–VII).
//! * [`embed`] — autoencoder projection + GNN input assembly (§VI-C).
//! * [`report`] — dataset statistics, reuse histograms (§V, Fig. 4).
//! * [`longitudinal`] — the months-long study (§VII-C, Figs. 7–8).
//! * [`stream`] — event-at-a-time ingestion, bitwise-equal to batch.
//! * [`shard`] — shard-parallel enrichment, bitwise-equal to sequential.
//! * [`system`] — the end-to-end orchestrator.

pub mod attribute;
pub mod checkpoint;
pub mod collector;
pub mod embed;
pub mod enrich;
pub mod freeze;
pub mod longitudinal;
pub mod report;
pub mod shard;
pub mod sparse;
pub mod stream;
pub mod system;
pub mod tkg;

pub use system::TrailSystem;
pub use tkg::Tkg;

/// Errors surfaced by the TRAIL pipeline.
#[derive(Debug)]
pub enum TrailError {
    /// Graph-layer failure.
    Graph(trail_graph::GraphError),
    /// A pipeline-level invariant broke.
    Pipeline(String),
}

impl From<trail_graph::GraphError> for TrailError {
    fn from(e: trail_graph::GraphError) -> Self {
        TrailError::Graph(e)
    }
}

impl std::fmt::Display for TrailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrailError::Graph(e) => write!(f, "graph error: {e}"),
            TrailError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for TrailError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TrailError>;
