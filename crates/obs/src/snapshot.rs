//! Serializable point-in-time views of the registry.

use serde::Serialize;

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SpanStat {
    /// Full hierarchical path, segments joined by `/`.
    pub path: String,
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across completions.
    pub total_ns: u64,
    /// Fastest single completion in nanoseconds.
    pub min_ns: u64,
    /// Slowest single completion in nanoseconds.
    pub max_ns: u64,
}

/// One monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One histogram, flattened to plain vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: String,
    /// Ascending upper bounds (overflow bucket implied).
    pub bounds: Vec<u64>,
    /// Bucket counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl HistogramStat {
    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A point-in-time view of every registered metric, sorted by name so
/// two snapshots of identical registries compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramStat>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Value of a counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Span aggregate for a path, when present.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// A copy with every wall-clock field zeroed, leaving only the
    /// deterministic shape (paths, counts, counters, histograms).
    /// Snapshots of the same workload taken under different thread
    /// counts must be identical after this transform.
    pub fn without_wall_clock(&self) -> Self {
        let mut out = self.clone();
        for s in &mut out.spans {
            s.total_ns = 0;
            s.min_ns = 0;
            s.max_ns = 0;
        }
        out
    }

    /// What happened between `earlier` and `self`: counter and span
    /// counts subtract exactly; histogram buckets subtract bucket-wise
    /// when the bounds match. `min_ns`/`max_ns` cannot be recovered
    /// for an interval, so they are reported as the cumulative bounds
    /// (`0` and the cumulative max). Entries whose delta is zero are
    /// dropped.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        let spans = self
            .spans
            .iter()
            .filter_map(|s| {
                let count = s.count - earlier.span(&s.path).map_or(0, |e| e.count);
                let total_ns = s.total_ns - earlier.span(&s.path).map_or(0, |e| e.total_ns);
                (count > 0).then(|| SpanStat {
                    path: s.path.clone(),
                    count,
                    total_ns,
                    min_ns: 0,
                    max_ns: s.max_ns,
                })
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|c| {
                let value = c.value - earlier.counter(&c.name);
                (value > 0).then(|| CounterStat { name: c.name.clone(), value })
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let counts: Vec<u64> = match earlier.histogram(&h.name) {
                    Some(e) if e.bounds == h.bounds => {
                        h.counts.iter().zip(&e.counts).map(|(a, b)| a - b).collect()
                    }
                    _ => h.counts.clone(),
                };
                let sum = h.sum - earlier.histogram(&h.name).map_or(0, |e| e.sum);
                (counts.iter().any(|&c| c > 0)).then(|| HistogramStat {
                    name: h.name.clone(),
                    bounds: h.bounds.clone(),
                    counts,
                    sum,
                })
            })
            .collect();
        Self { spans, counters, histograms }
    }

    /// Merge another snapshot into this one (sums counts, values and
    /// bucket counts; takes min/max of the span extrema).
    pub fn absorb(&mut self, other: &Self) {
        for s in &other.spans {
            match self.spans.iter_mut().find(|m| m.path == s.path) {
                Some(m) => {
                    m.count += s.count;
                    m.total_ns += s.total_ns;
                    m.min_ns = if m.min_ns == 0 { s.min_ns } else { m.min_ns.min(s.min_ns.max(1)) };
                    m.max_ns = m.max_ns.max(s.max_ns);
                }
                None => self.spans.push(s.clone()),
            }
        }
        for c in &other.counters {
            match self.counters.iter_mut().find(|m| m.name == c.name) {
                Some(m) => m.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|m| m.name == h.name && m.bounds == h.bounds)
            {
                Some(m) => {
                    for (a, b) in m.counts.iter_mut().zip(&h.counts) {
                        *a += *b;
                    }
                    m.sum += h.sum;
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.spans.sort_by(|a, b| a.path.cmp(&b.path));
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Build a JSON object by hand (works with the project serde setup
    /// without relying on derive-based serialization at this site).
    pub fn to_json(&self) -> serde_json::Value {
        let mut spans = serde_json::Map::new();
        for s in &self.spans {
            let mut o = serde_json::Map::new();
            o.insert("count".to_string(), serde_json::Value::from(s.count));
            o.insert("total_ns".to_string(), serde_json::Value::from(s.total_ns));
            o.insert("min_ns".to_string(), serde_json::Value::from(s.min_ns));
            o.insert("max_ns".to_string(), serde_json::Value::from(s.max_ns));
            spans.insert(s.path.clone(), serde_json::Value::Object(o));
        }
        let mut counters = serde_json::Map::new();
        for c in &self.counters {
            counters.insert(c.name.clone(), serde_json::Value::from(c.value));
        }
        let mut hists = serde_json::Map::new();
        for h in &self.histograms {
            let mut o = serde_json::Map::new();
            o.insert(
                "bounds".to_string(),
                serde_json::Value::Array(
                    h.bounds.iter().map(|&b| serde_json::Value::from(b)).collect(),
                ),
            );
            o.insert(
                "counts".to_string(),
                serde_json::Value::Array(
                    h.counts.iter().map(|&c| serde_json::Value::from(c)).collect(),
                ),
            );
            o.insert("sum".to_string(), serde_json::Value::from(h.sum));
            hists.insert(h.name.clone(), serde_json::Value::Object(o));
        }
        let mut root = serde_json::Map::new();
        root.insert("spans".to_string(), serde_json::Value::Object(spans));
        root.insert("counters".to_string(), serde_json::Value::Object(counters));
        root.insert("histograms".to_string(), serde_json::Value::Object(hists));
        serde_json::Value::Object(root)
    }

    /// Render the span hierarchy as an indented tree, followed by
    /// counters and histograms — the output of `repro --trace`.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let mut spans = self.spans.clone();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        for s in &spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let mean_ms = if s.count > 0 {
                s.total_ns as f64 / s.count as f64 / 1.0e6
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:indent$}{name}  count={} total={:.3}ms mean={:.3}ms\n",
                "",
                s.count,
                s.total_ns as f64 / 1.0e6,
                mean_ms,
                indent = depth * 2,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {} = {}\n", c.name, c.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {}  n={} sum={} buckets={:?}\n",
                    h.name,
                    h.total(),
                    h.sum,
                    h.counts
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            spans: vec![
                SpanStat {
                    path: "a".into(),
                    count: 2,
                    total_ns: 100,
                    min_ns: 40,
                    max_ns: 60,
                },
                SpanStat {
                    path: "a/b".into(),
                    count: 4,
                    total_ns: 80,
                    min_ns: 10,
                    max_ns: 30,
                },
            ],
            counters: vec![CounterStat { name: "c".into(), value: 7 }],
            histograms: vec![HistogramStat {
                name: "h".into(),
                bounds: vec![10],
                counts: vec![3, 1],
                sum: 25,
            }],
        }
    }

    #[test]
    fn without_wall_clock_zeroes_only_time() {
        let s = snap().without_wall_clock();
        assert_eq!(s.spans[0].count, 2);
        assert_eq!(s.spans[0].total_ns, 0);
        assert_eq!(s.spans[0].min_ns, 0);
        assert_eq!(s.spans[0].max_ns, 0);
        assert_eq!(s.counter("c"), 7);
    }

    #[test]
    fn delta_subtracts_counts_and_drops_zero_entries() {
        let earlier = snap();
        let mut later = snap();
        later.spans[1].count += 3;
        later.spans[1].total_ns += 90;
        later.counters[0].value += 5;
        later.histograms[0].counts[1] += 2;
        later.histograms[0].sum += 40;
        let d = later.delta_since(&earlier);
        assert_eq!(d.spans.len(), 1, "unchanged span a must be dropped");
        assert_eq!(d.spans[0].path, "a/b");
        assert_eq!(d.spans[0].count, 3);
        assert_eq!(d.spans[0].total_ns, 90);
        assert_eq!(d.counter("c"), 5);
        let h = d.histogram("h").unwrap();
        assert_eq!(h.counts, vec![0, 2]);
        assert_eq!(h.sum, 40);
    }

    #[test]
    fn absorb_merges_and_sorts() {
        let mut a = snap();
        let b = snap();
        a.absorb(&b);
        assert_eq!(a.spans[0].count, 4);
        assert_eq!(a.spans[0].total_ns, 200);
        assert_eq!(a.counter("c"), 14);
        assert_eq!(a.histogram("h").unwrap().counts, vec![6, 2]);
        assert!(a.spans.windows(2).all(|w| w[0].path <= w[1].path));
    }

    #[test]
    fn json_shape_has_three_sections() {
        let v = snap().to_json();
        match v {
            serde_json::Value::Object(o) => {
                assert!(o.get("spans").is_some());
                assert!(o.get("counters").is_some());
                assert!(o.get("histograms").is_some());
            }
            _ => panic!("snapshot JSON must be an object"),
        }
    }

    #[test]
    fn tree_indents_children() {
        let t = snap().render_tree();
        assert!(t.contains("a  count=2"));
        assert!(t.contains("  b  count=4"));
        assert!(t.contains("c = 7"));
    }
}
