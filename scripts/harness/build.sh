#!/usr/bin/env bash
# Offline stub-rustc harness.
#
# This container has 1 CPU, no network, and an unpopulated cargo
# registry, so `cargo build` cannot resolve the (tiny) external
# dependency set. This script compiles the workspace with plain rustc
# against the stub crates in scripts/harness/stubs/ (serde, serde_json,
# rand, rand_distr, proptest — see each stub's header for the exact
# surface it covers and how it differs from upstream).
#
#   scripts/harness/build.sh            build libs + test bins + opt bins
#   scripts/harness/build.sh --test     ...and run every test binary
#   scripts/harness/build.sh --libs     libs only (fast typecheck loop)
#
# Outputs under target-stub/:
#   deps/      rlibs, opt-level=2 + debug-assertions (test profile)
#   deps-opt/  rlibs, opt-level=3, no debug assertions (bench profile)
#   tests/     one t_<name> binary per crate-lib / integration test
#   bin/       repro, kernels, examples (bench profile)
set -euo pipefail
cd "$(dirname "$0")/../.."

STUBS=scripts/harness/stubs
OUT=target-stub
DEPS="$OUT/deps"
OPT="$OUT/deps-opt"
TESTS="$OUT/tests"
BIN="$OUT/bin"
mkdir -p "$DEPS" "$OPT" "$TESTS" "$BIN"

EDITION="--edition 2021"
TEST_FLAGS="-C opt-level=2 -C debug-assertions=on"
OPT_FLAGS="-C opt-level=3 -C target-cpu=native"

mode="${1:---all}"

# Every workspace crate in dependency order: "crate_name:path_to_lib.rs".
CRATES=(
  "serde_json:$STUBS/serde_json/src/lib.rs"
  "rand:$STUBS/rand/src/lib.rs"
  "rand_distr:$STUBS/rand_distr/src/lib.rs"
  "proptest:$STUBS/proptest/src/lib.rs"
  "trail_obs:crates/obs/src/lib.rs"
  "trail_linalg:crates/linalg/src/lib.rs"
  "trail_ioc:crates/ioc/src/lib.rs"
  "trail_graph:crates/graph/src/lib.rs"
  "trail_osint:crates/osint/src/lib.rs"
  "trail_ml:crates/ml/src/lib.rs"
  "trail_gnn:crates/gnn/src/lib.rs"
  "trail:crates/core/src/lib.rs"
  "trail_serve:crates/serve/src/lib.rs"
  "trail_bench:crates/bench/src/lib.rs"
  "trail_repro:src/lib.rs"
)

externs() { # $1 = deps dir
  local dir="$1" flags=""
  flags+=" --extern serde=$dir/libserde.rlib"
  for c in "${CRATES[@]}"; do
    local name="${c%%:*}"
    if [ -f "$dir/lib$name.rlib" ]; then
      flags+=" --extern $name=$dir/lib$name.rlib"
    fi
  done
  echo "$flags"
}

build_profile() { # $1 = deps dir, $2 = profile flags
  local dir="$1" flags="$2"
  # serde_derive (proc macro, shared between profiles) then serde.
  if [ ! -f "$DEPS/libserde_derive.so" ]; then
    rustc $EDITION --crate-type proc-macro --crate-name serde_derive \
      "$STUBS/serde_derive/src/lib.rs" -o "$DEPS/libserde_derive.so"
  fi
  if [ ! -f "$dir/libserde.rlib" ] || [ "$STUBS/serde/src/lib.rs" -nt "$dir/libserde.rlib" ]; then
    rustc $EDITION $flags --crate-type rlib --crate-name serde \
      "$STUBS/serde/src/lib.rs" --extern serde_derive="$DEPS/libserde_derive.so" \
      -o "$dir/libserde.rlib"
  fi
  local cascade=0
  for c in "${CRATES[@]}"; do
    local name="${c%%:*}" src="${c#*:}" out="$dir/lib${c%%:*}.rlib"
    local src_dir; src_dir="$(dirname "$src")"
    # Rebuild when any source in the crate dir is newer than the rlib,
    # or when anything earlier in the dependency order was rebuilt.
    if [ "$cascade" -eq 0 ] && [ -f "$out" ] \
      && [ -z "$(find "$src_dir" -name '*.rs' -newer "$out" -print -quit)" ]; then
      continue
    fi
    cascade=1
    echo "  [lib $name]"
    rustc $EDITION $flags --crate-type rlib --crate-name "$name" "$src" \
      -L "$DEPS" -L "$dir" $(externs "$dir") -o "$out"
  done
}

echo "== stub harness: test-profile libs =="
build_profile "$DEPS" "$TEST_FLAGS"

if [ "$mode" = "--libs" ]; then
  echo "libs OK"
  exit 0
fi

echo "== stub harness: bench-profile libs =="
build_profile "$OPT" "$OPT_FLAGS"

echo "== stub harness: test binaries =="
TEST_EXTERNS="$(externs "$DEPS")"
build_test() { # $1 = test name, $2 = source path
  local bin="$TESTS/$1"
  [ -f "$2" ] || return 0
  if [ -f "$bin" ] && [ -z "$(find "$2" crates src -name '*.rs' -newer "$bin" -print -quit 2>/dev/null)" ]; then
    return
  fi
  echo "  [test $1]"
  rustc $EDITION $TEST_FLAGS --test --crate-name "$1" "$2" \
    -L "$DEPS" $TEST_EXTERNS -o "$bin"
}

build_test t_obs      crates/obs/src/lib.rs
build_test t_linalg   crates/linalg/src/lib.rs
build_test t_ioc      crates/ioc/src/lib.rs
build_test t_graph    crates/graph/src/lib.rs
build_test t_osint    crates/osint/src/lib.rs
build_test t_ml       crates/ml/src/lib.rs
build_test t_gnn      crates/gnn/src/lib.rs
build_test t_core     crates/core/src/lib.rs
build_test t_serve    crates/serve/src/lib.rs
build_test t_bench    crates/bench/src/lib.rs
build_test t_pool_proptest        crates/linalg/tests/pool_proptest.rs
build_test t_kernel_proptest      crates/linalg/tests/kernel_proptest.rs
build_test t_parallel_equivalence crates/gnn/tests/parallel_equivalence.rs
build_test t_alloc_free_epoch     crates/gnn/tests/alloc_free_epoch.rs
for f in tests/*.rs; do
  base="$(basename "$f" .rs)"
  build_test "t_${base}" "$f"
done

echo "== stub harness: bench-profile binaries =="
OPT_EXTERNS="$(externs "$OPT")"
build_bin() { # $1 = bin name, $2 = source path
  local bin="$BIN/$1"
  [ -f "$2" ] || return 0
  if [ -f "$bin" ] && [ -z "$(find "$2" crates src -name '*.rs' -newer "$bin" -print -quit 2>/dev/null)" ]; then
    return
  fi
  echo "  [bin $1]"
  rustc $EDITION $OPT_FLAGS --crate-name "$1" "$2" \
    -L "$DEPS" -L "$OPT" $OPT_EXTERNS -o "$bin"
}

build_bin repro    crates/bench/src/bin/repro.rs
build_bin kernels  crates/bench/src/bin/kernels.rs
build_bin quickstart          examples/quickstart.rs
build_bin case_study          examples/case_study.rs
build_bin explain_attribution examples/explain_attribution.rs
build_bin longitudinal        examples/longitudinal.rs

echo "build OK"

if [ "$mode" = "--test" ]; then
  echo "== stub harness: running tests =="
  fail=0
  for t in "$TESTS"/t_*; do
    name="$(basename "$t")"
    if ! out="$("$t" -q 2>&1)"; then
      echo "FAIL $name"
      printf '%s\n' "$out" | tail -40
      fail=1
    else
      summary="$(printf '%s\n' "$out" | grep -E '^test result' | head -1)"
      echo "ok   $name  $summary"
    fi
  done
  [ "$fail" -eq 0 ] && echo "ALL TESTS OK" || { echo "TEST FAILURES"; exit 1; }
fi
