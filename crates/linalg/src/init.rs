//! Random weight initialisers for the neural layers.

use rand::Rng;

use crate::Matrix;

/// Xavier/Glorot uniform initialisation: U(-a, a) with
/// `a = sqrt(6 / (fan_in + fan_out))`. Good default for tanh/linear.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

/// He/Kaiming uniform initialisation for ReLU networks:
/// U(-a, a) with `a = sqrt(6 / fan_in)`.
pub fn he_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-a..=a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_within_bounds_and_seeded() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 100, 50);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound + 1e-6));
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(w, xavier_uniform(&mut rng2, 100, 50));
    }

    #[test]
    fn he_has_wider_bound_than_xavier_for_equal_fans() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = he_uniform(&mut rng, 10, 10);
        let bound = (6.0f32 / 10.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound + 1e-6));
        // Non-degenerate: some mass away from zero.
        assert!(w.as_slice().iter().any(|x| x.abs() > bound / 4.0));
    }
}
