//! The TRAIL Knowledge Graph: typed graph + per-node feature store +
//! event metadata (paper Section IV-C).

use trail_graph::ids::LabelId;
use trail_graph::{Csr, GraphStore, NodeId, NodeKind};
use trail_ioc::features::{DomainEncoder, IpEncoder, UrlEncoder, DOMAIN_DIMS, IP_DIMS, URL_DIMS};
use trail_ioc::{IocKey, IocKeyRef, IocKind};

use crate::collector::AptRegistry;
use crate::sparse::{FeatureArena, SparseRef, SparseVec};

/// Metadata of one ingested event.
#[derive(Debug, Clone)]
pub struct EventInfo {
    /// The event's node in the graph.
    pub node: NodeId,
    /// Source report id.
    pub report_id: String,
    /// Day the report was created.
    pub day: u32,
    /// Resolved APT label.
    pub apt: u16,
}

/// The TRAIL Knowledge Graph.
pub struct Tkg {
    /// The underlying typed property graph.
    pub graph: GraphStore,
    /// The APT label space.
    pub registry: AptRegistry,
    /// Ingested events in ingestion order.
    pub events: Vec<EventInfo>,
    /// Per-node features in one arena slab (see [`FeatureArena`]) —
    /// no per-node heap allocations at paper scale.
    features: FeatureArena,
    /// Shared URL feature encoder (stable slot names).
    pub url_encoder: UrlEncoder,
    /// Shared IP feature encoder.
    pub ip_encoder: IpEncoder,
    /// Shared domain feature encoder.
    pub domain_encoder: DomainEncoder,
}

impl Tkg {
    /// Empty TKG over a label space.
    pub fn new(registry: AptRegistry) -> Self {
        Self {
            graph: GraphStore::new(),
            registry,
            events: Vec::new(),
            features: FeatureArena::new(),
            url_encoder: UrlEncoder::default(),
            ip_encoder: IpEncoder::default(),
            domain_encoder: DomainEncoder::default(),
        }
    }

    /// Number of APT classes.
    pub fn n_classes(&self) -> usize {
        self.registry.len()
    }

    /// Register an event node's metadata and label.
    pub fn add_event(&mut self, node: NodeId, report_id: &str, day: u32, apt: u16) {
        self.graph.set_label(node, LabelId(apt)).expect("valid event node");
        self.events.push(EventInfo { node, report_id: report_id.to_owned(), day, apt });
    }

    /// Look up an event by report id.
    pub fn event_by_report(&self, report_id: &str) -> Option<&EventInfo> {
        self.events.iter().find(|e| e.report_id == report_id)
    }

    /// Store an IOC node's feature vector (first write wins — repeated
    /// enrichment of a shared IOC is idempotent).
    pub fn set_features(&mut self, node: NodeId, features: SparseVec) {
        self.features.insert_if_absent(node.index(), &features);
    }

    /// True when the node already has features.
    pub fn has_features(&self, node: NodeId) -> bool {
        self.features.contains(node.index())
    }

    /// Borrow a node's features, if any were stored.
    pub fn features(&self, node: NodeId) -> Option<SparseRef<'_>> {
        self.features.get(node.index())
    }

    /// Heap bytes held by the feature store.
    pub fn feature_heap_bytes(&self) -> usize {
        self.features.heap_bytes()
    }

    /// Feature width for an IOC kind.
    pub fn dims_of(kind: IocKind) -> usize {
        match kind {
            IocKind::Url => URL_DIMS,
            IocKind::Ip => IP_DIMS,
            IocKind::Domain => DOMAIN_DIMS,
        }
    }

    /// Graph node kind for an IOC kind.
    pub fn node_kind(kind: IocKind) -> NodeKind {
        match kind {
            IocKind::Url => NodeKind::Url,
            IocKind::Ip => NodeKind::Ip,
            IocKind::Domain => NodeKind::Domain,
        }
    }

    /// Upsert the node for a canonical IOC identity. All IOC nodes are
    /// created through here (or with an equivalent key), so one
    /// indicator can never occupy two nodes under different spellings.
    pub fn upsert_ioc(&mut self, key: &IocKey) -> NodeId {
        self.upsert_ioc_ref(key.as_ref())
    }

    /// [`Self::upsert_ioc`] for the borrowed key form — the enrichment
    /// hot path passes identities through without cloning their text.
    pub fn upsert_ioc_ref(&mut self, key: IocKeyRef<'_>) -> NodeId {
        self.upsert_ioc_full(key).0
    }

    /// Upsert an IOC node and report whether it is new, in one index
    /// probe (no separate `find` + `upsert` round trip).
    pub fn upsert_ioc_full(&mut self, key: IocKeyRef<'_>) -> (NodeId, bool) {
        self.graph.upsert_node_full(Self::node_kind(key.kind()), key.text())
    }

    /// Find the node for a canonical IOC identity, if present.
    pub fn find_ioc(&self, key: &IocKey) -> Option<NodeId> {
        self.find_ioc_ref(key.as_ref())
    }

    /// [`Self::find_ioc`] for the borrowed key form.
    pub fn find_ioc_ref(&self, key: IocKeyRef<'_>) -> Option<NodeId> {
        self.graph.find_node(Self::node_kind(key.kind()), key.text())
    }

    /// Borrow an IOC's features by canonical identity, if its node
    /// exists and was enriched.
    pub fn features_by_key(&self, key: &IocKey) -> Option<SparseRef<'_>> {
        self.find_ioc(key).and_then(|node| self.features(node))
    }

    /// All nodes of an IOC kind that carry features, with the features,
    /// in ascending node-id order (the arena iterates by node index, so
    /// no sort is needed).
    pub fn featured_nodes(&self, kind: IocKind) -> Vec<(NodeId, SparseRef<'_>)> {
        let nk = Self::node_kind(kind);
        self.features
            .iter()
            .filter(|&(idx, _)| self.graph.node(NodeId::from(idx)).kind == nk)
            .map(|(idx, sv)| (NodeId::from(idx), sv))
            .collect()
    }

    /// Freeze the graph into a CSR for traversal / learning.
    pub fn csr(&self) -> Csr {
        Csr::from_store(&self.graph)
    }

    /// The APT labels of the events that directly reported `node`
    /// (deduplicated). Used to select "single-label" IOCs for Table III.
    pub fn reporting_apts(&self, node: NodeId) -> Vec<u16> {
        let mut apts: Vec<u16> = self
            .graph
            .in_neighbors(node)
            .iter()
            .filter(|(_, kind)| *kind == trail_graph::EdgeKind::InReport)
            .filter_map(|(src, _)| self.graph.node(*src).label())
            .map(|l| l.0)
            .collect();
        apts.sort_unstable();
        apts.dedup();
        apts
    }

    /// Number of distinct events that directly reported `node`
    /// (the "reuse" count of Fig. 4).
    pub fn reuse_count(&self, node: NodeId) -> usize {
        self.graph
            .in_neighbors(node)
            .iter()
            .filter(|(_, kind)| *kind == trail_graph::EdgeKind::InReport)
            .count()
    }

    /// Render the Table II analogue: nodes / edges / degree / first-order
    /// share / average reuse per node kind.
    pub fn stats_table(&self) -> String {
        let node_counts = self.graph.node_counts_by_kind();
        let edge_counts = self.graph.edge_endpoint_counts_by_kind();
        let mut first_order = [0usize; 5];
        let mut reuse_sum = [0usize; 5];
        let mut reuse_n = [0usize; 5];
        for (id, rec) in self.graph.iter_nodes() {
            let k = rec.kind.index();
            if rec.first_order() {
                first_order[k] += 1;
                reuse_sum[k] += self.reuse_count(id);
                reuse_n[k] += 1;
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:>8} | {:>9} {:>9} {:>11} {:>10} {:>10}\n",
            "Type", "Nodes", "Edges", "Avg.Degree", "1stOrder%", "Avg.Reuse"
        ));
        let mut total_nodes = 0;
        let mut total_first = 0;
        for kind in trail_graph::NodeKind::ALL {
            let k = kind.index();
            let n = node_counts[k];
            total_nodes += n;
            let deg = if n > 0 { edge_counts[k] as f64 / n as f64 } else { 0.0 };
            let (fo, reuse): (String, String) = match kind {
                trail_graph::NodeKind::Event | trail_graph::NodeKind::Asn => {
                    ("N/a".into(), "N/a".into())
                }
                _ => {
                    total_first += first_order[k];
                    let fo_pct = if n > 0 { 100.0 * first_order[k] as f64 / n as f64 } else { 0.0 };
                    let avg_reuse =
                        if reuse_n[k] > 0 { reuse_sum[k] as f64 / reuse_n[k] as f64 } else { 0.0 };
                    (format!("{fo_pct:.2}%"), format!("{avg_reuse:.3}"))
                }
            };
            out.push_str(&format!(
                "{:>8} | {:>9} {:>9} {:>11.3} {:>10} {:>10}\n",
                kind.name(),
                n,
                edge_counts[k],
                deg,
                fo,
                reuse
            ));
        }
        let total_edges = self.graph.edge_count();
        let avg_deg = if total_nodes > 0 { 2.0 * total_edges as f64 / total_nodes as f64 } else { 0.0 };
        let fo_pct = if total_nodes > 0 { 100.0 * total_first as f64 / total_nodes as f64 } else { 0.0 };
        out.push_str(&format!(
            "{:>8} | {:>9} {:>9} {:>11.3} {:>9.2}% {:>10}\n",
            "Total", total_nodes, total_edges, avg_deg, fo_pct, ""
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trail_graph::EdgeKind;

    fn tiny_tkg() -> Tkg {
        let mut tkg = Tkg::new(AptRegistry::new(3));
        let e0 = tkg.graph.upsert_node(NodeKind::Event, "r0");
        let e1 = tkg.graph.upsert_node(NodeKind::Event, "r1");
        let ip = tkg.graph.upsert_node(NodeKind::Ip, "1.1.1.1");
        tkg.graph.mark_first_order(ip);
        tkg.graph.add_edge(e0, ip, EdgeKind::InReport).unwrap();
        tkg.graph.add_edge(e1, ip, EdgeKind::InReport).unwrap();
        tkg.add_event(e0, "r0", 5, 0);
        tkg.add_event(e1, "r1", 9, 1);
        tkg
    }

    #[test]
    fn event_metadata_and_lookup() {
        let tkg = tiny_tkg();
        assert_eq!(tkg.events.len(), 2);
        let e = tkg.event_by_report("r1").unwrap();
        assert_eq!(e.apt, 1);
        assert_eq!(e.day, 9);
        assert!(tkg.event_by_report("nope").is_none());
    }

    #[test]
    fn reporting_apts_and_reuse() {
        let tkg = tiny_tkg();
        let ip = tkg.graph.find_node(NodeKind::Ip, "1.1.1.1").unwrap();
        assert_eq!(tkg.reporting_apts(ip), vec![0, 1]); // multi-label IOC
        assert_eq!(tkg.reuse_count(ip), 2);
    }

    #[test]
    fn feature_store_first_write_wins() {
        let mut tkg = tiny_tkg();
        let ip = tkg.graph.find_node(NodeKind::Ip, "1.1.1.1").unwrap();
        tkg.set_features(ip, SparseVec::from_dense(&[1.0, 0.0]));
        tkg.set_features(ip, SparseVec::from_dense(&[9.0, 9.0]));
        assert_eq!(tkg.features(ip).unwrap().get(0), 1.0);
        assert!(tkg.has_features(ip));
    }

    #[test]
    fn featured_nodes_filters_by_kind() {
        let mut tkg = tiny_tkg();
        let ip = tkg.graph.find_node(NodeKind::Ip, "1.1.1.1").unwrap();
        let d = tkg.graph.upsert_node(NodeKind::Domain, "x.example");
        tkg.set_features(ip, SparseVec::from_dense(&[1.0]));
        tkg.set_features(d, SparseVec::from_dense(&[2.0]));
        assert_eq!(tkg.featured_nodes(IocKind::Ip).len(), 1);
        assert_eq!(tkg.featured_nodes(IocKind::Domain).len(), 1);
        assert_eq!(tkg.featured_nodes(IocKind::Url).len(), 0);
    }

    #[test]
    fn stats_table_mentions_all_kinds() {
        let tkg = tiny_tkg();
        let table = tkg.stats_table();
        for name in ["Events", "IPs", "URLs", "Domains", "ASNs", "Total"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn ioc_key_upsert_and_find_share_one_node() {
        let mut tkg = tiny_tkg();
        let key = IocKey::parse(IocKind::Domain, "ThreeBody[.]CN.").unwrap();
        let node = tkg.upsert_ioc(&key);
        // Any raw spelling of the same indicator resolves to that node.
        for raw in ["threebody.cn", "THREEBODY.cn", "threebody[.]cn."] {
            let k = IocKey::parse(IocKind::Domain, raw).unwrap();
            assert_eq!(tkg.find_ioc(&k), Some(node), "{raw:?}");
            assert_eq!(tkg.upsert_ioc(&k), node, "{raw:?} upserted a second node");
        }
        assert_eq!(tkg.graph.key(node), "threebody.cn");
        // The borrowed-key forms resolve identically, with no clone.
        assert_eq!(tkg.find_ioc_ref(key.as_ref()), Some(node));
        assert_eq!(tkg.upsert_ioc_full(key.as_ref()), (node, false));
    }

    #[test]
    fn features_by_key_resolves_canonically() {
        let mut tkg = tiny_tkg();
        let key = IocKey::parse(IocKind::Ip, "1.1.1.1").unwrap();
        let node = tkg.find_ioc(&key).expect("seeded in tiny_tkg");
        tkg.set_features(node, SparseVec::from_dense(&[4.0]));
        let via_noisy = IocKey::parse(IocKind::Ip, " 1.1.1[.]1 ").unwrap();
        assert_eq!(tkg.features_by_key(&via_noisy).unwrap().get(0), 4.0);
        let absent = IocKey::parse(IocKind::Ip, "9.9.9.9").unwrap();
        assert!(tkg.features_by_key(&absent).is_none());
    }

    #[test]
    fn dims_match_encoders() {
        assert_eq!(Tkg::dims_of(IocKind::Url), 1517);
        assert_eq!(Tkg::dims_of(IocKind::Ip), 507);
        assert_eq!(Tkg::dims_of(IocKind::Domain), 115);
    }
}
