//! Softmax cross-entropy — the optimisation target of the paper's MLP,
//! GNN and the classification head everywhere.

use trail_linalg::Matrix;

/// Mean softmax cross-entropy over a batch.
///
/// Returns `(loss, d_logits)` where `d_logits = (softmax - onehot)/n`,
/// ready to feed the network's backward pass.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u16]) -> (f32, Matrix) {
    let mut grad = logits.clone();
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`softmax_cross_entropy`] writing `d_logits` into a caller-owned
/// matrix of `logits`' shape (the temperature/probability scratch is
/// the gradient buffer itself, so the hot training loop allocates
/// nothing). Returns the loss.
pub fn softmax_cross_entropy_into(logits: &Matrix, labels: &[u16], grad: &mut Matrix) -> f32 {
    assert_eq!(logits.rows(), labels.len());
    assert_eq!(logits.shape(), grad.shape());
    let n = logits.rows().max(1) as f32;
    grad.as_mut_slice().copy_from_slice(logits.as_slice());
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        trail_linalg::vector::softmax_inplace(row);
        let p = row[label as usize].max(1e-12);
        loss -= p.ln();
        row[label as usize] -= 1.0;
        for v in row.iter_mut() {
            *v /= n;
        }
    }
    loss / n
}

/// Mean squared error and its gradient (`2(x̂ - x)/numel`), used by the
/// autoencoder reconstruction loss (paper Eq. 5).
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape());
    let numel = (pred.rows() * pred.cols()).max(1) as f32;
    let mut grad = pred.clone();
    grad.sub_assign(target).expect("same shape");
    let loss = grad.as_slice().iter().map(|d| d * d).sum::<f32>() / numel;
    grad.scale(2.0 / numel);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Matrix::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 10.0, 0.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
        assert!(grad.as_slice().iter().all(|g| g.abs() < 1e-3));
    }

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Matrix::zeros(1, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[2]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
        // Gradient: p - onehot = 0.25 everywhere except 0.25-1 at label.
        assert!((grad[(0, 0)] - 0.25).abs() < 1e-6);
        assert!((grad[(0, 2)] + 0.75).abs() < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        for row in grad.rows_iter() {
            assert!(row.iter().sum::<f32>().abs() < 1e-6);
        }
    }

    #[test]
    fn mse_basics() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 3.0]).unwrap();
        let target = Matrix::from_vec(1, 2, vec![0.0, 0.0]).unwrap();
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 5.0).abs() < 1e-6);
        assert!((grad[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((grad[(0, 1)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn numeric_gradient_check() {
        let logits = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.9]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp[(0, c)] += eps;
            let mut lm = logits.clone();
            lm[(0, c)] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &[1]);
            let (fm, _) = softmax_cross_entropy(&lm, &[1]);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((grad[(0, c)] - numeric).abs() < 1e-3, "col {c}");
        }
    }
}
