//! Hyper-parameter search: Tree-of-Parzen-Estimators (Bergstra et al.
//! 2013), the algorithm behind Hyperopt, which the paper uses to tune
//! XGBoost and Random Forest.
//!
//! TPE sorts completed trials by score, splits them into a "good" head
//! (fraction gamma) and a "bad" tail, fits a kernel-density estimate to
//! each per dimension, then proposes the candidate maximising the
//! density ratio l(x)/g(x) among samples drawn from the good KDE.

use rand::Rng;

/// One search dimension.
#[derive(Debug, Clone, Copy)]
pub enum ParamSpec {
    /// Uniform over `[lo, hi]`.
    Uniform(f32, f32),
    /// Log-uniform over `[lo, hi]` (both positive).
    LogUniform(f32, f32),
    /// Integer-uniform over `[lo, hi]` inclusive.
    Int(i64, i64),
}

impl ParamSpec {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        match *self {
            ParamSpec::Uniform(lo, hi) => rng.gen_range(lo..=hi),
            ParamSpec::LogUniform(lo, hi) => {
                (rng.gen_range(lo.ln()..=hi.ln())).exp()
            }
            ParamSpec::Int(lo, hi) => rng.gen_range(lo..=hi) as f32,
        }
    }

    fn clamp(&self, v: f32) -> f32 {
        match *self {
            ParamSpec::Uniform(lo, hi) | ParamSpec::LogUniform(lo, hi) => v.clamp(lo, hi),
            ParamSpec::Int(lo, hi) => v.round().clamp(lo as f32, hi as f32),
        }
    }

    fn span(&self) -> f32 {
        match *self {
            ParamSpec::Uniform(lo, hi) => hi - lo,
            ParamSpec::LogUniform(lo, hi) => hi.ln() - lo.ln(),
            ParamSpec::Int(lo, hi) => (hi - lo) as f32,
        }
    }

    /// Coordinate used for KDE math (log space for LogUniform).
    fn to_internal(&self, v: f32) -> f32 {
        match *self {
            ParamSpec::LogUniform(..) => v.max(1e-12).ln(),
            _ => v,
        }
    }

    fn from_internal(&self, v: f32) -> f32 {
        match *self {
            ParamSpec::LogUniform(..) => v.exp(),
            _ => v,
        }
    }
}

/// A completed trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// Parameter values in spec order.
    pub values: Vec<f32>,
    /// Objective score — **lower is better** (negate accuracies).
    pub score: f64,
}

/// TPE optimiser state.
#[derive(Debug)]
pub struct Tpe {
    specs: Vec<(String, ParamSpec)>,
    trials: Vec<Trial>,
    /// Fraction of trials treated as "good".
    pub gamma: f32,
    /// Random trials before TPE kicks in.
    pub n_startup: usize,
    /// Candidates drawn from the good KDE per suggestion.
    pub n_candidates: usize,
}

impl Tpe {
    /// New optimiser over the given named dimensions.
    pub fn new(specs: Vec<(String, ParamSpec)>) -> Self {
        assert!(!specs.is_empty());
        Self { specs, trials: Vec::new(), gamma: 0.25, n_startup: 8, n_candidates: 24 }
    }

    /// Dimension names.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Suggest the next parameter vector.
    pub fn suggest<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f32> {
        if self.trials.len() < self.n_startup {
            return self.specs.iter().map(|(_, s)| s.sample(rng)).collect();
        }
        // Sort by score ascending; split good/bad.
        let mut order: Vec<usize> = (0..self.trials.len()).collect();
        order.sort_by(|&a, &b| {
            self.trials[a].score.partial_cmp(&self.trials[b].score).unwrap_or(std::cmp::Ordering::Equal)
        });
        let n_good = ((self.trials.len() as f32 * self.gamma).ceil() as usize).max(1);
        let good: Vec<&Trial> = order[..n_good].iter().map(|&i| &self.trials[i]).collect();
        let bad: Vec<&Trial> = order[n_good..].iter().map(|&i| &self.trials[i]).collect();

        let mut best: Option<(Vec<f32>, f32)> = None;
        for _ in 0..self.n_candidates {
            let mut candidate = Vec::with_capacity(self.specs.len());
            let mut ratio = 0.0f32; // log of l/g
            for (d, (_, spec)) in self.specs.iter().enumerate() {
                let bw = (spec.span() / (good.len() as f32).sqrt()).max(1e-3);
                // Sample from the good KDE: pick a good trial, jitter.
                let center = spec.to_internal(good[rng.gen_range(0..good.len())].values[d]);
                let x = center + bw * sample_standard_normal(rng);
                let value = spec.clamp(spec.from_internal(x));
                let xi = spec.to_internal(value);
                let l = kde_density(&good, d, spec, xi, bw);
                let g = kde_density(&bad, d, spec, xi, bw).max(1e-9);
                ratio += (l.max(1e-9) / g).ln();
                candidate.push(value);
            }
            if best.as_ref().map_or(true, |(_, r)| ratio > *r) {
                best = Some((candidate, ratio));
            }
        }
        best.expect("candidates generated").0
    }

    /// Record a completed trial.
    pub fn observe(&mut self, values: Vec<f32>, score: f64) {
        assert_eq!(values.len(), self.specs.len());
        self.trials.push(Trial { values, score });
    }

    /// Best trial so far (lowest score).
    pub fn best(&self) -> Option<&Trial> {
        self.trials.iter().min_by(|a, b| {
            a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Run a full optimisation loop against an objective.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        n_trials: usize,
        mut objective: impl FnMut(&[f32]) -> f64,
    ) -> Trial {
        for _ in 0..n_trials {
            let values = self.suggest(rng);
            let score = objective(&values);
            self.observe(values, score);
        }
        self.best().expect("at least one trial").clone()
    }
}

fn kde_density(trials: &[&Trial], dim: usize, spec: &ParamSpec, x: f32, bw: f32) -> f32 {
    if trials.is_empty() {
        return 0.0;
    }
    let norm = 1.0 / (trials.len() as f32 * bw * (2.0 * std::f32::consts::PI).sqrt());
    trials
        .iter()
        .map(|t| {
            let c = spec.to_internal(t.values[dim]);
            let z = (x - c) / bw;
            (-0.5 * z * z).exp()
        })
        .sum::<f32>()
        * norm
}

/// Box–Muller standard normal.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(1e-6..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn finds_quadratic_minimum() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tpe = Tpe::new(vec![("x".into(), ParamSpec::Uniform(-10.0, 10.0))]);
        let best = tpe.run(&mut rng, 60, |v| ((v[0] - 3.0) as f64).powi(2));
        assert!((best.values[0] - 3.0).abs() < 1.0, "best {:?}", best.values);
    }

    #[test]
    fn beats_pure_random_on_average() {
        // On a 2-D bowl, TPE's best-of-60 should beat random's best-of-60
        // across seeds (not necessarily each seed).
        let mut tpe_wins = 0;
        for seed in 0..5u64 {
            let objective = |v: &[f32]| ((v[0] - 1.0) as f64).powi(2) + ((v[1] + 2.0) as f64).powi(2);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tpe = Tpe::new(vec![
                ("a".into(), ParamSpec::Uniform(-5.0, 5.0)),
                ("b".into(), ParamSpec::Uniform(-5.0, 5.0)),
            ]);
            let tpe_best = tpe.run(&mut rng, 60, objective).score;
            let mut rng2 = StdRng::seed_from_u64(seed + 1000);
            let random_best = (0..60)
                .map(|_| {
                    let v = [rng2.gen_range(-5.0f32..5.0), rng2.gen_range(-5.0f32..5.0)];
                    objective(&v)
                })
                .fold(f64::INFINITY, f64::min);
            if tpe_best <= random_best {
                tpe_wins += 1;
            }
        }
        assert!(tpe_wins >= 3, "TPE won only {tpe_wins}/5");
    }

    #[test]
    fn int_spec_yields_integers() {
        let mut rng = StdRng::seed_from_u64(2);
        let tpe = Tpe::new(vec![("n".into(), ParamSpec::Int(1, 10))]);
        for _ in 0..20 {
            let v = tpe.suggest(&mut rng)[0];
            assert!((1.0..=10.0).contains(&v));
        }
    }

    #[test]
    fn log_uniform_stays_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut tpe = Tpe::new(vec![("lr".into(), ParamSpec::LogUniform(1e-4, 1.0))]);
        for _ in 0..30 {
            let v = tpe.suggest(&mut rng);
            assert!(v[0] >= 1e-4 - 1e-9 && v[0] <= 1.0 + 1e-6, "{v:?}");
            tpe.observe(v, 1.0);
        }
    }

    #[test]
    fn best_tracks_minimum() {
        let mut tpe = Tpe::new(vec![("x".into(), ParamSpec::Uniform(0.0, 1.0))]);
        tpe.observe(vec![0.5], 2.0);
        tpe.observe(vec![0.2], 1.0);
        tpe.observe(vec![0.9], 3.0);
        assert_eq!(tpe.best().unwrap().values, vec![0.2]);
    }
}
