//! Refanging of defensively obfuscated IOC text.
//!
//! Threat reports "defang" IOCs so they cannot be clicked:
//! `hxxp://threebody[.]cn/trisolaris.php` (the paper's own example).
//! All parsers in this crate accept defanged input via [`refang`].

/// Undo the common defanging conventions:
/// `hxxp`/`hXXp` → `http`, `[.]`/`(.)`/`{.}` → `.`, `[:]` → `:`,
/// `[at]`/`(at)` → `@`, and surrounding whitespace.
pub fn refang(s: &str) -> String {
    let mut out = s.trim().to_owned();
    // Scheme first, case-insensitively, only at the start.
    for (pat, rep) in [("hxxps://", "https://"), ("hxxp://", "http://")] {
        if out.len() >= pat.len() && out[..pat.len()].eq_ignore_ascii_case(pat) {
            out = format!("{rep}{}", &out[pat.len()..]);
            break;
        }
    }
    for (pat, rep) in
        [("[.]", "."), ("(.)", "."), ("{.}", "."), ("[:]", ":"), ("[at]", "@"), ("(at)", "@"), ("[@]", "@")]
    {
        out = out.replace(pat, rep);
    }
    out
}

/// Defang text for safe display: `.` → `[.]` in the host part and
/// `http` → `hxxp`. Inverse (up to convention) of [`refang`].
pub fn defang(s: &str) -> String {
    let mut out = s.replace('.', "[.]");
    if let Some(rest) = out.strip_prefix("https://") {
        out = format!("hxxps://{rest}");
    } else if let Some(rest) = out.strip_prefix("http://") {
        out = format!("hxxp://{rest}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_refangs() {
        assert_eq!(refang("hxxp://threebody[.]cn/trisolaris.php"), "http://threebody.cn/trisolaris.php");
    }

    #[test]
    fn refang_variants() {
        assert_eq!(refang("hXXps://a[.]b"), "https://a.b");
        assert_eq!(refang("  1.0.36[.]127 "), "1.0.36.127");
        assert_eq!(refang("v5y7s3[.]l2twn2[.]club"), "v5y7s3.l2twn2.club");
        assert_eq!(refang("user[at]mail(.)example"), "user@mail.example");
        assert_eq!(refang("plain.example"), "plain.example");
    }

    #[test]
    fn defang_roundtrip() {
        let original = "http://a.b.example/x";
        assert_eq!(refang(&defang(original)), original);
    }
}
