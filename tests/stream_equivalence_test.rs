//! Differential tests proving the streaming runtime equivalent to
//! batch ingestion — the acceptance gate of the streaming subsystem.
//!
//! Every test here compares two (or more) executions that consume the
//! same reports through different schedules and asserts *bitwise*
//! agreement: TKG fingerprints, CSR bytes (via `PartialEq`), model
//! weight fingerprints, per-tick result series, and `StudyOutput`s.
//! The comparisons are exact — no tolerances — because the streaming
//! design claims determinism, not approximation:
//!
//! * stream == stream across micro-batch partitions {1, 7, 64} and
//!   arbitrary random partitions (proptest);
//! * stream == the batch system path (`TrailSystem::ingest_window`);
//! * monthly-ticked stream == `run_monthly_study`, output for output;
//! * crash mid-stream + replay == uninterrupted run, under the PR 4
//!   chaos harness (breaker-armed client, 55 % transient faults);
//! * the latency-budget ledger reconciles exactly with the obs
//!   counters for any partition and budget (proptest).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use trail::attribute::GnnEvalConfig;
use trail::longitudinal::{run_monthly_study, StudyConfig};
use trail::stream::{tkg_fingerprint, AsofPolicy, StreamConfig, StreamRuntime};
use trail::system::TrailSystem;
use trail_gnn::{FineTune, TrainConfig};
use trail_ioc::report::RawReport;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_osint::{ChaosPlan, CircuitBreaker, OsintClient, World, WorldConfig, DAYS_PER_MONTH};

const WORLD_SEED: u64 = 123;
const RNG_SEED: u64 = 7;

/// Serialize tests that touch the process-global `trail_obs` registry.
fn obs_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    trail_obs::set_enabled(true);
    trail_obs::reset();
    g
}

fn tiny_client(world_seed: u64) -> OsintClient {
    OsintClient::new(Arc::new(World::generate(WorldConfig::tiny(world_seed))))
}

/// A breaker-armed client over a tiny world perturbed by `plan` — the
/// PR 4 chaos harness, now driving the streaming path.
fn chaos_client(plan: &ChaosPlan, world_seed: u64) -> OsintClient {
    let mut cfg = WorldConfig::tiny(world_seed);
    plan.apply(&mut cfg);
    let mut client = OsintClient::new(Arc::new(World::generate(cfg)));
    client.set_breaker(Arc::new(CircuitBreaker::default()));
    client
}

/// The same hyper-parameters the incremental-study suite pins, so the
/// stream-vs-study comparison runs against a known-good batch config.
fn study_cfg() -> StudyConfig {
    StudyConfig {
        months: 2,
        gnn_layers: 2,
        gnn: GnnEvalConfig {
            hidden: 12,
            train: TrainConfig { lr: 0.02, epochs: 15, patience: 0 },
            val_fraction: 0.0,
            l2_normalize: true,
            label_visible_fraction: 0.5,
            sampled_neighbor_cap: None,
        },
        ae: AutoencoderConfig { hidden: 16, code: 6, epochs: 1, batch_size: 64, lr: 1e-3 },
        fine_tune: FineTune { lr: 0.01, epochs: 3 },
    }
}

fn stream_cfg(cutoff: u32, tick_every: Option<usize>, budget_us: u64) -> StreamConfig {
    StreamConfig {
        study: study_cfg(),
        asof: AsofPolicy::WindowEnd { origin: cutoff, stride: DAYS_PER_MONTH },
        tick_every,
        budget_us,
    }
}

/// Build a runtime over `client`'s world plus the full post-cutoff
/// report schedule in canonical arrival order.
fn runtime_and_schedule(
    client: OsintClient,
    tick_every: Option<usize>,
    budget_us: u64,
) -> (StreamRuntime, Vec<RawReport>, u32) {
    let cutoff = client.world().config.cutoff_day;
    let horizon = client.world().config.horizon_day();
    let schedule = client.stream_reports(cutoff, horizon);
    let sys = TrailSystem::build(client, cutoff);
    let cfg = stream_cfg(cutoff, tick_every, budget_us);
    (StreamRuntime::new(StdRng::seed_from_u64(RNG_SEED), sys, cfg), schedule, cutoff)
}

/// Push `schedule` split into contiguous chunks drawn cyclically from
/// `sizes`, then drain with a final tick.
fn run_partitioned(rt: &mut StreamRuntime, schedule: &[RawReport], sizes: &[usize]) {
    let mut i = 0;
    let mut s = 0;
    while i < schedule.len() {
        let k = sizes[s % sizes.len()].max(1).min(schedule.len() - i);
        rt.push_batch(&schedule[i..i + k]);
        i += k;
        s += 1;
    }
    rt.finish();
}

/// The everything-at-once baseline every partition must match. Cached:
/// proptest cases and the micro-batch test compare against one run.
fn whole_batch_baseline() -> &'static (u64, u64, usize) {
    static BASELINE: OnceLock<(u64, u64, usize)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let (mut rt, schedule, _) = runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), u64::MAX);
        rt.push_batch(&schedule);
        rt.finish();
        (rt.tkg_fingerprint(), rt.model_fingerprint(), rt.tick_reports().len())
    })
}

/// Acceptance criterion: streaming at micro-batch sizes 1, 7 and 64
/// produces a TKG, model state, tick series and ledger bitwise-equal
/// to pushing the whole schedule as one batch — with an automatic
/// every-5-events tick cadence, so several delta-merge/fine-tune
/// cycles happen mid-stream.
#[test]
fn stream_equals_batch_at_micro_batch_sizes_1_7_64() {
    let (mut base, schedule, _) = runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), u64::MAX);
    assert!(schedule.len() >= 10, "world too small to exercise partitioning");
    base.push_batch(&schedule);
    base.finish();

    for k in [1usize, 7, 64] {
        let (mut rt, schedule_k, _) =
            runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), u64::MAX);
        assert_eq!(schedule_k, schedule, "same world must emit the same schedule");
        run_partitioned(&mut rt, &schedule_k, &[k]);

        assert_eq!(
            rt.tkg_fingerprint(),
            base.tkg_fingerprint(),
            "TKG fingerprint diverged at micro-batch size {k}"
        );
        assert_eq!(
            rt.model_fingerprint(),
            base.model_fingerprint(),
            "model state diverged at micro-batch size {k}"
        );
        assert_eq!(rt.tick_reports(), base.tick_reports(), "tick series diverged at size {k}");
        assert_eq!(rt.ledger(), base.ledger(), "ledger diverged at size {k}");
        assert_eq!(rt.collect_stats(), base.collect_stats());
        assert_eq!(rt.ingest_stats(), base.ingest_stats());
        // CSR bytes, not just fingerprints: the frozen delta-merged CSR
        // must equal the baseline's *and* a from-scratch rebuild.
        assert_eq!(rt.frozen_csr(), base.frozen_csr(), "frozen CSR diverged at size {k}");
        assert_eq!(
            *rt.frozen_csr(),
            rt.system().tkg.csr(),
            "delta-merged CSR differs from a full rebuild at size {k}"
        );
    }
}

/// The streamed TKG equals the batch system path: driving
/// `TrailSystem::ingest_window` month by month builds byte-for-byte
/// the same graph as pushing each month's reports one at a time with
/// the window-end as-of policy.
#[test]
fn streamed_tkg_matches_batch_ingest_window() {
    let client = tiny_client(WORLD_SEED);
    let cutoff = client.world().config.cutoff_day;
    let months = client.world().config.study_months;
    let mut batch_sys = TrailSystem::build(client, cutoff);
    for m in 0..months {
        let lo = cutoff + m * DAYS_PER_MONTH;
        batch_sys.ingest_window(lo, lo + DAYS_PER_MONTH);
    }

    let (mut rt, _, _) = runtime_and_schedule(tiny_client(WORLD_SEED), None, u64::MAX);
    for m in 0..months {
        let lo = cutoff + m * DAYS_PER_MONTH;
        let window = rt.system().client.stream_reports(lo, lo + DAYS_PER_MONTH);
        for r in &window {
            rt.push(r);
        }
        rt.tick();
    }

    let streamed = &rt.system().tkg;
    assert_eq!(streamed.graph.node_count(), batch_sys.tkg.graph.node_count());
    assert_eq!(streamed.graph.edge_count(), batch_sys.tkg.graph.edge_count());
    assert_eq!(streamed.csr(), batch_sys.tkg.csr(), "streamed CSR != batch CSR");
    assert_eq!(tkg_fingerprint(streamed), tkg_fingerprint(&batch_sys.tkg));
    assert_eq!(*rt.frozen_csr(), batch_sys.tkg.csr(), "frozen merge chain != batch rebuild");
    assert_eq!(&rt.system().ingest_stats, &batch_sys.ingest_stats);
    assert_eq!(rt.system().asof_day, batch_sys.asof_day);
}

/// Deep batch equivalence: a stream ticked at month boundaries
/// converts into a `StudyOutput` bitwise-identical to
/// `run_monthly_study` over the same world, config and RNG seed —
/// accuracies, confusion matrix, ingest taxonomy, everything.
#[test]
fn monthly_ticked_stream_reproduces_study_output_bitwise() {
    let cfg = study_cfg();
    let client = tiny_client(WORLD_SEED);
    let cutoff = client.world().config.cutoff_day;
    let sys = TrailSystem::build(client, cutoff);
    let mut rng = StdRng::seed_from_u64(RNG_SEED);
    let batch = run_monthly_study(&mut rng, sys, &cfg);

    let (mut rt, _, _) = runtime_and_schedule(tiny_client(WORLD_SEED), None, u64::MAX);
    for m in 0..cfg.months {
        let lo = cutoff + m * DAYS_PER_MONTH;
        let window = rt.system().client.stream_reports(lo, lo + DAYS_PER_MONTH);
        rt.push_batch(&window);
        rt.tick();
    }
    let streamed = rt.into_study_output();

    assert_eq!(streamed, batch, "streamed study output != batch study output");
}

/// Kill-and-resume drill on the streaming path, under the chaos
/// harness (seed 1: survivable feed, 55 % transient faults, breaker
/// armed). The stream's recovery model is event-sourced replay — the
/// feed is the durable log — so "resume" is: fresh runtime, same seed,
/// replay the full schedule. The drill kills mid-stream at each of the
/// plan's kill points and checks the replayed run is bitwise-identical
/// to one that never crashed.
#[test]
fn kill_and_resume_replay_under_chaos_is_bitwise_identical() {
    let plan = ChaosPlan::from_seed(1);
    assert!(!plan.feed_dead, "drill needs a survivable feed");

    let run_full = || {
        let (mut rt, schedule, _) =
            runtime_and_schedule(chaos_client(&plan, WORLD_SEED), Some(4), u64::MAX);
        run_partitioned(&mut rt, &schedule, &[3]);
        rt
    };
    let uninterrupted = run_full();

    for &kill_at in &plan.kill_windows {
        // Crash: push only a prefix, then abandon the runtime (drop =
        // power loss; no checkpoint exists for the stream by design).
        {
            let (mut rt, schedule, _) =
                runtime_and_schedule(chaos_client(&plan, WORLD_SEED), Some(4), u64::MAX);
            let cut = (kill_at as usize + 1).min(schedule.len());
            rt.push_batch(&schedule[..cut]);
            // dropped here, mid-stream, ticks possibly half-consumed
        }
        // Resume: replay the whole feed from scratch.
        let replayed = run_full();
        assert_eq!(
            replayed.tkg_fingerprint(),
            uninterrupted.tkg_fingerprint(),
            "replay after kill point {kill_at} diverged (TKG)"
        );
        assert_eq!(
            replayed.model_fingerprint(),
            uninterrupted.model_fingerprint(),
            "replay after kill point {kill_at} diverged (model)"
        );
        assert_eq!(replayed.tick_reports(), uninterrupted.tick_reports());
        assert_eq!(replayed.ledger(), uninterrupted.ledger());
    }
}

/// Latency-budget enforcement is surfacing, not shedding: a zero
/// budget flags every event as exceeded, yet the graph, model and tick
/// series stay bitwise-identical to an unlimited-budget run.
#[test]
fn budget_pressure_never_changes_the_graph_or_model() {
    let (mut relaxed, schedule, _) =
        runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), u64::MAX);
    run_partitioned(&mut relaxed, &schedule, &[2]);

    let (mut strained, schedule2, _) = runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), 0);
    run_partitioned(&mut strained, &schedule2, &[2]);

    let l = strained.ledger();
    assert_eq!(l.exceeded, l.issued, "zero budget must flag every event");
    assert_eq!(l.within_budget, 0);
    assert!(l.reconciles());
    assert_eq!(strained.tkg_fingerprint(), relaxed.tkg_fingerprint());
    assert_eq!(strained.model_fingerprint(), relaxed.model_fingerprint());
    assert_eq!(strained.tick_reports(), relaxed.tick_reports());
    assert_eq!(l.attributed, relaxed.ledger().attributed);
    assert_eq!(l.dropped, relaxed.ledger().dropped);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any partition of the stream into contiguous micro-batches of
    /// arbitrary sizes converges to the whole-batch TKG and model
    /// fingerprints and the same tick count.
    #[test]
    fn arbitrary_partitions_converge(sizes in proptest::collection::vec(1usize..10, 1..8)) {
        let &(tkg_fp, model_fp, n_ticks) = whole_batch_baseline();
        let (mut rt, schedule, _) =
            runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), u64::MAX);
        run_partitioned(&mut rt, &schedule, &sizes);
        prop_assert_eq!(rt.tkg_fingerprint(), tkg_fp, "partition {:?} diverged (TKG)", &sizes);
        prop_assert_eq!(rt.model_fingerprint(), model_fp, "partition {:?} diverged (model)", &sizes);
        prop_assert_eq!(rt.tick_reports().len(), n_ticks);
        prop_assert!(rt.ledger().reconciles());
    }

    /// Reordering arrivals *within* a micro-batch changes nothing:
    /// `push_batch` heals each batch into canonical order, so any
    /// rotation or reversal of any batch converges to the same state.
    #[test]
    fn within_batch_reordering_is_healed(
        k in 2usize..9,
        rot in 1usize..7,
        rev in any::<bool>(),
    ) {
        let &(tkg_fp, model_fp, _) = whole_batch_baseline();
        let (mut rt, schedule, _) =
            runtime_and_schedule(tiny_client(WORLD_SEED), Some(5), u64::MAX);
        let mut i = 0;
        while i < schedule.len() {
            let end = (i + k).min(schedule.len());
            let mut batch: Vec<RawReport> = schedule[i..end].to_vec();
            let len = batch.len();
            batch.rotate_left(rot % len);
            if rev {
                batch.reverse();
            }
            rt.push_batch(&batch);
            i = end;
        }
        rt.finish();
        prop_assert_eq!(rt.tkg_fingerprint(), tkg_fp, "k={} rot={} rev={}", k, rot, rev);
        prop_assert_eq!(rt.model_fingerprint(), model_fp, "k={} rot={} rev={}", k, rot, rev);
    }

    /// Under any chaos plan's transient-fault schedule, every partition
    /// of the stream converges to the same TKG fingerprint (faults are
    /// deterministic per key and attempt, so the fault schedule is part
    /// of the replayable history, not a source of divergence).
    #[test]
    fn fault_schedules_converge_across_partitions(
        plan_seed in 0u64..8,
        chunk in 1usize..8,
    ) {
        static BASELINES: OnceLock<Mutex<HashMap<u64, (u64, u64)>>> = OnceLock::new();
        let plan = ChaosPlan::from_seed(plan_seed);
        let run = |sizes: &[usize]| {
            let (mut rt, schedule, _) =
                runtime_and_schedule(chaos_client(&plan, WORLD_SEED), Some(5), u64::MAX);
            run_partitioned(&mut rt, &schedule, sizes);
            (rt.tkg_fingerprint(), rt.model_fingerprint())
        };
        let expected = {
            let mut map = BASELINES.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
            *map.entry(plan_seed).or_insert_with(|| run(&[usize::MAX]))
        };
        prop_assert_eq!(
            run(&[chunk]),
            expected,
            "plan {} chunk {} diverged from whole-batch run",
            plan_seed,
            chunk
        );
    }

    /// PR 3-style exact reconciliation: for any partition and any
    /// budget, `issued == within_budget + exceeded`,
    /// `issued == attributed + dropped`, and the obs counters agree
    /// with the ledger number for number.
    #[test]
    fn budget_ledger_reconciles_with_obs_counters(
        sizes in proptest::collection::vec(1usize..9, 1..6),
        budget_pick in 0usize..3,
    ) {
        let _g = obs_lock();
        let budget = [0u64, 50_000, u64::MAX][budget_pick];
        let (mut rt, schedule, _) =
            runtime_and_schedule(tiny_client(WORLD_SEED), Some(4), budget);
        run_partitioned(&mut rt, &schedule, &sizes);

        let l = rt.ledger();
        prop_assert!(l.reconciles(), "ledger does not reconcile: {:?}", l);
        prop_assert_eq!(l.issued as usize, schedule.len());
        prop_assert_eq!(trail_obs::counter_value("stream.events.issued"), l.issued);
        prop_assert_eq!(trail_obs::counter_value("stream.events.within_budget"), l.within_budget);
        prop_assert_eq!(trail_obs::counter_value("stream.events.exceeded"), l.exceeded);
        prop_assert_eq!(trail_obs::counter_value("stream.events.dropped"), l.dropped);
        prop_assert_eq!(trail_obs::counter_value("stream.ticks"), rt.tick_reports().len() as u64);
        // Attribution accounting closes against the TKG itself: every
        // attributed event is an event node ingested after the cutoff.
        prop_assert_eq!(
            l.attributed as usize + rt.pending_events(),
            l.attributed as usize,
            "finish() left events pending"
        );
    }
}
