//! Property-based tests over the core data structures and parsers.

use proptest::prelude::*;

use trail_graph::{Csr, EdgeKind, GraphStore, NodeKind};
use trail_ioc::defang::{defang, refang};
use trail_ioc::domain::DomainIoc;
use trail_ioc::ip::IpIoc;
use trail_ioc::url::UrlIoc;
use trail_ioc::vocab::Vocab;
use trail_linalg::Matrix;

proptest! {
    /// Any dotted quad in range parses and round-trips its octets.
    #[test]
    fn ipv4_roundtrip(a in 0u8..=255, b in 0u8..=255, c in 0u8..=255, d in 0u8..=255) {
        let text = format!("{a}.{b}.{c}.{d}");
        let ip = IpIoc::parse(&text).expect("valid dotted quad");
        prop_assert_eq!(ip.v4_octets(), Some([a, b, c, d]));
        prop_assert_eq!(ip.text, text);
    }

    /// Defang then refang is the identity on URLs made of safe chars.
    #[test]
    fn defang_refang_roundtrip(host in "[a-z]{3,10}", tld in "(com|net|ru|club)", path in "[a-z0-9]{1,8}") {
        let url = format!("http://{host}.{tld}/{path}");
        prop_assert_eq!(refang(&defang(&url)), url);
    }

    /// Valid LDH domains always parse and canonicalise to lowercase.
    #[test]
    fn domain_parse_accepts_ldh(label in "[a-z][a-z0-9]{0,12}", tld in "[a-z]{2,6}") {
        let d = DomainIoc::parse(&format!("{}.{}", label.to_uppercase(), tld)).expect("LDH domain");
        prop_assert_eq!(d.tld(), tld.as_str());
        prop_assert_eq!(d.text, format!("{label}.{tld}"));
    }

    /// Lexical features are finite and consistent with the text.
    #[test]
    fn domain_lexical_consistency(label in "[a-z][a-z0-9]{2,20}", tld in "[a-z]{2,4}") {
        let text = format!("{label}.{tld}");
        let d = DomainIoc::parse(&text).unwrap();
        let lex = d.lexical();
        prop_assert_eq!(lex.length as usize, text.len());
        prop_assert!(lex.digit_ratio >= 0.0 && lex.digit_ratio <= 1.0);
        prop_assert_eq!(lex.periods as usize, 1);
        prop_assert!(lex.entropy.is_finite());
    }

    /// URL parsing extracts the host it was given.
    #[test]
    fn url_host_extraction(host in "[a-z]{3,8}", tld in "(com|net|org)", depth in 0usize..3) {
        let path: String = (0..depth).map(|i| format!("/p{i}")).collect();
        let url = format!("https://{host}.{tld}{path}");
        let parsed = UrlIoc::parse(&url).unwrap();
        prop_assert_eq!(parsed.hosted_domain().unwrap().text.clone(), format!("{host}.{tld}"));
        prop_assert_eq!(parsed.lexical().path_depth as usize, depth);
    }

    /// Vocab slots are always in range and deterministic.
    #[test]
    fn vocab_slot_in_range(value in ".{0,40}", size in 1usize..500) {
        let v = Vocab::new("test", size, &[]);
        let s1 = v.slot(&value);
        let s2 = v.slot(&value);
        prop_assert!(s1 < size);
        prop_assert_eq!(s1, s2);
    }

    /// CSR degree sum equals twice the edge count for any event→IOC
    /// bipartite graph.
    #[test]
    fn csr_degree_sum(edges in proptest::collection::vec((0usize..10, 0usize..15), 0..60)) {
        let mut g = GraphStore::new();
        let events: Vec<_> = (0..10).map(|i| g.upsert_node(NodeKind::Event, &format!("e{i}"))).collect();
        let ips: Vec<_> = (0..15).map(|i| g.upsert_node(NodeKind::Ip, &format!("1.1.1.{i}"))).collect();
        for (e, i) in edges {
            let _ = g.add_edge(events[e], ips[i], EdgeKind::InReport);
        }
        let csr = Csr::from_store(&g);
        let degree_sum: usize = (0..csr.node_count()).map(|i| csr.degree(trail_graph::NodeId::from(i))).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(csr.half_edge_count(), 2 * g.edge_count());
    }

    /// Subgraph never invents nodes or edges.
    #[test]
    fn subgraph_is_monotone(keep_events in proptest::collection::vec(any::<bool>(), 8)) {
        let mut g = GraphStore::new();
        let mut events = Vec::new();
        let ip = g.upsert_node(NodeKind::Ip, "9.9.9.9");
        for (i, _) in keep_events.iter().enumerate() {
            let e = g.upsert_node(NodeKind::Event, &format!("e{i}"));
            g.add_edge(e, ip, EdgeKind::InReport).unwrap();
            events.push(e);
        }
        let (sub, mapping) = g.subgraph(|id, rec| {
            rec.kind != NodeKind::Event || keep_events[events.iter().position(|&e| e == id).unwrap()]
        });
        prop_assert!(sub.node_count() <= g.node_count());
        prop_assert!(sub.edge_count() <= g.edge_count());
        let kept = keep_events.iter().filter(|&&k| k).count();
        prop_assert_eq!(sub.node_count(), kept + 1);
        prop_assert_eq!(sub.edge_count(), kept);
        prop_assert_eq!(mapping.iter().filter(|m| m.is_some()).count(), kept + 1);
    }

    /// Matrix transpose is an involution and matmul distributes over
    /// the transpose pair ops used in backprop.
    #[test]
    fn transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let m = Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17 + seed as usize) % 11) as f32 - 5.0);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let other = Matrix::from_fn(rows, cols, |r, c| ((r + c * 3 + seed as usize) % 7) as f32);
        let fast = m.t_matmul(&other).unwrap();
        let slow = m.transpose().matmul(&other).unwrap();
        for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Softmax outputs a probability distribution for any finite input.
    #[test]
    fn softmax_distribution(values in proptest::collection::vec(-50.0f32..50.0, 1..20)) {
        let mut v = values;
        trail_linalg::vector::softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
