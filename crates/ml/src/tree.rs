//! CART classification trees (Gini impurity), the base learner of the
//! Random Forest and the unit the explanation module decomposes.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use trail_linalg::Matrix;

/// How many features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSampling {
    /// Consider every feature (single-tree CART).
    All,
    /// `sqrt(n_features)` — the Random Forest default.
    Sqrt,
    /// A fixed count.
    Fixed(usize),
}

impl FeatureSampling {
    fn count(self, n_features: usize) -> usize {
        match self {
            FeatureSampling::All => n_features,
            FeatureSampling::Sqrt => (n_features as f32).sqrt().ceil() as usize,
            FeatureSampling::Fixed(k) => k.min(n_features),
        }
        .max(1)
    }
}

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Feature subsampling per split.
    pub feature_sampling: FeatureSampling,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            feature_sampling: FeatureSampling::All,
        }
    }
}

/// A tree node. Every node stores its class distribution so prediction
/// paths can be decomposed into per-feature contributions (Saabas /
/// SHAP-style, see [`crate::explain`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node.
    Leaf {
        /// Class distribution of training samples reaching this node.
        proba: Vec<f32>,
    },
    /// Internal split: `row[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: u32,
        /// Split threshold.
        threshold: f32,
        /// Left child node index.
        left: u32,
        /// Right child node index.
        right: u32,
        /// Class distribution at this node (pre-split).
        proba: Vec<f32>,
    },
}

impl Node {
    /// The class distribution stored at this node.
    pub fn proba(&self) -> &[f32] {
        match self {
            Node::Leaf { proba } | Node::Split { proba, .. } => proba,
        }
    }
}

/// A fitted CART classification tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fit on the rows of `x` selected by `indices` (duplicates allowed —
    /// that is how the forest passes bootstrap samples).
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        x: &Matrix,
        y: &[u16],
        indices: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
    ) -> Self {
        assert_eq!(x.rows(), y.len());
        assert!(!indices.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = Self { nodes: Vec::new(), n_classes };
        let mut work = indices.to_vec();
        let features: Vec<u32> = (0..x.cols() as u32).collect();
        tree.grow(rng, x, y, &mut work, 0, cfg, &features);
        tree
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow the node arena (used by the explainer).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Class probabilities for one feature row.
    pub fn predict_proba_row(&self, row: &[f32]) -> &[f32] {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { proba } => return proba,
                Node::Split { feature, threshold, left, right, .. } => {
                    at = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// The node-index path a row takes from root to leaf.
    pub fn decision_path(&self, row: &[f32]) -> Vec<usize> {
        let mut path = vec![0usize];
        loop {
            match &self.nodes[*path.last().expect("non-empty")] {
                Node::Leaf { .. } => return path,
                Node::Split { feature, threshold, left, right, .. } => {
                    let next = if row[*feature as usize] <= *threshold { *left } else { *right };
                    path.push(next as usize);
                }
            }
        }
    }

    fn grow<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        x: &Matrix,
        y: &[u16],
        indices: &mut [usize],
        depth: usize,
        cfg: &TreeConfig,
        features: &[u32],
    ) -> u32 {
        let proba = class_distribution(y, indices, self.n_classes);
        let node_id = self.nodes.len() as u32;
        let pure = proba.iter().any(|&p| p >= 1.0 - 1e-6);
        if depth >= cfg.max_depth || indices.len() < cfg.min_samples_split || pure {
            self.nodes.push(Node::Leaf { proba });
            return node_id;
        }
        // Sample candidate features without replacement.
        let k = cfg.feature_sampling.count(features.len());
        let candidates: Vec<u32> = if k >= features.len() {
            features.to_vec()
        } else {
            let mut f = features.to_vec();
            f.partial_shuffle(rng, k);
            f.truncate(k);
            f
        };
        let Some((feature, threshold)) =
            best_gini_split(x, y, indices, &candidates, self.n_classes, cfg.min_samples_leaf)
        else {
            self.nodes.push(Node::Leaf { proba });
            return node_id;
        };
        // Partition in place.
        let mid = partition(x, indices, feature, threshold);
        if mid == 0 || mid == indices.len() {
            // Degenerate split (can only arise from floating-point edge
            // cases in the threshold): growing further would recurse
            // forever, so close the node out as a leaf.
            self.nodes.push(Node::Leaf { proba });
            return node_id;
        }
        // Reserve the split slot, then grow children.
        self.nodes.push(Node::Leaf { proba: proba.clone() }); // placeholder
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.grow(rng, x, y, left_idx, depth + 1, cfg, features);
        let right = self.grow(rng, x, y, right_idx, depth + 1, cfg, features);
        self.nodes[node_id as usize] = Node::Split { feature, threshold, left, right, proba };
        node_id
    }
}

impl crate::Classifier for DecisionTree {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for (r, row) in x.rows_iter().enumerate() {
            out.row_mut(r).copy_from_slice(self.predict_proba_row(row));
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

fn class_distribution(y: &[u16], indices: &[usize], n_classes: usize) -> Vec<f32> {
    let mut counts = vec![0f32; n_classes];
    for &i in indices {
        counts[y[i] as usize] += 1.0;
    }
    let total: f32 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

/// Stable in-place partition of `indices` by the split predicate;
/// returns the boundary. Order within halves is irrelevant to growth.
fn partition(x: &Matrix, indices: &mut [usize], feature: u32, threshold: f32) -> usize {
    let mut lo = 0usize;
    let mut hi = indices.len();
    while lo < hi {
        if x[(indices[lo], feature as usize)] <= threshold {
            lo += 1;
        } else {
            hi -= 1;
            indices.swap(lo, hi);
        }
    }
    lo
}

/// Exhaustive best Gini split over the candidate features.
fn best_gini_split(
    x: &Matrix,
    y: &[u16],
    indices: &[usize],
    candidates: &[u32],
    n_classes: usize,
    min_leaf: usize,
) -> Option<(u32, f32)> {
    let n = indices.len();
    let mut total_counts = vec![0f32; n_classes];
    for &i in indices {
        total_counts[y[i] as usize] += 1.0;
    }
    let parent_gini = gini(&total_counts, n as f32);

    let mut best: Option<(u32, f32, f32)> = None; // (feature, threshold, gain)
    let mut sorted: Vec<(f32, u16)> = Vec::with_capacity(n);
    for &f in candidates {
        sorted.clear();
        sorted.extend(indices.iter().map(|&i| (x[(i, f as usize)], y[i])));
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if sorted[0].0 == sorted[n - 1].0 {
            continue; // constant feature
        }
        let mut left_counts = vec![0f32; n_classes];
        for split_at in 1..n {
            left_counts[sorted[split_at - 1].1 as usize] += 1.0;
            // Only split between distinct values.
            if sorted[split_at].0 == sorted[split_at - 1].0 {
                continue;
            }
            if split_at < min_leaf || n - split_at < min_leaf {
                continue;
            }
            let nl = split_at as f32;
            let nr = (n - split_at) as f32;
            let right_counts: Vec<f32> =
                total_counts.iter().zip(&left_counts).map(|(&t, &l)| t - l).collect();
            let child =
                (nl / n as f32) * gini(&left_counts, nl) + (nr / n as f32) * gini(&right_counts, nr);
            let gain = parent_gini - child;
            if gain > 1e-9 && best.map_or(true, |(_, _, g)| gain > g) {
                // The midpoint of two adjacent f32 values can round up
                // to the upper value, which would send the upper rows
                // left under the `<=` partition and empty the right
                // child. Clamp to the lower value in that case — the
                // `<=` predicate still realises the same split.
                let (lo, hi) = (sorted[split_at - 1].0, sorted[split_at].0);
                let mid_t = 0.5 * (lo + hi);
                let threshold = if mid_t < hi { mid_t } else { lo };
                best = Some((f, threshold, gain));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[inline]
fn gini(counts: &[f32], total: f32) -> f32 {
    if total <= 0.0 {
        return 0.0;
    }
    let mut sum_sq = 0.0;
    for &c in counts {
        let p = c / total;
        sum_sq += p * p;
    }
    1.0 - sum_sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Classifier;
    use rand::{rngs::StdRng, SeedableRng};

    fn xor_data() -> (Matrix, Vec<u16>) {
        // XOR with slight jitter: not linearly separable, easy for a tree.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f32;
            let b = ((i / 2) % 2) as f32;
            let jitter = (i as f32 * 0.001) % 0.05;
            rows.extend_from_slice(&[a + jitter, b - jitter]);
            y.push(((a as u16) ^ (b as u16)) as u16);
        }
        (Matrix::from_vec(40, 2, rows).unwrap(), y)
    }

    #[test]
    fn learns_xor_exactly() {
        let (x, y) = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let tree = DecisionTree::fit(&mut rng, &x, &y, &idx, 2, &TreeConfig::default());
        let pred = tree.predict(&x);
        assert_eq!(pred, y);
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() };
        let stump = DecisionTree::fit(&mut rng, &x, &y, &idx, 2, &cfg);
        assert_eq!(stump.node_count(), 1);
        // Depth-0 tree outputs the prior everywhere.
        let proba = stump.predict_proba(&x);
        assert!((proba[(0, 0)] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn adjacent_float_values_split_without_panicking() {
        // Two adjacent f32 values whose naive midpoint `0.5*(a+b)`
        // rounds (ties-to-even in the sum) up to `b`, which used to
        // produce a one-sided partition and a debug_assert panic
        // during growth.
        let a = f32::from_bits(1.0f32.to_bits() + 1);
        let b = f32::from_bits(1.0f32.to_bits() + 2);
        assert_eq!(0.5 * (a + b), b, "test premise: midpoint rounds up");
        let x = Matrix::from_vec(4, 1, vec![a, a, b, b]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut rng = StdRng::seed_from_u64(7);
        let tree = DecisionTree::fit(&mut rng, &x, &y, &[0, 1, 2, 3], 2, &TreeConfig::default());
        // The clamped threshold must still separate the two classes.
        assert_eq!(tree.predict(&x), y);
    }

    #[test]
    fn pure_nodes_stop_growing() {
        let x = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let y = vec![0, 0, 0, 0];
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&mut rng, &x, &y, &[0, 1, 2, 3], 2, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn decision_path_starts_at_root_ends_at_leaf() {
        let (x, y) = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let tree = DecisionTree::fit(&mut rng, &x, &y, &idx, 2, &TreeConfig::default());
        let path = tree.decision_path(x.row(0));
        assert_eq!(path[0], 0);
        assert!(matches!(tree.nodes()[*path.last().unwrap()], Node::Leaf { .. }));
        assert!(path.len() >= 2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x = Matrix::from_vec(10, 1, (0..10).map(|i| i as f32).collect()).unwrap();
        let y: Vec<u16> = (0..10).map(|i| (i >= 9) as u16).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TreeConfig { min_samples_leaf: 3, ..TreeConfig::default() };
        let idx: Vec<usize> = (0..10).collect();
        let tree = DecisionTree::fit(&mut rng, &x, &y, &idx, 2, &cfg);
        // The only useful split (9 vs 1) violates min_leaf -> no split at
        // the boundary; any splits made leave >=3 samples per side.
        fn check(nodes: &[Node], at: usize, x: &Matrix, idx: &[usize]) {
            if let Node::Split { feature, threshold, left, right, .. } = &nodes[at] {
                let l: Vec<usize> = idx
                    .iter()
                    .copied()
                    .filter(|&i| x[(i, *feature as usize)] <= *threshold)
                    .collect();
                let r: Vec<usize> =
                    idx.iter().copied().filter(|&i| x[(i, *feature as usize)] > *threshold).collect();
                assert!(l.len() >= 3 && r.len() >= 3);
                check(nodes, *left as usize, x, &l);
                check(nodes, *right as usize, x, &r);
            }
        }
        check(tree.nodes(), 0, &x, &idx);
    }

    #[test]
    fn bootstrap_duplicates_are_fine() {
        let (x, y) = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let idx = vec![0usize; 10]; // degenerate bootstrap: one sample
        let tree = DecisionTree::fit(&mut rng, &x, &y, &idx, 2, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
    }
}
