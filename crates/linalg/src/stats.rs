//! Column statistics used by the standard scaler and batch normalisation.

use crate::Matrix;

/// Per-column mean of a matrix.
pub fn col_means(m: &Matrix) -> Vec<f32> {
    let mut out = m.col_sums();
    let n = m.rows().max(1) as f32;
    for x in &mut out {
        *x /= n;
    }
    out
}

/// Per-column (population) standard deviation given precomputed means.
pub fn col_stds(m: &Matrix, means: &[f32]) -> Vec<f32> {
    assert_eq!(means.len(), m.cols());
    let mut acc = vec![0.0f64; m.cols()];
    for row in m.rows_iter() {
        for ((a, &x), &mu) in acc.iter_mut().zip(row).zip(means) {
            let d = (x - mu) as f64;
            *a += d * d;
        }
    }
    let n = m.rows().max(1) as f64;
    acc.into_iter().map(|a| (a / n).sqrt() as f32).collect()
}

/// Per-column variance given precomputed means.
pub fn col_vars(m: &Matrix, means: &[f32]) -> Vec<f32> {
    col_stds(m, means).into_iter().map(|s| s * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_stds() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let mu = col_means(&m);
        assert_eq!(mu, vec![2.0, 20.0]);
        let sd = col_stds(&m, &mu);
        let expect = (2.0f32 / 3.0).sqrt();
        assert!((sd[0] - expect).abs() < 1e-6);
        assert!((sd[1] - 10.0 * expect).abs() < 1e-5);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = Matrix::zeros(0, 3);
        let mu = col_means(&m);
        assert_eq!(mu, vec![0.0; 3]);
        let sd = col_stds(&m, &mu);
        assert_eq!(sd, vec![0.0; 3]);
    }
}
