//! Explainability: which features fingerprint an APT's URLs (paper
//! Fig. 9) and which IOCs drove one event's attribution (Fig. 10).
//!
//! ```sh
//! cargo run --release --example explain_attribution
//! ```

use std::sync::Arc;

use trail::attribute::{ioc_datasets, IocModelSettings};
use trail::embed::{assemble_gnn_input, train_autoencoders};
use trail::system::TrailSystem;
use trail_ml::explain::gbt_beeswarm;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_ml::GradientBoostedTrees;
use trail_osint::{OsintClient, World, WorldConfig};

fn main() {
    let mut config = WorldConfig::default().scaled(0.25);
    config.seed = 42;
    let world = Arc::new(World::generate(config));
    let client = OsintClient::new(world);
    let cutoff = client.world().config.cutoff_day;
    let system = TrailSystem::build(client, cutoff);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(17);

    // --- Fig. 9: per-feature contributions of the URL classifier -----
    let settings = IocModelSettings::default();
    let datasets = ioc_datasets(&mut rng, &system.tkg, 3000);
    let urls = &datasets[1];
    let gbt = GradientBoostedTrees::fit(
        &mut rng,
        &urls.data.x,
        &urls.data.y,
        urls.data.n_classes,
        &settings.gbt,
    );
    let class = 0u16; // APT28, the paper's example
    let bees = gbt_beeswarm(&gbt, &urls.data.x, class as usize, 10);
    println!(
        "top URL features pushing predictions toward {} (cf. paper Fig. 9):",
        system.tkg.registry.name(class)
    );
    for (f, imp) in &bees.top_features {
        println!("  {:<32} mean|contribution| {:.5}", system.tkg.url_encoder.feature_name(*f), imp);
    }

    // --- Fig. 10: GNNExplainer over one event's neighbourhood --------
    let ae_cfg = AutoencoderConfig { hidden: 128, code: 48, epochs: 3, ..Default::default() };
    let (emb, _) = train_autoencoders(&mut rng, &system.tkg, &ae_cfg);
    let pairs: Vec<(trail_graph::NodeId, u16)> =
        system.tkg.events.iter().map(|e| (e.node, e.apt)).collect();
    let csr = system.tkg.csr();
    let mut x = assemble_gnn_input(&system.tkg, &emb, &pairs);
    let sage_cfg = trail_gnn::SageConfig::new(x.cols(), 48, 2, system.tkg.n_classes());
    let masking = trail_gnn::LabelMasking { offset: emb.code_dim + 5, visible_fraction: 0.5 };
    let train_cfg = trail_gnn::TrainConfig { lr: 2e-2, epochs: 150, patience: 0 };
    let (model, _) = trail_gnn::train_sage_masked(
        &mut rng, &csr, &mut x, sage_cfg, &pairs, &[], &train_cfg, masking,
    );

    let event = system.tkg.events.iter().max_by_key(|e| system.tkg.graph.degree(e.node)).unwrap();
    let sub = trail_gnn::sampler::sample_k_hop(&mut rng, &csr, &[event.node], 2, 12);
    let rows: Vec<usize> = sub.nodes.iter().map(|n| n.index()).collect();
    let x_sub = x.gather_rows(&rows);
    let target = sub.local_of[&event.node];
    let expl = trail_gnn::explain::explain(
        &model,
        &sub,
        &x_sub,
        target,
        event.apt as usize,
        &trail_gnn::explain::ExplainerConfig::default(),
    );
    println!(
        "\nevent {} ({}): {}-node neighbourhood, model p(class) = {:.2}",
        event.report_id,
        system.tkg.registry.name(event.apt),
        sub.len(),
        expl.base_probability
    );
    println!("most influential IOCs (cf. paper Fig. 10):");
    for local in expl.top_nodes(target, 10) {
        let node = sub.nodes[local];
        let rec = system.tkg.graph.node(node);
        println!(
            "  {:<8} {:<45} importance {:.3}",
            format!("{:?}", rec.kind),
            system.tkg.graph.key(node).chars().take(45).collect::<String>(),
            expl.node_importance[local]
        );
    }
}
