//! Graph-learning micro-benchmarks: label-propagation iterations,
//! GraphSAGE epochs and GNNExplainer runs on a reproduction-scale TKG.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use trail::embed::{assemble_gnn_input, train_autoencoders};
use trail::system::TrailSystem;
use trail_gnn::{LabelPropagation, SageConfig, SageModel};
use trail_graph::NodeId;
use trail_ml::nn::autoencoder::AutoencoderConfig;
use trail_ml::nn::Adam;
use trail_osint::{OsintClient, World, WorldConfig};

fn build() -> TrailSystem {
    let cfg = WorldConfig::default().scaled(0.25);
    let client = OsintClient::new(Arc::new(World::generate(cfg)));
    let cutoff = client.world().config.cutoff_day;
    TrailSystem::build(client, cutoff)
}

fn bench_label_propagation(c: &mut Criterion) {
    let sys = build();
    let csr = sys.tkg.csr();
    let lp = LabelPropagation::new(&csr, sys.tkg.n_classes());
    let mut seeds = vec![None; sys.tkg.graph.node_count()];
    for e in &sys.tkg.events {
        seeds[e.node.index()] = Some(e.apt);
    }
    let targets: Vec<NodeId> = sys.tkg.events.iter().map(|e| e.node).collect();
    let mut group = c.benchmark_group("label_propagation");
    for layers in [2usize, 4] {
        group.bench_function(format!("lp_{layers}_layers"), |b| {
            b.iter(|| std::hint::black_box(lp.predict(&seeds, layers, &targets).len()))
        });
    }
    group.finish();
}

/// Sequential baseline vs the shared worker pool for the two CSR
/// sweeps the pool accelerates: mean aggregation (the GraphSAGE inner
/// loop) and the label-propagation sweep. `*_seq` pins the region to
/// one thread; `*_pooled` uses the `TRAIL_THREADS`/all-cores policy.
fn bench_pool_vs_sequential(c: &mut Criterion) {
    let sys = build();
    let csr = sys.tkg.csr();
    let mut rng = StdRng::seed_from_u64(7);
    let h = trail_linalg::Matrix::from_fn(csr.node_count(), 64, |_, _| {
        rand::Rng::gen_range(&mut rng, -1.0..1.0)
    });
    let mut group = c.benchmark_group("pool_vs_sequential");
    group.sample_size(20);
    group.bench_function("aggregate_mean_seq", |b| {
        b.iter(|| std::hint::black_box(trail_gnn::sage::aggregate_mean_with_threads(&csr, &h, 1)))
    });
    group.bench_function("aggregate_mean_pooled", |b| {
        b.iter(|| std::hint::black_box(trail_gnn::sage::aggregate_mean(&csr, &h)))
    });

    let lp = LabelPropagation::new(&csr, sys.tkg.n_classes());
    let mut seeds = vec![None; sys.tkg.graph.node_count()];
    for e in &sys.tkg.events {
        seeds[e.node.index()] = Some(e.apt);
    }
    group.bench_function("labelprop_sweep_seq", |b| {
        b.iter(|| std::hint::black_box(lp.propagate_with_threads(&seeds, 2, 1).len()))
    });
    group.bench_function("labelprop_sweep_pooled", |b| {
        b.iter(|| std::hint::black_box(lp.propagate(&seeds, 2).len()))
    });
    group.finish();
}

fn bench_sage_epoch(c: &mut Criterion) {
    let sys = build();
    let csr = sys.tkg.csr();
    let mut rng = StdRng::seed_from_u64(2);
    let ae_cfg = AutoencoderConfig { hidden: 64, code: 32, epochs: 1, ..Default::default() };
    let (emb, _) = train_autoencoders(&mut rng, &sys.tkg, &ae_cfg);
    let pairs: Vec<(NodeId, u16)> = sys.tkg.events.iter().map(|e| (e.node, e.apt)).collect();
    let x = assemble_gnn_input(&sys.tkg, &emb, &pairs);
    let cfg = SageConfig::new(x.cols(), 64, 2, sys.tkg.n_classes());
    let mut model = SageModel::new(&mut rng, cfg);
    let mut adam = Adam::new(1e-2);
    let rows: Vec<usize> = pairs.iter().map(|(id, _)| id.index()).collect();
    let y: Vec<u16> = pairs.iter().map(|&(_, c)| c).collect();

    let mut group = c.benchmark_group("graphsage");
    group.sample_size(10);
    group.bench_function("forward_full_graph", |b| {
        b.iter(|| std::hint::black_box(model.forward(&csr, &x, false).rows()))
    });
    group.bench_function("train_epoch_full_graph", |b| {
        b.iter(|| {
            let logits = model.forward(&csr, &x, true);
            let sub = logits.gather_rows(&rows);
            let (loss, d_sub) = trail_ml::nn::loss::softmax_cross_entropy(&sub, &y);
            let mut d = trail_linalg::Matrix::zeros(logits.rows(), logits.cols());
            for (i, &r) in rows.iter().enumerate() {
                d.row_mut(r).copy_from_slice(d_sub.row(i));
            }
            model.backward(&csr, &d);
            model.step(&mut adam);
            std::hint::black_box(loss)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_label_propagation, bench_pool_vs_sequential, bench_sage_epoch);
criterion_main!(benches);
