//! The paper's MLP classifier (Section VI-A): an input layer of 2048
//! neurons, hidden layers of 1024/512/128/64, ReLU + batch-norm between
//! layers, 50 % dropout on the first three hidden layers, softmax
//! output trained with cross-entropy and Adam.

use rand::seq::SliceRandom;
use rand::Rng;
use trail_linalg::Matrix;

use super::layers::{BatchNorm1d, Dropout, Layer, Linear, Relu};
use super::loss::softmax_cross_entropy;
use super::optim::Adam;
use crate::Classifier;

/// MLP architecture and training parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden widths, first entry is the "input layer" width.
    pub hidden: Vec<usize>,
    /// Dropout rate on the first `dropout_layers` hidden layers.
    pub dropout: f32,
    /// How many leading hidden layers get dropout.
    pub dropout_layers: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
}

impl MlpConfig {
    /// The exact architecture of the paper.
    pub fn paper() -> Self {
        Self {
            hidden: vec![2048, 1024, 512, 128, 64],
            dropout: 0.5,
            dropout_layers: 3,
            lr: 1e-3,
            epochs: 30,
            batch_size: 128,
        }
    }

    /// A narrow variant for constrained scales / tests.
    pub fn small() -> Self {
        Self {
            hidden: vec![64, 32],
            dropout: 0.2,
            dropout_layers: 1,
            lr: 1e-2,
            epochs: 60,
            batch_size: 32,
        }
    }
}

/// A sequential MLP with a softmax classification head.
pub struct Mlp {
    layers: Vec<Box<dyn Layer + Send>>,
    n_classes: usize,
}

impl Mlp {
    /// Build (untrained) with He initialisation.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, d_in: usize, n_classes: usize, cfg: &MlpConfig) -> Self {
        let mut layers: Vec<Box<dyn Layer + Send>> = Vec::new();
        let mut prev = d_in;
        for (i, &width) in cfg.hidden.iter().enumerate() {
            layers.push(Box::new(Linear::new(rng, prev, width)));
            layers.push(Box::new(BatchNorm1d::new(width)));
            layers.push(Box::new(Relu::default()));
            if i < cfg.dropout_layers && cfg.dropout > 0.0 {
                layers.push(Box::new(Dropout::new(cfg.dropout, rng.gen())));
            }
            prev = width;
        }
        layers.push(Box::new(Linear::new(rng, prev, n_classes)));
        Self { layers, n_classes }
    }

    /// Forward pass producing logits.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, train);
        }
        h
    }

    fn backward(&mut self, d_logits: &Matrix) {
        let mut g = d_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
    }

    fn step(&mut self, adam: &mut Adam) {
        adam.tick();
        for layer in &mut self.layers {
            layer.visit_params(&mut |p| adam.step(p));
        }
    }

    /// Train with minibatch Adam + cross-entropy; returns per-epoch
    /// mean training loss.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        x: &Matrix,
        y: &[u16],
        cfg: &MlpConfig,
    ) -> Vec<f32> {
        assert_eq!(x.rows(), y.len());
        let mut adam = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch_size.max(2)) {
                if chunk.len() < 2 {
                    continue; // batch-norm needs >= 2 samples
                }
                let xb = x.gather_rows(chunk);
                let yb: Vec<u16> = chunk.iter().map(|&i| y[i]).collect();
                let logits = self.forward(&xb, true);
                let (loss, d_logits) = softmax_cross_entropy(&logits, &yb);
                self.backward(&d_logits);
                self.step(&mut adam);
                epoch_loss += loss;
                batches += 1;
            }
            losses.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });
        }
        losses
    }

    /// Convenience: build and train in one call.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        x: &Matrix,
        y: &[u16],
        n_classes: usize,
        cfg: &MlpConfig,
    ) -> Self {
        let mut mlp = Self::new(rng, x.cols(), n_classes, cfg);
        mlp.train(rng, x, y, cfg);
        mlp
    }
}

impl Classifier for Mlp {
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward_eval(&h);
        }
        for row in h.as_mut_slice().chunks_exact_mut(self.n_classes) {
            trail_linalg::vector::softmax_inplace(row);
        }
        h
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn blobs(n_per: usize) -> (Matrix, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(3);
        let centers = [(0.0f32, 0.0f32), (3.0, 3.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(cx + rng.gen_range(-0.8..0.8));
                rows.push(cy + rng.gen_range(-0.8..0.8));
                y.push(c as u16);
            }
        }
        (Matrix::from_vec(2 * n_per, 2, rows).unwrap(), y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(40);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MlpConfig::small();
        let mlp = Mlp::fit(&mut rng, &x, &y, 2, &cfg);
        let acc = crate::metrics::accuracy(&y, &mlp.predict(&x));
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = blobs(30);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MlpConfig::small();
        let mut mlp = Mlp::new(&mut rng, 2, 2, &cfg);
        let losses = mlp.train(&mut rng, &x, &y, &cfg);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    }

    #[test]
    fn probabilities_are_normalised() {
        let (x, y) = blobs(10);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MlpConfig::small();
        let mlp = Mlp::fit(&mut rng, &x, &y, 2, &cfg);
        for row in mlp.predict_proba(&x).rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn paper_architecture_shape() {
        let cfg = MlpConfig::paper();
        assert_eq!(cfg.hidden, vec![2048, 1024, 512, 128, 64]);
        let mut rng = StdRng::seed_from_u64(4);
        // Instantiate against a small input dim just to count layers:
        // 5 x (linear+bn+relu) + 3 dropout + output linear = 19.
        let mlp = Mlp::new(&mut rng, 10, 22, &cfg);
        assert_eq!(mlp.layers.len(), 19);
        assert_eq!(mlp.n_classes, 22);
    }
}
