//! Frozen undirected CSR view for fast traversal and message passing.

use crate::ids::NodeId;
use crate::schema::EdgeKind;
use crate::store::GraphStore;

/// Narrow a u64-domain half-edge offset into the compact u32 layout.
///
/// Every degree/offset accumulation below runs in u64 and funnels
/// through this single checked cast, so a graph past the u32 ceiling
/// fails loudly at freeze/merge time instead of silently wrapping.
/// 2^32-1 half-edges ≈ 2.1 G undirected edges — two orders of
/// magnitude above the paper's full-scale TKG (7.9 M edges).
#[inline]
fn narrow_offset(acc: u64) -> u32 {
    u32::try_from(acc).unwrap_or_else(|_| {
        panic!("CSR half-edge count {acc} overflows the u32 offset domain")
    })
}

/// Compressed-sparse-row adjacency treating every edge as undirected,
/// which is how the paper traverses the TKG (label propagation and
/// GraphSAGE both use the symmetrised adjacency).
///
/// Offsets are `u32` — half the pointer-width layout this replaced
/// (see [`WideCsr`], kept as the measurement baseline). With 4-byte
/// `NodeId` targets the adjacency costs `4(n+1) + 5h` bytes instead
/// of `8(n+1) + 9h`, which is what makes freezing a paper-scale graph
/// (2.1 M nodes / 15.8 M half-edges) routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    kinds: Vec<EdgeKind>,
}

impl Csr {
    /// Build from a [`GraphStore`], symmetrising all edges.
    pub fn from_store(g: &GraphStore) -> Self {
        let _span = trail_obs::span("graph.csr_freeze");
        let n = g.node_count();
        let mut degrees = vec![0u64; n];
        for e in g.edges() {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let (offsets, total) = prefix_offsets(&degrees);
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![NodeId(0); total];
        let mut kinds = vec![EdgeKind::InReport; total];
        for e in g.edges() {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s] as usize] = e.dst;
            kinds[cursor[s] as usize] = e.kind;
            cursor[s] += 1;
            targets[cursor[d] as usize] = e.src;
            kinds[cursor[d] as usize] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Extend a frozen CSR with the edges appended to `g` since this
    /// CSR was built from it. The store only ever appends edges (and
    /// nodes), so `self`'s per-node runs are prefixes of the rebuilt
    /// adjacency: copying each frozen run and appending the delta
    /// half-edges in edge order reproduces [`Csr::from_store`]'s fill
    /// order — the result is **identical** to a full rebuild, at the
    /// cost of only the delta plus one memcpy.
    pub fn merge_appended(&self, g: &GraphStore) -> Self {
        let _span = trail_obs::span("graph.csr_merge");
        let old_n = self.node_count();
        let n = g.node_count();
        // The append-only contract this merge rests on: the store must
        // be a descendant of the store this CSR froze — at least as
        // many nodes, at least as many edges, and the frozen edges an
        // exact prefix. A store that shrank (or was swapped for an
        // unrelated one) would otherwise slice out of range or silently
        // interleave half-edges out of order; fail loudly instead.
        assert!(
            n >= old_n,
            "merge_appended: store has {n} nodes but the frozen CSR has {old_n} — \
             stores only grow, this store is not a descendant of the frozen one"
        );
        let old_edges = self.half_edge_count() / 2;
        assert!(
            old_edges <= g.edges().len(),
            "merge_appended: frozen CSR froze {old_edges} edges but the store holds only {} — \
             stores only append, this store is not a descendant of the frozen one",
            g.edges().len()
        );
        let delta = &g.edges()[old_edges..];
        let mut degrees = vec![0u64; n];
        for (v, d) in degrees.iter_mut().enumerate().take(old_n) {
            *d = u64::from(self.offsets[v + 1] - self.offsets[v]);
        }
        for e in delta {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let (offsets, total) = prefix_offsets(&degrees);
        let mut targets = vec![NodeId(0); total];
        let mut kinds = vec![EdgeKind::InReport; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for v in 0..old_n {
            let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            let at = cursor[v] as usize;
            targets[at..at + (hi - lo)].copy_from_slice(&self.targets[lo..hi]);
            kinds[at..at + (hi - lo)].copy_from_slice(&self.kinds[lo..hi]);
            cursor[v] = narrow_offset((at + (hi - lo)) as u64);
        }
        for e in delta {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s] as usize] = e.dst;
            kinds[cursor[s] as usize] = e.kind;
            cursor[s] += 1;
            targets[cursor[d] as usize] = e.src;
            kinds[cursor[d] as usize] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Build from an explicit undirected edge list over `n` nodes,
    /// symmetrising exactly like [`Csr::from_store`] (each edge yields
    /// two half-edges in edge order). The serving layer uses this to
    /// freeze an induced ego-subgraph — a handful of locally re-indexed
    /// nodes — without materialising a whole `GraphStore` per query.
    pub fn from_edge_list(n: usize, edges: &[(NodeId, NodeId, EdgeKind)]) -> Self {
        let mut degrees = vec![0u64; n];
        for &(src, dst, _) in edges {
            degrees[src.index()] += 1;
            degrees[dst.index()] += 1;
        }
        let (offsets, total) = prefix_offsets(&degrees);
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![NodeId(0); total];
        let mut kinds = vec![EdgeKind::InReport; total];
        for &(src, dst, kind) in edges {
            let s = src.index();
            let d = dst.index();
            targets[cursor[s] as usize] = dst;
            kinds[cursor[s] as usize] = kind;
            cursor[s] += 1;
            targets[cursor[d] as usize] = src;
            kinds[cursor[d] as usize] = kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed half-edges (2x the undirected edge count).
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Undirected degree of a node.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        (self.offsets[id.index() + 1] - self.offsets[id.index()]) as usize
    }

    /// Neighbours of a node.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[id.index()] as usize..self.offsets[id.index() + 1] as usize]
    }

    /// Neighbours of a node with the edge kind of each incident edge.
    pub fn neighbors_with_kinds(&self, id: NodeId) -> impl Iterator<Item = (NodeId, EdgeKind)> + '_ {
        let r = self.offsets[id.index()] as usize..self.offsets[id.index() + 1] as usize;
        self.targets[r.clone()].iter().copied().zip(self.kinds[r].iter().copied())
    }

    /// Heap bytes held by the adjacency arrays (offsets + targets +
    /// kinds) — the number the `scale-bench` bytes/node gate measures.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
            + self.kinds.len() * std::mem::size_of::<EdgeKind>()
    }
}

/// Prefix-sum `degrees` (u64 domain) into u32 offsets, returning the
/// offsets and the checked total half-edge count.
fn prefix_offsets(degrees: &[u64]) -> (Vec<u32>, usize) {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut acc = 0u64;
    offsets.push(0u32);
    for d in degrees {
        acc += d;
        offsets.push(narrow_offset(acc));
    }
    (offsets, acc as usize)
}

/// The pointer-width CSR layout the compact [`Csr`] replaced: `usize`
/// offsets *and* `usize` targets. Kept for two jobs — the measured
/// bytes/node baseline the `scale-bench` ≥40% memory claim is gated
/// against, and the oracle of the compact-CSR equivalence suite
/// (identical fill order, so the two layouts must agree element for
/// element on every graph and every merge chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideCsr {
    offsets: Vec<usize>,
    targets: Vec<usize>,
    kinds: Vec<EdgeKind>,
}

impl WideCsr {
    /// Build from a [`GraphStore`], mirroring [`Csr::from_store`]'s
    /// fill order exactly.
    pub fn from_store(g: &GraphStore) -> Self {
        let n = g.node_count();
        let mut degrees = vec![0usize; n];
        for e in g.edges() {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0usize; acc];
        let mut kinds = vec![EdgeKind::InReport; acc];
        for e in g.edges() {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s]] = e.dst.index();
            kinds[cursor[s]] = e.kind;
            cursor[s] += 1;
            targets[cursor[d]] = e.src.index();
            kinds[cursor[d]] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Mirror of [`Csr::merge_appended`] on the wide layout, for
    /// chain-equivalence tests.
    pub fn merge_appended(&self, g: &GraphStore) -> Self {
        let old_n = self.node_count();
        let n = g.node_count();
        assert!(n >= old_n, "merge_appended: store is not a descendant of the frozen one");
        let old_edges = self.targets.len() / 2;
        assert!(
            old_edges <= g.edges().len(),
            "merge_appended: store is not a descendant of the frozen one"
        );
        let delta = &g.edges()[old_edges..];
        let mut degrees = vec![0usize; n];
        for (v, d) in degrees.iter_mut().enumerate().take(old_n) {
            *d = self.offsets[v + 1] - self.offsets[v];
        }
        for e in delta {
            degrees[e.src.index()] += 1;
            degrees[e.dst.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0usize; acc];
        let mut kinds = vec![EdgeKind::InReport; acc];
        let mut cursor = offsets[..n].to_vec();
        for v in 0..old_n {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            let at = cursor[v];
            targets[at..at + (hi - lo)].copy_from_slice(&self.targets[lo..hi]);
            kinds[at..at + (hi - lo)].copy_from_slice(&self.kinds[lo..hi]);
            cursor[v] = at + (hi - lo);
        }
        for e in delta {
            let s = e.src.index();
            let d = e.dst.index();
            targets[cursor[s]] = e.dst.index();
            kinds[cursor[s]] = e.kind;
            cursor[s] += 1;
            targets[cursor[d]] = e.src.index();
            kinds[cursor[d]] = e.kind;
            cursor[d] += 1;
        }
        Self { offsets, targets, kinds }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of directed half-edges.
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Undirected degree of a node.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.offsets[id.index() + 1] - self.offsets[id.index()]
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.targets[self.offsets[id.index()]..self.offsets[id.index() + 1]]
            .iter()
            .map(|&t| NodeId::from(t))
    }

    /// Heap bytes held by the adjacency arrays.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<usize>()
            + self.kinds.len() * std::mem::size_of::<EdgeKind>()
    }

    /// Element-for-element structural agreement with the compact
    /// layout: identical offsets, targets and kinds.
    pub fn agrees_with(&self, compact: &Csr) -> bool {
        self.node_count() == compact.node_count()
            && self.half_edge_count() == compact.half_edge_count()
            && (0..self.node_count()).map(NodeId::from).all(|v| {
                self.neighbors(v).eq(compact.neighbors(v).iter().copied())
                    && self.offsets[v.index()] == compact.offsets[v.index()] as usize
                    && compact
                        .neighbors_with_kinds(v)
                        .map(|(_, k)| k)
                        .eq(self.kinds[self.offsets[v.index()]..self.offsets[v.index() + 1]]
                            .iter()
                            .copied())
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::NodeKind;

    #[test]
    fn csr_matches_store_adjacency() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        let d = g.upsert_node(NodeKind::Domain, "d");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();

        let csr = Csr::from_store(&g);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.half_edge_count(), 6);
        assert_eq!(csr.degree(e), 2);
        assert_eq!(csr.degree(d), 2);
        let mut n: Vec<_> = csr.neighbors(d).to_vec();
        n.sort();
        assert_eq!(n, vec![e, ip]);
        let kinds: Vec<_> = csr.neighbors_with_kinds(ip).collect();
        assert!(kinds.contains(&(e, EdgeKind::InReport)));
        assert!(kinds.contains(&(d, EdgeKind::ARecord)));
    }

    #[test]
    fn merge_appended_equals_full_rebuild() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);

        // Grow the store: new nodes (one isolated), edges touching both
        // old and new nodes.
        let d = g.upsert_node(NodeKind::Domain, "d");
        let _lonely = g.upsert_node(NodeKind::Asn, "AS7");
        let e2 = g.upsert_node(NodeKind::Event, "e2");
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        g.add_edge(e2, d, EdgeKind::InReport).unwrap();

        assert_eq!(frozen.merge_appended(&g), Csr::from_store(&g));
    }

    #[test]
    fn merge_appended_with_no_delta_is_identity() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);
        assert_eq!(frozen.merge_appended(&g), frozen);
    }

    #[test]
    fn chained_merges_track_a_growing_store() {
        let mut g = GraphStore::new();
        let mut csr = Csr::from_store(&g);
        let hub = {
            let id = g.upsert_node(NodeKind::Ip, "hub");
            csr = csr.merge_appended(&g);
            id
        };
        for step in 0..5 {
            let e = g.upsert_node(NodeKind::Event, &format!("e{step}"));
            g.add_edge(e, hub, EdgeKind::InReport).unwrap();
            csr = csr.merge_appended(&g);
            assert_eq!(csr, Csr::from_store(&g), "diverged at step {step}");
        }
        assert_eq!(csr.degree(hub), 5);
    }

    // --- merge_appended audit: adversarial delta shapes -------------------
    //
    // The streaming runtime delta-merges after *every* tick, so the
    // merge must stay byte-identical to a full rebuild for every delta
    // shape ingestion can produce — especially deltas that only
    // re-touch existing nodes, where a fill-order slip would reorder
    // half-edges without changing any degree.

    #[test]
    fn delta_touching_only_existing_nodes_matches_rebuild() {
        // No new nodes at all: the delta densifies the frozen graph.
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        let d = g.upsert_node(NodeKind::Domain, "d");
        let u = g.upsert_node(NodeKind::Url, "http://a.example/x");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);

        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(d, ip, EdgeKind::DomainResolvesTo).unwrap();
        g.add_edge(u, d, EdgeKind::HostedOn).unwrap();
        g.add_edge(u, ip, EdgeKind::UrlResolvesTo).unwrap();
        assert_eq!(g.node_count(), frozen.node_count(), "delta added no nodes");
        assert_eq!(frozen.merge_appended(&g), Csr::from_store(&g));
    }

    #[test]
    fn duplicate_edge_is_suppressed_and_degrees_do_not_drift() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);

        // Re-adding the identical directed edge is suppressed by the
        // store, so the merged CSR must be the frozen identity.
        assert!(!g.add_edge(e, ip, EdgeKind::InReport).unwrap());
        let merged = frozen.merge_appended(&g);
        assert_eq!(merged, frozen);
        assert_eq!(merged.degree(e), 1);
        assert_eq!(merged.degree(ip), 1);
    }

    #[test]
    fn duplicate_undirected_edges_are_structurally_excluded() {
        // Audit result: a duplicate *undirected* edge would need either
        // (a) the same directed (src, dst, kind) twice — suppressed by
        // the store's edge set — or (b) the reversed pair (dst, src,
        // kind) — but every Table I row has distinct endpoint kinds, so
        // the reversal is a schema violation. Between them, no delta
        // can ever inflate an undirected degree with a duplicate, which
        // is the precondition the streaming runtime's repeated merges
        // rely on.
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);

        assert!(
            g.add_edge(ip, e, EdgeKind::InReport).is_err(),
            "reversed InReport should be a schema violation, not a second edge"
        );
        let merged = frozen.merge_appended(&g);
        assert_eq!(merged, frozen, "rejected duplicate must leave the CSR untouched");
        assert_eq!(merged.degree(e), 1);
        assert_eq!(merged.degree(ip), 1);
    }

    #[test]
    fn hub_retouched_across_chained_merges_keeps_run_order() {
        // A hub re-touched by every delta: its adjacency run must grow
        // strictly in edge order across merges (frozen prefix + delta
        // suffix), which `PartialEq` against the rebuild pins including
        // half-edge order, not just the degree multiset.
        let mut g = GraphStore::new();
        let hub = g.upsert_node(NodeKind::Ip, "hub");
        let first = g.upsert_node(NodeKind::Event, "e0");
        g.add_edge(first, hub, EdgeKind::InReport).unwrap();
        let mut csr = Csr::from_store(&g);
        for step in 0..6 {
            // Each delta interleaves: one brand-new event -> hub edge,
            // one old-old densification edge every other step.
            let e = g.upsert_node(NodeKind::Event, &format!("n{step}"));
            g.add_edge(e, hub, EdgeKind::InReport).unwrap();
            if step % 2 == 1 {
                let d = g.upsert_node(NodeKind::Domain, &format!("d{step}"));
                g.add_edge(d, hub, EdgeKind::DomainResolvesTo).unwrap();
                g.add_edge(e, d, EdgeKind::InReport).unwrap();
            }
            csr = csr.merge_appended(&g);
            let rebuilt = Csr::from_store(&g);
            assert_eq!(csr, rebuilt, "merged CSR diverged from rebuild at step {step}");
            assert_eq!(csr.degree(hub), rebuilt.degree(hub), "hub degree drifted");
        }
    }

    #[test]
    fn node_only_then_edge_only_deltas_merge_exactly() {
        // Deltas that add nodes but no edges (isolated enrichment
        // results) followed by deltas that add edges but no nodes.
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let mut csr = Csr::from_store(&g);

        let d = g.upsert_node(NodeKind::Domain, "d");
        let _asn = g.upsert_node(NodeKind::Asn, "AS1");
        csr = csr.merge_appended(&g);
        assert_eq!(csr, Csr::from_store(&g), "node-only delta diverged");

        g.add_edge(d, ip, EdgeKind::DomainResolvesTo).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        csr = csr.merge_appended(&g);
        assert_eq!(csr, Csr::from_store(&g), "edge-only delta diverged");
    }

    #[test]
    fn randomized_growth_soak_matches_rebuild_at_every_snapshot() {
        // Deterministic LCG-driven growth: random mixture of new nodes,
        // new-old edges, old-old edges and parallel kinds, merged after
        // every step and compared byte-for-byte against a rebuild.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut g = GraphStore::new();
        let e0 = g.upsert_node(NodeKind::Event, "seed-event");
        let i0 = g.upsert_node(NodeKind::Ip, "seed-ip");
        let d0 = g.upsert_node(NodeKind::Domain, "seed-domain");
        g.add_edge(e0, i0, EdgeKind::InReport).unwrap();
        let mut events = vec![e0];
        let mut ips = vec![i0];
        let mut domains = vec![d0];
        let mut csr = Csr::from_store(&g);
        for step in 0..48 {
            match next(5) {
                0 => events.push(g.upsert_node(NodeKind::Event, &format!("ev{step}"))),
                1 => ips.push(g.upsert_node(NodeKind::Ip, &format!("ip{step}"))),
                2 => domains.push(g.upsert_node(NodeKind::Domain, &format!("dm{step}"))),
                3 => {
                    let e = events[next(events.len())];
                    let i = ips[next(ips.len())];
                    // Duplicate attempts return Ok(false); both paths fine.
                    g.add_edge(e, i, EdgeKind::InReport).unwrap();
                }
                _ => {
                    let d = domains[next(domains.len())];
                    let i = ips[next(ips.len())];
                    g.add_edge(d, i, EdgeKind::DomainResolvesTo).unwrap();
                }
            }
            csr = csr.merge_appended(&g);
            assert_eq!(csr, Csr::from_store(&g), "soak diverged at step {step}");
        }
        assert!(g.edge_count() > 10, "soak grew too few edges to be meaningful");
    }

    #[test]
    #[should_panic(expected = "not a descendant")]
    fn merging_against_a_shrunk_store_fails_loudly() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let frozen = Csr::from_store(&g);
        // A fresh, unrelated (smaller) store is not a descendant.
        let other = GraphStore::new();
        let _ = frozen.merge_appended(&other);
    }

    #[test]
    fn from_edge_list_matches_from_store() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        let d = g.upsert_node(NodeKind::Domain, "d");
        let _lonely = g.upsert_node(NodeKind::Asn, "AS7");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        g.add_edge(e, d, EdgeKind::InReport).unwrap();
        g.add_edge(ip, d, EdgeKind::ARecord).unwrap();
        let edges: Vec<_> = g.edges().iter().map(|e| (e.src, e.dst, e.kind)).collect();
        assert_eq!(Csr::from_edge_list(g.node_count(), &edges), Csr::from_store(&g));
    }

    #[test]
    fn from_edge_list_empty_and_isolated() {
        let csr = Csr::from_edge_list(3, &[]);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.half_edge_count(), 0);
        assert!(csr.neighbors(NodeId(1)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_store(&GraphStore::new());
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.half_edge_count(), 0);
    }

    #[test]
    fn isolated_node_has_empty_neighbor_slice() {
        let mut g = GraphStore::new();
        let a = g.upsert_node(NodeKind::Asn, "AS1");
        let csr = Csr::from_store(&g);
        assert_eq!(csr.degree(a), 0);
        assert!(csr.neighbors(a).is_empty());
        assert_eq!(csr.neighbors_with_kinds(a).count(), 0);
    }

    #[test]
    fn parallel_edges_of_different_kinds_both_appear() {
        let mut g = GraphStore::new();
        let u = g.upsert_node(NodeKind::Url, "http://a.example/x");
        let ip = g.upsert_node(NodeKind::Ip, "1.1.1.1");
        let d = g.upsert_node(NodeKind::Domain, "a.example");
        g.add_edge(u, ip, EdgeKind::UrlResolvesTo).unwrap();
        g.add_edge(u, d, EdgeKind::HostedOn).unwrap();
        g.add_edge(d, ip, EdgeKind::DomainResolvesTo).unwrap();
        let csr = Csr::from_store(&g);
        let kinds: Vec<EdgeKind> = csr.neighbors_with_kinds(u).map(|(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::UrlResolvesTo));
        assert!(kinds.contains(&EdgeKind::HostedOn));
    }

    // --- u32-domain discipline (satellite: usize-truncation audit) --------

    #[test]
    fn offset_narrowing_admits_the_full_u32_domain() {
        // The exact boundary value must pass; one past it must not.
        assert_eq!(narrow_offset(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(narrow_offset(0), 0);
    }

    #[test]
    #[should_panic(expected = "overflows the u32 offset domain")]
    fn offset_narrowing_panics_one_past_the_u32_boundary() {
        let _ = narrow_offset(u64::from(u32::MAX) + 1);
    }

    #[test]
    fn prefix_offsets_accumulate_in_u64_before_the_cast() {
        // Degrees that individually fit u32 but whose running sum must
        // be carried in u64 to reach the checked cast (rather than
        // wrapping silently mid-sum).
        let half = u64::from(u32::MAX / 2);
        let (offsets, total) = prefix_offsets(&[half, half, 1]);
        assert_eq!(offsets, vec![0, half as u32, (2 * half) as u32, u32::MAX]);
        assert_eq!(total as u64, u64::from(u32::MAX));
    }

    #[test]
    #[should_panic(expected = "overflows the u32 offset domain")]
    fn prefix_offsets_reject_totals_past_u32() {
        let half = u64::from(u32::MAX / 2);
        let _ = prefix_offsets(&[half, half, 2]);
    }

    #[test]
    fn wide_csr_agrees_with_compact_on_build_and_merge_chain() {
        let mut g = GraphStore::new();
        let e = g.upsert_node(NodeKind::Event, "e");
        let ip = g.upsert_node(NodeKind::Ip, "i");
        g.add_edge(e, ip, EdgeKind::InReport).unwrap();
        let mut compact = Csr::from_store(&g);
        let mut wide = WideCsr::from_store(&g);
        assert!(wide.agrees_with(&compact));
        for step in 0..4 {
            let d = g.upsert_node(NodeKind::Domain, &format!("d{step}"));
            g.add_edge(d, ip, EdgeKind::DomainResolvesTo).unwrap();
            g.add_edge(e, d, EdgeKind::InReport).unwrap();
            compact = compact.merge_appended(&g);
            wide = wide.merge_appended(&g);
            assert!(wide.agrees_with(&compact), "layouts diverged at step {step}");
        }
        assert!(wide.heap_bytes() > compact.heap_bytes(), "compact layout must be smaller");
    }
}
