//! Sparse feature vectors.
//!
//! IOC feature vectors are overwhelmingly one-hot blocks (a 1,517-dim
//! URL vector typically has ~20 non-zeros), so the TKG feature store
//! keeps them sparse and densifies per minibatch.

use serde::{Deserialize, Serialize};

/// A sparse `f32` vector with a fixed logical dimensionality.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    /// Logical width.
    pub dims: u32,
    /// `(index, value)` entries, strictly increasing by index.
    pub entries: Vec<(u32, f32)>,
}

impl SparseVec {
    /// Compress a dense slice (drops zeros).
    pub fn from_dense(dense: &[f32]) -> Self {
        let entries = dense
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        Self { dims: dense.len() as u32, entries }
    }

    /// Materialise as a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dims as usize];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Write into a dense row slice (must match `dims`).
    pub fn write_dense(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.dims as usize);
        out.fill(0.0);
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Content fingerprint over the `(index, value-bits)` entries and
    /// the logical width. Equal vectors always fingerprint equally, so
    /// the incremental code cache can key encoded rows on it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut step = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        };
        for &b in &self.dims.to_le_bytes() {
            step(b);
        }
        for &(i, v) in &self.entries {
            for &b in &i.to_le_bytes() {
                step(b);
            }
            for &b in &v.to_bits().to_le_bytes() {
                step(b);
            }
        }
        h
    }

    /// Value at index `i`.
    pub fn get(&self, i: u32) -> f32 {
        self.entries
            .binary_search_by_key(&i, |&(idx, _)| idx)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }
}

/// Gather sparse rows into a dense [`trail_linalg::Matrix`].
///
/// Row-parallel over the shared worker pool: each dense row is filled
/// from exactly one sparse vector, so the result is independent of
/// the thread count.
pub fn densify(rows: &[&SparseVec], dims: usize) -> trail_linalg::Matrix {
    let mut m = trail_linalg::Matrix::zeros(rows.len(), dims);
    if dims == 0 {
        return m;
    }
    trail_linalg::pool::parallel_for_rows(m.as_mut_slice(), dims, 64, |row0, band| {
        for (i, out) in band.chunks_exact_mut(dims).enumerate() {
            let sv = rows[row0 + i];
            debug_assert_eq!(sv.dims as usize, dims);
            for &(j, v) in &sv.entries {
                out[j as usize] = v;
            }
        }
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let sv = SparseVec::from_dense(&dense);
        assert_eq!(sv.nnz(), 2);
        assert_eq!(sv.to_dense(), dense);
        assert_eq!(sv.get(3), -2.0);
        assert_eq!(sv.get(0), 0.0);
    }

    #[test]
    fn write_dense_clears_stale_values() {
        let sv = SparseVec::from_dense(&[1.0, 0.0]);
        let mut buf = vec![9.0, 9.0];
        sv.write_dense(&mut buf);
        assert_eq!(buf, vec![1.0, 0.0]);
    }

    #[test]
    fn densify_batches() {
        let a = SparseVec::from_dense(&[1.0, 0.0, 0.0]);
        let b = SparseVec::from_dense(&[0.0, 0.0, 2.0]);
        let m = densify(&[&a, &b], 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn empty_vector_is_fine() {
        let sv = SparseVec::from_dense(&[0.0; 4]);
        assert_eq!(sv.nnz(), 0);
        assert_eq!(sv.to_dense(), vec![0.0; 4]);
    }
}
