//! Canonical IOC identity.
//!
//! Every layer of the pipeline used to round-trip raw strings: the
//! world indices, the OSINT client queries, the graph upserts and the
//! depth-2 lookups. Real feeds serve the *same* indicator in many
//! spellings — mixed case, trailing dots, `hxxp`/`[.]` defanging — and
//! any layer comparing raw text silently fails to join what another
//! layer stored canonically. [`IocKey`] is the one identity all layers
//! agree on: the IOC kind plus the canonical text produced by the
//! parsers in [`crate::ip`], [`crate::domain`] and [`crate::url`].
//!
//! Construction always goes through a parser, so a key in hand is a
//! proof the text is canonical; the fields are private to keep it that
//! way.

use serde::{Deserialize, Serialize};

use crate::types::{Ioc, IocKind};
use crate::Result;

/// The canonical identity of a network IOC: kind + canonical text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IocKey {
    kind: IocKind,
    text: String,
}

/// The borrowed (zero-copy) form of [`IocKey`]: same identity, no
/// owned text. Only constructible from an [`IocKey`] or a parsed
/// [`Ioc`], so — like the owned form — holding one is a proof the text
/// is canonical. The enrichment and OSINT query hot paths pass this
/// around instead of cloning canonical strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IocKeyRef<'a> {
    kind: IocKind,
    text: &'a str,
}

impl<'a> IocKeyRef<'a> {
    /// Crate-internal constructor — callers outside the crate must go
    /// through [`IocKey::as_ref`] or [`Ioc::key_ref`] so canonicality
    /// stays guaranteed by construction.
    pub(crate) fn new(kind: IocKind, text: &'a str) -> Self {
        Self { kind, text }
    }

    /// The IOC kind.
    pub fn kind(self) -> IocKind {
        self.kind
    }

    /// The canonical text.
    pub fn text(self) -> &'a str {
        self.text
    }

    /// Clone into the owned form (the one place this borrow allocates).
    pub fn to_key(self) -> IocKey {
        IocKey { kind: self.kind, text: self.text.to_owned() }
    }
}

impl<'a> From<&'a IocKey> for IocKeyRef<'a> {
    fn from(key: &'a IocKey) -> Self {
        key.as_ref()
    }
}

impl std::fmt::Display for IocKeyRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.kind.name(), self.text)
    }
}

impl IocKey {
    /// The identity of an already-parsed IOC (infallible — parsed IOCs
    /// carry canonical text by construction).
    pub fn of(ioc: &Ioc) -> Self {
        Self { kind: ioc.kind(), text: ioc.text().to_owned() }
    }

    /// Parse raw (possibly defanged / mixed-case / trailing-dot) text
    /// with a declared kind and canonicalise it.
    pub fn parse(kind: IocKind, raw: &str) -> Result<Self> {
        Ioc::parse_as(kind, raw).map(|ioc| Self::of(&ioc))
    }

    /// Auto-detect the kind of raw text and canonicalise it.
    pub fn detect(raw: &str) -> Result<Self> {
        Ioc::detect(raw).map(|ioc| Self::of(&ioc))
    }

    /// The IOC kind.
    pub fn kind(&self) -> IocKind {
        self.kind
    }

    /// The canonical text — the one spelling every index and graph
    /// lookup uses.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Consume the key, yielding the canonical text.
    pub fn into_text(self) -> String {
        self.text
    }

    /// Borrow this key as the zero-copy [`IocKeyRef`] form.
    pub fn as_ref(&self) -> IocKeyRef<'_> {
        IocKeyRef { kind: self.kind, text: &self.text }
    }
}

impl From<&Ioc> for IocKey {
    fn from(ioc: &Ioc) -> Self {
        Self::of(ioc)
    }
}

impl std::fmt::Display for IocKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.kind.name(), self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_variants_share_one_key() {
        let canonical = IocKey::parse(IocKind::Domain, "threebody.cn").unwrap();
        for raw in ["ThreeBody.CN", "threebody.cn.", "threebody[.]cn", " THREEBODY[.]CN. "] {
            assert_eq!(IocKey::parse(IocKind::Domain, raw).unwrap(), canonical, "{raw:?}");
        }
        assert_eq!(canonical.text(), "threebody.cn");
    }

    #[test]
    fn ip_and_url_keys_canonicalise() {
        let ip = IocKey::parse(IocKind::Ip, "1.0.36[.]127").unwrap();
        assert_eq!(ip.text(), "1.0.36.127");
        let url = IocKey::parse(IocKind::Url, "hxxp://ThreeBody[.]cn/trisolaris.php").unwrap();
        assert_eq!(url.text(), "http://threebody.cn/trisolaris.php");
        assert_eq!(url.kind(), IocKind::Url);
    }

    #[test]
    fn detect_routes_by_shape() {
        assert_eq!(IocKey::detect("198.51.100.7").unwrap().kind(), IocKind::Ip);
        assert_eq!(IocKey::detect("hxxp://a[.]example/x").unwrap().kind(), IocKind::Url);
        assert_eq!(IocKey::detect("A.Example.").unwrap().kind(), IocKind::Domain);
        assert!(IocKey::detect("???").is_err());
    }

    #[test]
    fn same_text_different_kind_is_a_different_key() {
        // A domain key and a URL key never collide even if a raw string
        // could be read as either.
        let d = IocKey::parse(IocKind::Domain, "a.example").unwrap();
        let u = IocKey::parse(IocKind::Url, "http://a.example/").unwrap();
        assert_ne!(d, u);
    }

    #[test]
    fn key_of_parsed_ioc_matches_parse() {
        let ioc = Ioc::detect("EvIl[.]ExAmPlE.").unwrap();
        assert_eq!(IocKey::of(&ioc), IocKey::parse(IocKind::Domain, "evil.example").unwrap());
        assert_eq!(IocKey::from(&ioc).text(), "evil.example");
    }

    #[test]
    fn borrowed_form_shares_the_owned_identity() {
        let key = IocKey::parse(IocKind::Domain, "ThreeBody[.]CN.").unwrap();
        let r = key.as_ref();
        assert_eq!(r.kind(), key.kind());
        assert_eq!(r.text(), key.text());
        assert_eq!(r.to_key(), key);
        assert_eq!(IocKeyRef::from(&key), r);
        assert_eq!(r.to_string(), key.to_string());
        // An Ioc's borrow agrees with its owned key.
        let ioc = Ioc::detect("threebody.cn").unwrap();
        assert_eq!(ioc.key_ref().to_key(), ioc.key());
        assert_eq!(ioc.key_ref().text(), "threebody.cn");
    }
}
