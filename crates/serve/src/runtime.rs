//! The in-process request runtime: admission control, per-worker model
//! replicas, and per-request observability over a shared
//! [`ServeBundle`].
//!
//! Concurrency model: the bundle is immutable and shared by reference;
//! the only mutable state a query needs is a [`SageModel`]'s quantized
//! scratch buffers, so the runtime keeps a small pool of replicas
//! behind `try_lock` — a free replica is always found within one pass
//! once the pool is at least as wide as the worker count. Replicas are
//! instantiated deterministically from the frozen weights, so *which*
//! replica serves a request can never change its ranking.
//!
//! Admission reuses the PR 4 [`CircuitBreaker`]: every request asks
//! `admit()` first; poisoned/failed requests `record_fault()`, so a
//! burst of bad queries trips the breaker and subsequent requests are
//! shed without touching the graph, then probed back to Closed.
//!
//! Counter discipline (the reconciliation invariant the tests pin):
//! `serve.issued == serve.admitted + serve.rejected` and
//! `serve.admitted == serve.completed + serve.failed`, exactly, for
//! any interleaving — each request increments exactly one branch at
//! each level of that tree.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use trail_gnn::SageModel;
use trail_ioc::IocKey;
use trail_osint::CircuitBreaker;

use crate::bundle::{Attribution, QueryLimits, ServeBundle};

/// One attribution request: the IOCs observed in a fresh incident.
#[derive(Debug, Clone)]
pub struct Query {
    /// Canonical IOC identities to look up.
    pub iocs: Vec<IocKey>,
    /// Fault injection for drills: the request is admitted, then fails
    /// inside the handler (standing in for unparseable/poison input).
    pub poison: bool,
}

impl Query {
    /// A well-formed query.
    pub fn new(iocs: Vec<IocKey>) -> Self {
        Self { iocs, poison: false }
    }

    /// A request that will fault after admission.
    pub fn poison() -> Self {
        Self { iocs: Vec::new(), poison: true }
    }
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Scored: the APT ranking.
    Ranked(Attribution),
    /// Shed by the circuit breaker before touching the graph.
    Rejected,
    /// Admitted but failed in the handler.
    Failed(&'static str),
}

/// One request's result plus its wall-clock latency.
#[derive(Debug, Clone)]
pub struct Response {
    /// What happened.
    pub outcome: Outcome,
    /// End-to-end handler latency in microseconds.
    pub latency_us: u64,
}

/// Runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Model replicas to instantiate (size to the widest worker count
    /// the runtime will be driven with).
    pub replicas: usize,
    /// Per-query traversal limits.
    pub limits: QueryLimits,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self { replicas: trail_linalg::pool::num_threads().max(2), limits: QueryLimits::default() }
    }
}

/// The concurrent, read-only serving runtime.
pub struct ServeRuntime {
    bundle: Arc<ServeBundle>,
    breaker: Arc<CircuitBreaker>,
    replicas: Vec<Mutex<SageModel>>,
    limits: QueryLimits,
}

impl ServeRuntime {
    /// Build a runtime over a frozen bundle.
    pub fn new(bundle: Arc<ServeBundle>, breaker: Arc<CircuitBreaker>, cfg: RuntimeConfig) -> Self {
        let replicas =
            (0..cfg.replicas.max(1)).map(|_| Mutex::new(bundle.instantiate_model())).collect();
        Self { bundle, breaker, replicas, limits: cfg.limits }
    }

    /// The shared bundle.
    pub fn bundle(&self) -> &ServeBundle {
        &self.bundle
    }

    /// The admission breaker.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Run `f` with an exclusive model replica. With at least as many
    /// replicas as concurrent callers one pass always finds a free
    /// slot; the yield loop covers transient oversubscription.
    fn with_replica<T>(&self, f: impl FnOnce(&mut SageModel) -> T) -> T {
        let mut f = Some(f);
        loop {
            for slot in &self.replicas {
                if let Ok(mut model) = slot.try_lock() {
                    return (f.take().expect("single use"))(&mut model);
                }
            }
            std::thread::yield_now();
        }
    }

    /// Handle one request end to end: admission, scoring, outcome
    /// accounting, latency histogram.
    pub fn handle(&self, query: &Query) -> Response {
        let start = Instant::now();
        trail_obs::counter_add("serve.issued", 1);
        let outcome = if !self.breaker.admit() {
            trail_obs::counter_add("serve.rejected", 1);
            Outcome::Rejected
        } else {
            trail_obs::counter_add("serve.admitted", 1);
            if query.poison {
                self.breaker.record_fault();
                trail_obs::counter_add("serve.failed", 1);
                Outcome::Failed("poison query")
            } else {
                let attribution =
                    self.with_replica(|model| self.bundle.attribute(model, &query.iocs, &self.limits));
                self.breaker.record_success();
                trail_obs::counter_add("serve.completed", 1);
                Outcome::Ranked(attribution)
            }
        };
        let latency_us = start.elapsed().as_micros() as u64;
        trail_obs::observe("serve.latency_us", trail_obs::bounds::SERVE_LATENCY_US, latency_us);
        Response { outcome, latency_us }
    }

    /// Serve a whole batch at a fixed worker-pool width, preserving
    /// input order in the output.
    pub fn run_batch(&self, queries: &[Query], concurrency: usize) -> Vec<Response> {
        let _span = trail_obs::span("serve.batch");
        trail_linalg::pool::parallel_map_limit(concurrency.max(1), queries.len(), |i| {
            self.handle(&queries[i])
        })
    }
}
