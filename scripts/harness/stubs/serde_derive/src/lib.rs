//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` to satisfy
//! trait bounds that are never exercised generically (the stub `serde`
//! traits are blanket-implemented markers), so the derives expand to
//! nothing. `attributes(serde)` keeps `#[serde(...)]` field/variant
//! attributes legal.

extern crate proc_macro;

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
